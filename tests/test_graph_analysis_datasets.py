"""Unit tests for graph analysis helpers and the dataset stand-ins."""

import pytest

from repro.graph import datasets
from repro.graph.analysis import (
    bfs_nodes,
    bfs_subgraph,
    degree_statistics,
    largest_scc,
    strongly_connected_components,
)
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import cycle_graph, line_graph, random_wc_graph


class TestDegreeStatistics:
    def test_basic(self):
        g = InfluenceGraph(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
        stats = degree_statistics(g)
        assert stats["num_nodes"] == 3
        assert stats["num_edges"] == 3
        assert stats["avg_degree"] == pytest.approx(1.0)
        assert stats["max_out_degree"] == 2
        assert stats["max_in_degree"] == 2

    def test_empty(self):
        stats = degree_statistics(InfluenceGraph(0, []))
        assert stats["avg_degree"] == 0.0


class TestBFS:
    def test_bfs_order_on_line(self, deterministic_line):
        assert bfs_nodes(deterministic_line, [0]) == list(range(10))

    def test_bfs_limit(self, deterministic_line):
        assert bfs_nodes(deterministic_line, [0], limit=4) == [0, 1, 2, 3]

    def test_bfs_multiple_sources(self, deterministic_line):
        order = bfs_nodes(deterministic_line, [5, 0], limit=3)
        assert order[:2] == [5, 0]

    def test_bfs_subgraph_size(self, small_graph):
        sub = bfs_subgraph(small_graph, 0.25, seed=3)
        assert sub.num_nodes == pytest.approx(75, abs=1)

    def test_bfs_subgraph_full(self, small_graph):
        sub = bfs_subgraph(small_graph, 1.0, seed=3)
        assert sub.num_nodes == small_graph.num_nodes

    def test_bfs_subgraph_validation(self, small_graph):
        with pytest.raises(ValueError):
            bfs_subgraph(small_graph, 0.0)
        with pytest.raises(ValueError):
            bfs_subgraph(small_graph, 1.5)


class TestSCC:
    def test_cycle_is_one_component(self):
        components = strongly_connected_components(cycle_graph(6))
        assert len(components) == 1
        assert sorted(components[0]) == list(range(6))

    def test_line_is_singletons(self):
        components = strongly_connected_components(line_graph(5))
        assert len(components) == 5

    def test_two_cycles_bridge(self):
        # cycle {0,1,2} -> bridge -> cycle {3,4}
        g = InfluenceGraph(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 3, 1.0),
            ],
        )
        components = {frozenset(c) for c in strongly_connected_components(g)}
        assert frozenset({0, 1, 2}) in components
        assert frozenset({3, 4}) in components

    def test_largest_scc(self):
        g = InfluenceGraph(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 3, 1.0),
            ],
        )
        core = largest_scc(g)
        assert core.num_nodes == 3
        assert core.num_edges == 3

    def test_scc_handles_larger_random_graph(self):
        g = random_wc_graph(500, 6, seed=10)
        components = strongly_connected_components(g)
        assert sum(len(c) for c in components) == 500


class TestDatasets:
    def test_names(self):
        assert datasets.dataset_names() == (
            "flixster",
            "douban-book",
            "douban-movie",
            "twitter",
            "orkut",
        )

    def test_load_deterministic(self):
        a = datasets.load("flixster", scale=0.05)
        b = datasets.load("flixster", scale=0.05)
        assert a is b  # cached

    def test_load_scale(self):
        g = datasets.load("douban-book", scale=0.02)
        assert g.num_nodes == pytest.approx(466, abs=2)

    def test_directedness(self):
        flixster = datasets.load("flixster", scale=0.02)
        # Undirected stand-in: every edge has its reverse.
        for u, v, _ in list(flixster.edges())[:200]:
            assert flixster.has_edge(v, u)

    def test_fixed_scheme(self):
        g = datasets.load("twitter", scale=0.01, scheme="fixed", probability=0.02)
        for _, _, p in list(g.edges())[:50]:
            assert p == pytest.approx(0.02)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            datasets.load("facebook")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            datasets.load("orkut", scale=0.0)
        with pytest.raises(ValueError):
            datasets.load("orkut", scale=2.0)

    def test_bad_scheme(self):
        with pytest.raises(ValueError):
            datasets.load("orkut", scale=0.01, scheme="tr")

    def test_table2_rows(self):
        rows = datasets.table2_rows(scale=0.02)
        assert len(rows) == 5
        names = [r["network"] for r in rows]
        assert names == list(datasets.dataset_names())
        orkut = rows[-1]
        assert orkut["type"] == "undirected"
        assert orkut["paper_avg_degree"] == 77.5

    def test_density_ordering_preserved(self):
        # Orkut must stay the densest, the Douban pair the sparsest.
        degs = {
            name: datasets.load(name, scale=0.02).average_degree()
            for name in datasets.dataset_names()
        }
        assert degs["orkut"] > degs["twitter"] > degs["douban-book"]
