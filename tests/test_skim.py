"""Tests for the SKIM implementation and its prefix-preserving behaviour."""

import numpy as np
import pytest

from repro.diffusion.ic import estimate_spread
from repro.graph.generators import line_graph, star_graph
from repro.rrset.prima import prima
from repro.rrset.skim import skim


class TestSKIMBasics:
    def test_star_hub_first(self):
        graph = star_graph(30, probability=0.7)
        result = skim(graph, 3, rng=np.random.default_rng(0))
        assert result.seeds[0] == 0

    def test_seed_count_and_uniqueness(self, small_graph):
        result = skim(small_graph, 8, rng=np.random.default_rng(1))
        assert len(result.seeds) == 8
        assert len(set(result.seeds)) == 8

    def test_prefix_spreads_monotone(self, small_graph):
        result = skim(small_graph, 10, rng=np.random.default_rng(2))
        spreads = list(result.prefix_spreads)
        assert spreads == sorted(spreads)
        assert len(spreads) == 10

    def test_zero_budget(self, small_graph):
        result = skim(small_graph, 0)
        assert result.seeds == ()

    def test_budget_capped_at_n(self):
        graph = line_graph(4, 0.5)
        result = skim(graph, 10, num_instances=8, rng=np.random.default_rng(3))
        assert len(result.seeds) == 4

    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            skim(small_graph, -1)
        with pytest.raises(ValueError):
            skim(small_graph, 3, num_instances=0)
        with pytest.raises(ValueError):
            skim(small_graph, 3, sketch_size=1)

    def test_seeds_for_budget(self, small_graph):
        result = skim(small_graph, 6, rng=np.random.default_rng(4))
        assert result.seeds_for_budget(3) == result.seeds[:3]
        with pytest.raises(ValueError):
            result.seeds_for_budget(7)


class TestSKIMQuality:
    def test_coverage_estimate_tracks_mc_spread(self, small_graph):
        result = skim(
            small_graph, 5, num_instances=64, rng=np.random.default_rng(5)
        )
        mc = estimate_spread(
            small_graph, result.seeds, 400, np.random.default_rng(6)
        )
        assert result.prefix_spreads[-1] == pytest.approx(mc, rel=0.25)

    def test_prefixes_comparable_to_prima(self, medium_graph):
        """Both prefix-preserving orderings should be near-equivalent."""
        skim_result = skim(
            medium_graph, 20, num_instances=48, rng=np.random.default_rng(7)
        )
        prima_result = prima(
            medium_graph, [20, 5], rng=np.random.default_rng(8)
        )
        rng = np.random.default_rng(9)
        for k in (5, 20):
            spread_skim = estimate_spread(
                medium_graph, skim_result.seeds_for_budget(k), 250, rng
            )
            spread_prima = estimate_spread(
                medium_graph, prima_result.seeds_for_budget(k), 250, rng
            )
            assert spread_skim >= 0.8 * spread_prima

    def test_deterministic_given_rng(self, small_graph):
        a = skim(small_graph, 5, rng=np.random.default_rng(10))
        b = skim(small_graph, 5, rng=np.random.default_rng(10))
        assert a.seeds == b.seeds
