"""Batched forward-simulation engine: equivalence against the sequential
oracles (IC / Com-IC / UIC), the generic-triggering vectorized sampler, and
the backend plumbing of the forward estimators.

Contract under test (DESIGN.md §3): the sequential simulators stay
byte-identical reference oracles; the batched engine consumes randomness in
vectorized order, so agreement is *exact* on deterministic instances and
*statistical* elsewhere.  Statistical tolerances are set at >= 5 sigma of
the Monte-Carlo noise so the pins hold across numpy versions.
"""

import numpy as np
import pytest

from repro.baselines._comic_common import _forward_adopter_worlds, _GapSampler
from repro.diffusion.adoption import adopt
from repro.diffusion.batch_forward import (
    MAX_BATCH_ITEMS,
    _decision_tables,
    as_generator,
    batch_simulate_comic,
    batch_simulate_ic,
    batch_simulate_uic,
    spawn_world_rngs,
    supports_batched_uic,
)
from repro.diffusion.comic import (
    ComICModel,
    estimate_comic_spread,
    simulate_comic,
)
from repro.diffusion.ic import estimate_spread
from repro.diffusion.triggering import (
    AttentionICTriggering,
    DistributionTriggering,
    IndependentCascadeTriggering,
    LinearThresholdTriggering,
    TriggeringModel,
    build_trigger_csr,
    sample_trigger_members,
)
from repro.diffusion.uic import simulate_uic
from repro.diffusion.welfare import estimate_adoption, estimate_welfare
from repro.engine import EngineContext
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import line_graph, random_wc_graph, star_graph
from repro.rrset.batch import supports_batched
from repro.rrset.rrgen import RRCollection
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise, ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import AdditiveValuation, TableValuation

GAP = ComICModel(0.5, 0.84, 0.5, 0.84)


def _ctx(backend, rng):
    """Shorthand: an EngineContext with an explicit backend and stream."""
    return EngineContext.create(backend=backend, rng=rng)


@pytest.fixture
def wc400():
    return random_wc_graph(400, avg_degree=6, seed=7)


@pytest.fixture
def two_item_model():
    return UtilityModel(
        TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0}),
        AdditivePrice([3.0, 4.0]),
        GaussianNoise([1.0, 1.0]),
    )


class TestBatchIC:
    def test_statistical_equivalence(self, wc400):
        seeds = [0, 5, 10, 17]
        active = batch_simulate_ic(
            wc400, seeds, 4000, np.random.default_rng(1)
        )
        batched = active.sum(axis=1).mean()
        sequential = estimate_spread(
            wc400, seeds, 4000, np.random.default_rng(2)
        )
        # Spread std is a few nodes; 4000 worlds puts 5 sigma well under 1.
        assert batched == pytest.approx(sequential, abs=0.75)

    def test_deterministic_line(self):
        active = batch_simulate_ic(
            line_graph(10, 1.0), [0], 5, np.random.default_rng(0)
        )
        assert active.shape == (5, 10)
        assert active.all()

    def test_seeds_always_active_and_deduped(self, wc400):
        active = batch_simulate_ic(
            wc400, [3, 3, 9], 7, np.random.default_rng(0)
        )
        assert active[:, 3].all()
        assert active[:, 9].all()

    def test_empty_cases(self, wc400):
        assert batch_simulate_ic(
            wc400, [], 4, np.random.default_rng(0)
        ).sum() == 0
        assert batch_simulate_ic(
            wc400, [1], 0, np.random.default_rng(0)
        ).shape == (0, 400)

    def test_seed_out_of_range(self, wc400):
        with pytest.raises(IndexError):
            batch_simulate_ic(wc400, [400], 2, np.random.default_rng(0))


class TestBatchComIC:
    def test_statistical_equivalence(self, wc400):
        result = batch_simulate_comic(
            wc400, GAP, [0, 5, 10, 17], [3, 11], 4000,
            np.random.default_rng(3),
        )
        batched = result.adopter_counts(0).mean()
        rng = np.random.default_rng(4)
        total = 0
        for _ in range(4000):
            total += len(
                simulate_comic(wc400, GAP, [0, 5, 10, 17], [3, 11], rng)
                .adopted_a
            )
        assert batched == pytest.approx(total / 4000, abs=0.6)

    def test_deterministic_degenerate_gaps(self):
        """q = 1 everywhere on a probability-1 line: item A floods, item B
        stays at its seed (node 9 has no out-edges)."""
        model = ComICModel(1.0, 1.0, 1.0, 1.0)
        result = batch_simulate_comic(
            line_graph(10, 1.0), model, [0], [9], 3, np.random.default_rng(0)
        )
        assert result.adopted_a.all()
        assert result.adopted_b[:, 9].all()
        assert result.adopted_b[:, :9].sum() == 0

    def test_reconsideration_boost(self):
        """Seeding the complement must raise adoption (the q(A|B) boost),
        matching the sequential reconsideration semantics."""
        model = ComICModel(0.2, 0.9, 1.0, 1.0)
        graph = star_graph(50, probability=1.0)
        alone = batch_simulate_comic(
            graph, model, [0], [], 3000, np.random.default_rng(1)
        ).adopter_counts(0).mean()
        boosted = batch_simulate_comic(
            graph, model, [0], [0], 3000, np.random.default_rng(1)
        ).adopter_counts(0).mean()
        assert boosted > 2.0 * alone
        # Analytic means: 0.2 * (1 + 49 * 0.2) and 0.9 * (1 + 49 * 0.9).
        assert alone == pytest.approx(0.2 * (1 + 49 * 0.2), rel=0.15)
        assert boosted == pytest.approx(0.9 * (1 + 49 * 0.9), rel=0.05)

    def test_competitive_parameterization_rejected(self, wc400):
        with pytest.raises(ValueError):
            batch_simulate_comic(
                wc400, ComICModel(0.5, 0.2, 0.5, 0.5), [0], [], 2,
                np.random.default_rng(0),
            )

    def test_estimate_backend_dispatch(self, wc400):
        sequential = estimate_comic_spread(
            wc400, GAP, [1, 2], [3], item=0, num_samples=800,
            ctx=_ctx("sequential", np.random.default_rng(5)),
        )
        batched = estimate_comic_spread(
            wc400, GAP, [1, 2], [3], item=0, num_samples=800,
            ctx=_ctx("batched", np.random.default_rng(6)),
        )
        assert batched == pytest.approx(sequential, rel=0.25, abs=0.5)


class TestEstimateComicSpreadSeeds:
    """The integer-seed bugfix: reproducible runs from the CLI."""

    def test_integer_seed_reproducible_both_backends(self, wc400):
        for backend in ("sequential", "batched"):
            runs = [
                estimate_comic_spread(
                    wc400, GAP, [1, 2], [3], item=0, num_samples=40,
                    ctx=_ctx(backend, 42),
                )
                for _ in range(2)
            ]
            assert runs[0] == runs[1]

    def test_different_seeds_differ(self, wc400):
        a = estimate_comic_spread(
            wc400, GAP, [1, 2], [3], item=0, num_samples=40, ctx=_ctx("sequential", 42),
        )
        b = estimate_comic_spread(
            wc400, GAP, [1, 2], [3], item=0, num_samples=40, ctx=_ctx("sequential", 43),
        )
        assert a != b

    def test_sequential_uses_per_world_child_streams(self, wc400):
        """World i depends only on (seed, i): recompute by hand."""
        estimate = estimate_comic_spread(
            wc400, GAP, [1, 2], [3], item=0, num_samples=10, ctx=_ctx("sequential", 7),
        )
        total = 0
        for world_rng in spawn_world_rngs(7, 10):
            total += len(
                simulate_comic(wc400, GAP, [1, 2], [3], world_rng).adopted_a
            )
        assert estimate == total / 10

    def test_as_generator_coercions(self):
        assert isinstance(as_generator(None), np.random.Generator)
        assert isinstance(as_generator(5), np.random.Generator)
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen


class TestBatchUIC:
    def test_welfare_statistical_equivalence(self, wc400, two_item_model):
        alloc = [(v, i) for v in range(8) for i in (0, 1)]
        batched = batch_simulate_uic(
            wc400, two_item_model, alloc, 4000, np.random.default_rng(11)
        ).welfare
        rng = np.random.default_rng(12)
        sequential = np.array(
            [
                simulate_uic(wc400, two_item_model, alloc, rng).welfare
                for _ in range(4000)
            ]
        )
        # 5 sigma of the difference of two 4000-sample means.
        sigma = np.hypot(
            batched.std() / np.sqrt(4000), sequential.std() / np.sqrt(4000)
        )
        assert abs(batched.mean() - sequential.mean()) < 5.0 * sigma

    def test_adoption_marginals_match(self, two_item_model):
        graph = random_wc_graph(60, avg_degree=4, seed=2)
        alloc = [(0, 0), (1, 1), (2, 0), (2, 1)]
        batched = batch_simulate_uic(
            graph, two_item_model, alloc, 20000, np.random.default_rng(21)
        )
        bat_marginal = (batched.adopted > 0).mean(axis=0)
        rng = np.random.default_rng(22)
        seq_marginal = np.zeros(60)
        for _ in range(20000):
            for v in simulate_uic(graph, two_item_model, alloc, rng).adopted:
                seq_marginal[v] += 1
        seq_marginal /= 20000
        # Binomial 5 sigma at p ~ 0.5, N = 20k is ~0.018.
        assert np.abs(bat_marginal - seq_marginal).max() < 0.02

    def test_deterministic_world_exact_match(self):
        model = UtilityModel(
            TableValuation(2, {0b01: 4.0, 0b10: 2.0, 0b11: 9.0}),
            AdditivePrice([3.0, 3.0]),
            ZeroNoise(2),
        )
        graph = line_graph(10, 1.0)
        batched = batch_simulate_uic(
            graph, model, [(0, 0), (0, 1)], 4, np.random.default_rng(0)
        )
        sequential = simulate_uic(
            graph, model, [(0, 0), (0, 1)], np.random.default_rng(0)
        )
        assert np.allclose(batched.welfare, sequential.welfare)
        masks = np.zeros(10, dtype=np.int64)
        for v, mask in sequential.adopted.items():
            masks[v] = mask
        assert (batched.adopted == masks[None, :]).all()

    def test_fixed_noise_world(self, two_item_model):
        graph = line_graph(6, 1.0)
        noise = np.array([0.5, -0.2])
        alloc = [(0, 0), (0, 1)]
        batched = batch_simulate_uic(
            graph, two_item_model, alloc, 3, np.random.default_rng(0),
            noise_world=noise,
        )
        sequential = simulate_uic(
            graph, two_item_model, alloc, np.random.default_rng(0),
            noise_world=noise,
        )
        assert np.allclose(batched.welfare, sequential.welfare)

    # (Backend statistical-equivalence sweeps for estimate_welfare /
    # estimate_adoption moved to tests/test_engine_context.py.)

    def test_item_universe_cap_falls_back(self):
        """> MAX_BATCH_ITEMS items: estimate_welfare routes to the
        sequential loop (same rng => identical values) and says so with a
        UserWarning instead of degrading silently."""
        k = MAX_BATCH_ITEMS + 1
        model = UtilityModel(
            AdditiveValuation([1.0] * k),
            AdditivePrice([0.5] * k),
            ZeroNoise(k),
        )
        assert not supports_batched_uic(model, None)
        graph = line_graph(5, 1.0)
        alloc = [(0, i) for i in range(k)]
        with pytest.warns(UserWarning, match="falling back to the sequential"):
            batched_knob = estimate_welfare(
                graph, model, alloc, num_samples=10,
                ctx=_ctx("batched", np.random.default_rng(9)),
            )
        sequential = estimate_welfare(
            graph, model, alloc, num_samples=10,
            ctx=_ctx("sequential", np.random.default_rng(9)),
        )
        assert batched_knob.mean == sequential.mean

    def test_item_cap_warning_on_adoption_estimator(self):
        k = MAX_BATCH_ITEMS + 1
        model = UtilityModel(
            AdditiveValuation([1.0] * k),
            AdditivePrice([0.5] * k),
            ZeroNoise(k),
        )
        graph = line_graph(4, 1.0)
        with pytest.warns(UserWarning, match="at most"):
            estimate_adoption(
                graph, model, [(0, 0)], num_samples=3,
                ctx=_ctx("batched", np.random.default_rng(1)),
            )

    def test_no_warning_within_item_cap(self, wc400, two_item_model):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", UserWarning)
            estimate_welfare(
                wc400, two_item_model, [(0, 0)], num_samples=3,
                ctx=_ctx("batched", np.random.default_rng(1)),
            )
            estimate_welfare(
                wc400, two_item_model, [(0, 0)], num_samples=3,
                ctx=_ctx("sequential", np.random.default_rng(1)),
            )

    def test_batch_simulate_uic_rejects_oversized_universe(self):
        k = MAX_BATCH_ITEMS + 1
        model = UtilityModel(
            AdditiveValuation([1.0] * k),
            AdditivePrice([0.5] * k),
            ZeroNoise(k),
        )
        with pytest.raises(ValueError):
            batch_simulate_uic(
                line_graph(3, 1.0), model, [(0, 0)], 2,
                np.random.default_rng(0),
            )


class TestDecisionTables:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_adopt_exhaustively(self, k):
        """decision[w, desire, adopted] == adopt(table_w, desire, adopted)
        over every valid pair of random utility tables."""
        rng = np.random.default_rng(100 + k)
        tables = rng.normal(0.0, 2.0, size=(20, 1 << k))
        tables[:, 0] = 0.0  # U(emptyset) = 0 by construction
        decision = _decision_tables(tables)
        for w in range(tables.shape[0]):
            for desire in range(1 << k):
                sub = desire
                while True:
                    expected = adopt(tables[w], desire, sub)
                    assert decision[w, desire, sub] == expected
                    if sub == 0:
                        break
                    sub = (sub - 1) & desire

    def test_tied_utilities_take_union(self):
        # U({1}) == U({2}) == U({1,2}) == 1: the union of tied maximizers.
        tables = np.array([[0.0, 1.0, 1.0, 1.0]])
        decision = _decision_tables(tables)
        assert decision[0, 0b11, 0] == 0b11


class TestBatchPersonalized:
    """The batched personalized-noise UIC path (per-(world, node) tables)."""

    def test_statistical_equivalence(self, two_item_model):
        from repro.diffusion.personalized import estimate_welfare_personalized

        graph = random_wc_graph(300, 6, seed=13)
        alloc = [(v, i) for v in range(8) for i in (0, 1)]
        seq_values = []
        rng = np.random.default_rng(1)
        from repro.diffusion.personalized import simulate_uic_personalized

        for _ in range(800):
            seq_values.append(
                simulate_uic_personalized(
                    graph, two_item_model, alloc, rng
                ).welfare
            )
        seq_values = np.asarray(seq_values)
        from repro.diffusion.batch_forward import (
            batch_simulate_uic_personalized,
        )

        bat_values = batch_simulate_uic_personalized(
            graph, two_item_model, alloc, 800, np.random.default_rng(2)
        )
        sigma = np.hypot(
            seq_values.std() / np.sqrt(seq_values.size),
            bat_values.std() / np.sqrt(bat_values.size),
        )
        assert abs(seq_values.mean() - bat_values.mean()) < 5.0 * sigma
        # And through the public estimator, which routes by backend.
        est = estimate_welfare_personalized(
            graph, two_item_model, alloc, num_samples=800,
            rng=np.random.default_rng(2),
        )
        assert est == pytest.approx(float(bat_values.mean()))

    def test_deterministic_zero_noise_matches_sequential(self):
        """Zero noise collapses personalization: both backends must agree
        exactly on a probability-1 line."""
        from repro.diffusion.personalized import estimate_welfare_personalized

        model = UtilityModel(
            TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0}),
            AdditivePrice([1.0, 1.0]),
            ZeroNoise(2),
        )
        graph = line_graph(6, 1.0)
        alloc = [(0, 0), (0, 1)]
        seq = estimate_welfare_personalized(
            graph, model, alloc, num_samples=4,
            ctx=_ctx("sequential", np.random.default_rng(3)),
        )
        bat = estimate_welfare_personalized(
            graph, model, alloc, num_samples=4,
            ctx=_ctx("batched", np.random.default_rng(4)),
        )
        assert seq == bat

    def test_empty_allocation_and_zero_worlds(self, two_item_model):
        from repro.diffusion.batch_forward import (
            batch_simulate_uic_personalized,
        )

        graph = line_graph(4, 1.0)
        assert (
            batch_simulate_uic_personalized(
                graph, two_item_model, [], 5, np.random.default_rng(0)
            )
            == 0.0
        ).all()
        assert batch_simulate_uic_personalized(
            graph, two_item_model, [(0, 0)], 0, np.random.default_rng(0)
        ).shape == (0,)

    def test_item_cap_warns_and_falls_back(self):
        from repro.diffusion.personalized import estimate_welfare_personalized

        k = MAX_BATCH_ITEMS + 1
        model = UtilityModel(
            AdditiveValuation([1.0] * k),
            AdditivePrice([0.5] * k),
            ZeroNoise(k),
        )
        graph = line_graph(3, 1.0)
        with pytest.warns(UserWarning, match="at most"):
            estimate_welfare_personalized(
                graph, model, [(0, 0)], num_samples=2,
                ctx=_ctx("batched", np.random.default_rng(0)),
            )


class TestLazyTriggerLog:
    """Lazy per-(world, node) trigger sampling on the forward UIC path."""

    def test_only_reached_pairs_sampled(self, two_item_model):
        """A cascade confined to a component must never draw trigger sets
        outside it — the memory contract of the lazy log."""
        from repro.diffusion.batch_forward import _LazyTriggerLog

        # Two disconnected probability-1 lines: 0->1->2, 3->4->5.
        graph = InfluenceGraph(
            6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)]
        )
        result = batch_simulate_uic(
            graph, two_item_model, [(0, 0), (0, 1)], 8,
            np.random.default_rng(0),
            triggering=LinearThresholdTriggering(),
        )
        # Adoption spread down the seeded line only.
        assert (result.adopted[:, 3:] == 0).all()
        # Direct check on the log: sampling is confined to targeted nodes.
        csr = build_trigger_csr(graph, LinearThresholdTriggering())
        log = _LazyTriggerLog(2, 6, csr)
        rng = np.random.default_rng(1)
        w = np.array([0, 0], dtype=np.int64)
        u = np.array([0, 1], dtype=np.int64)
        v = np.array([1, 2], dtype=np.int64)
        log.live_mask(rng, w, u, v)
        assert log._sampled[0, [1, 2]].all()
        assert not log._sampled[0, [0, 3, 4, 5]].any()
        assert not log._sampled[1].any()

    def test_membership_fixed_across_rounds(self):
        """Re-querying a sampled pair re-reads the same draw (deferred
        decision): the live mask for identical queries never changes."""
        from repro.diffusion.batch_forward import _LazyTriggerLog

        graph = random_wc_graph(50, 4, seed=21)
        csr = build_trigger_csr(graph, LinearThresholdTriggering())
        log = _LazyTriggerLog(3, 50, csr)
        rng = np.random.default_rng(2)
        w = np.repeat(np.arange(3, dtype=np.int64), 50)
        v = np.tile(np.arange(50, dtype=np.int64), 3)
        # Query every (world, target) from a fixed pseudo-source set.
        u = (v + 1) % 50
        first = log.live_mask(rng, w, u, v)
        again = log.live_mask(rng, w, u, v)
        assert np.array_equal(first, again)

    def test_lt_mean_agrees_with_pre_sampled_world(self, two_item_model):
        """The lazy path must keep the LT welfare distribution (checked
        against the sequential oracle at high sample count)."""
        graph = random_wc_graph(150, 5, seed=17)
        alloc = [(v, v % 2) for v in range(6)]
        batched = estimate_welfare(
            graph, two_item_model, alloc, num_samples=2000,
            triggering="lt", ctx=_ctx("batched", np.random.default_rng(7)),
        )
        sequential = estimate_welfare(
            graph, two_item_model, alloc, num_samples=2000,
            triggering="lt",
            ctx=_ctx("sequential", np.random.default_rng(8)),
        )
        sigma = np.hypot(batched.stderr, sequential.stderr)
        assert abs(batched.mean - sequential.mean) < 5.0 * sigma


class TestForwardUnderTriggering:
    def test_lt_welfare_batched_vs_sequential(self, two_item_model):
        graph = random_wc_graph(300, 6, seed=9)
        alloc = [(v, i) for v in range(8) for i in (0, 1)]
        batched = estimate_welfare(
            graph, two_item_model, alloc, num_samples=1500,
            triggering="lt", ctx=_ctx("batched", np.random.default_rng(1)),
        )
        sequential = estimate_welfare(
            graph, two_item_model, alloc, num_samples=1500,
            triggering="lt",
            ctx=_ctx("sequential", np.random.default_rng(2)),
        )
        sigma = np.hypot(batched.stderr, sequential.stderr)
        assert abs(batched.mean - sequential.mean) < 5.0 * sigma

    def test_explicit_ic_triggering_matches_fast_path(self, two_item_model):
        graph = random_wc_graph(200, 5, seed=3)
        alloc = [(0, 0), (1, 1)]
        fast = estimate_welfare(
            graph, two_item_model, alloc, num_samples=1500,
            ctx=_ctx("batched", np.random.default_rng(5)),
        )
        explicit = estimate_welfare(
            graph, two_item_model, alloc, num_samples=1500,
            triggering=IndependentCascadeTriggering(),
            ctx=_ctx("batched", np.random.default_rng(6)),
        )
        sigma = np.hypot(fast.stderr, explicit.stderr)
        assert abs(fast.mean - explicit.mean) < 5.0 * sigma

    def test_attention_triggering_batched_forward(self, two_item_model):
        """A generic (neither IC nor LT) model runs batched forward."""
        graph = random_wc_graph(200, 5, seed=4)
        model = AttentionICTriggering(max_attention=2)
        assert supports_batched_uic(two_item_model, model)
        alloc = [(0, 0), (1, 1), (2, 0)]
        batched = estimate_welfare(
            graph, two_item_model, alloc, num_samples=1500,
            triggering=model,
            ctx=_ctx("batched", np.random.default_rng(7)),
        )
        sequential = estimate_welfare(
            graph, two_item_model, alloc, num_samples=1500,
            triggering=model,
            ctx=_ctx("sequential", np.random.default_rng(8)),
        )
        sigma = np.hypot(batched.stderr, sequential.stderr)
        assert abs(batched.mean - sequential.mean) < 5.0 * sigma


class TestGenericTriggeringRRSets:
    def test_supports_batched_covers_distribution_models(self):
        """Regression pin: generic triggering models with an explicit
        distribution are batched, not sequential-fallback."""
        assert supports_batched(AttentionICTriggering(max_attention=3))
        assert supports_batched(LinearThresholdTriggering())
        assert supports_batched(IndependentCascadeTriggering())
        assert supports_batched(None)

        class OpaqueTrigger(TriggeringModel):
            def sample_trigger_set(self, graph, node, rng):
                return graph.in_neighbors(node)[:0]

        assert not supports_batched(OpaqueTrigger())

    def test_trigger_csr_marginals_match_distribution(self):
        graph = InfluenceGraph(
            3, [(0, 2, 0.3), (1, 2, 0.5)]
        )
        model = AttentionICTriggering(max_attention=2)
        csr = build_trigger_csr(graph, model)
        rng = np.random.default_rng(5)
        trials = 20000
        nodes = np.full(trials, 2, dtype=np.int64)
        members, degs = sample_trigger_members(csr, nodes, rng.random(trials))
        counts = np.bincount(members, minlength=3)
        # Marginal inclusion probabilities equal the edge probabilities.
        assert counts[0] / trials == pytest.approx(0.3, abs=0.02)
        assert counts[1] / trials == pytest.approx(0.5, abs=0.02)
        # Empty-set frequency equals (1 - 0.3) * (1 - 0.5).
        assert (degs == 0).mean() == pytest.approx(0.35, abs=0.02)

    def test_sequential_sampler_same_distribution(self):
        graph = InfluenceGraph(3, [(0, 2, 0.3), (1, 2, 0.5)])
        model = AttentionICTriggering(max_attention=2)
        rng = np.random.default_rng(6)
        counts = np.zeros(3)
        trials = 20000
        for _ in range(trials):
            for u in model.sample_trigger_set(graph, 2, rng):
                counts[int(u)] += 1
        assert counts[0] / trials == pytest.approx(0.3, abs=0.02)
        assert counts[1] / trials == pytest.approx(0.5, abs=0.02)

    def test_rr_collection_batched_vs_sequential(self):
        graph = random_wc_graph(300, avg_degree=5, seed=11)
        model = AttentionICTriggering(max_attention=3)
        count = 4000
        sequential = RRCollection(
            graph, np.random.default_rng(1), triggering=model,
            backend="sequential",
        )
        sequential.generate(count)
        batched = RRCollection(
            graph, np.random.default_rng(2), triggering=model,
            backend="batched",
        )
        batched.generate(count)
        assert batched.num_sets == sequential.num_sets == count
        assert batched.total_width == pytest.approx(
            sequential.total_width, rel=0.08
        )
        probe = list(range(0, 300, 15))
        assert batched.coverage_fraction(probe) == pytest.approx(
            sequential.coverage_fraction(probe), rel=0.1, abs=0.01
        )

    def test_all_empty_distribution_yields_root_only_sets(self):
        """A distribution model whose candidates are all empty-set mass
        (zero candidates everywhere) must sample batched without crashing:
        every RR set is its root alone."""

        class AlwaysEmpty(DistributionTriggering):
            def trigger_distribution(self, graph, node):
                return []

        model = AlwaysEmpty()
        assert supports_batched(model)
        graph = random_wc_graph(50, avg_degree=4, seed=1)
        collection = RRCollection(
            graph, np.random.default_rng(0), triggering=model,
            backend="batched",
        )
        collection.generate(20)
        assert collection.num_sets == 20
        assert collection.total_width == 20  # roots only

    def test_distribution_validation(self):
        class BadDistribution(DistributionTriggering):
            def trigger_distribution(self, graph, node):
                return [(0.9, graph.in_neighbors(node)),
                        (0.4, graph.in_neighbors(node))]

        graph = InfluenceGraph(2, [(0, 1, 0.5)])
        with pytest.raises(ValueError):
            build_trigger_csr(graph, BadDistribution())


class TestForwardAdopterWorlds:
    def test_batched_returns_bitmap(self, wc400):
        worlds = _forward_adopter_worlds(
            wc400, GAP, 0, [0, 1, 2], 16, np.random.default_rng(1),
            backend="batched",
        )
        assert isinstance(worlds, np.ndarray)
        assert worlds.shape == (16, 400)
        assert worlds.dtype == bool
        # Seeds of the fixed item adopt with probability q_a_empty > 0;
        # over 16 worlds some seed adoption must show up.
        assert worlds[:, [0, 1, 2]].any()

    def test_sequential_returns_sets(self, wc400):
        worlds = _forward_adopter_worlds(
            wc400, GAP, 0, [0, 1, 2], 4, np.random.default_rng(1),
            backend="sequential",
        )
        assert isinstance(worlds, list)
        assert len(worlds) == 4
        assert all(isinstance(w, set) for w in worlds)

    def test_backends_agree_on_mean_world_size(self, wc400):
        sequential = _forward_adopter_worlds(
            wc400, GAP, 0, list(range(10)), 300, np.random.default_rng(2),
            backend="sequential",
        )
        batched = _forward_adopter_worlds(
            wc400, GAP, 0, list(range(10)), 300, np.random.default_rng(3),
            backend="batched",
        )
        seq_mean = np.mean([len(w) for w in sequential])
        bat_mean = batched.sum(axis=1).mean()
        assert bat_mean == pytest.approx(seq_mean, rel=0.15, abs=0.5)

    def test_gap_sampler_rejects_bitmap_on_sequential(self, wc400):
        sampler = _GapSampler(
            wc400, np.random.default_rng(0), 0.5, 0.84, "sequential"
        )
        with pytest.raises(ValueError):
            sampler.set_worlds(np.zeros((2, 400), dtype=bool))

    def test_gap_sampler_accepts_empty_bitmap(self, wc400):
        sampler = _GapSampler(
            wc400, np.random.default_rng(0), 0.5, 0.84, "batched"
        )
        sampler.set_worlds(np.zeros((0, 400), dtype=bool))
        members, lengths = sampler.sample(8)
        assert lengths.shape == (8,)
