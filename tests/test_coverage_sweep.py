"""Fine-grained coverage of paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.diffusion.comic import ComICModel, estimate_comic_spread
from repro.diffusion.uic import simulate_uic
from repro.diffusion.welfare import estimate_welfare
from repro.experiments._two_item import TwoItemRun
from repro.experiments.fig4_welfare import welfare_series
from repro.experiments.fig5_runtime import runtime_series
from repro.experiments.fig6_rrsets import rrset_series
from repro.experiments.runner import _fmt, format_table
from repro.graph import datasets
from repro.graph.generators import line_graph
from repro.rrset.prima import prima
from repro.utility.itemsets import subsets_between
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise, NoiseModel, ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


class TestUICResultDetails:
    def test_rounds_counted(self, rng, deterministic_two_item_model):
        graph = line_graph(5, 1.0)
        result = simulate_uic(
            graph, deterministic_two_item_model, [(0, 0)], rng
        )
        # 1 seeding round + 4 propagation hops + 1 empty-frontier round check
        assert result.rounds >= 5

    def test_no_adoption_single_round(self, rng):
        model = UtilityModel(
            TableValuation(1, {0b1: 0.5}, validate="monotone"),
            AdditivePrice([5.0]),
            ZeroNoise(1),
        )
        graph = line_graph(4, 1.0)
        result = simulate_uic(graph, model, [(0, 0)], rng)
        assert result.rounds == 1
        assert result.welfare == 0.0

    def test_noise_world_returned(self, rng, config1_model):
        graph = line_graph(3, 1.0)
        result = simulate_uic(graph, config1_model, [(0, 0)], rng)
        assert result.noise_world.shape == (2,)


class TestWelfareEstimateBehaviour:
    def test_stderr_shrinks_with_samples(self, small_graph, config1_model):
        alloc = [(v, i) for v in range(5) for i in (0, 1)]
        small = estimate_welfare(
            small_graph, config1_model, alloc, 30, np.random.default_rng(1)
        )
        large = estimate_welfare(
            small_graph, config1_model, alloc, 300, np.random.default_rng(1)
        )
        assert large.stderr < small.stderr

    def test_single_sample_zero_stderr(self, small_graph, config1_model):
        est = estimate_welfare(
            small_graph, config1_model, [(0, 0)], 1, np.random.default_rng(2)
        )
        assert est.stderr == 0.0
        assert est.num_samples == 1


class TestComicSpreadEstimator:
    def test_default_rng(self):
        model = ComICModel(1.0, 1.0, 1.0, 1.0)
        spread = estimate_comic_spread(
            line_graph(4, 1.0), model, [0], [], item=0, num_samples=10
        )
        assert spread == pytest.approx(4.0)

    def test_item_b_spread(self):
        model = ComICModel(1.0, 1.0, 1.0, 1.0)
        spread = estimate_comic_spread(
            line_graph(4, 1.0), model, [], [2], item=1, num_samples=10
        )
        assert spread == pytest.approx(2.0)  # nodes 2, 3


class TestSeriesHelpers:
    def _runs(self):
        return [
            TwoItemRun("bundleGRD", (10, 10), 5.0, 0.1, 0.5, 100),
            TwoItemRun("item-disj", (10, 10), 3.0, 0.1, 0.4, 90),
            TwoItemRun("bundleGRD", (20, 20), 8.0, 0.1, 0.6, 120),
            TwoItemRun("item-disj", (20, 20), 4.0, 0.1, 0.5, 95),
        ]

    def test_welfare_series(self):
        series = welfare_series(self._runs())
        assert series["bundleGRD"] == [5.0, 8.0]
        assert series["item-disj"] == [3.0, 4.0]

    def test_runtime_series(self):
        series = runtime_series(self._runs())
        assert series["bundleGRD"] == [0.5, 0.6]

    def test_rrset_series(self):
        series = rrset_series(self._runs())
        assert series["item-disj"] == [90, 95]


class TestRunnerFormatting:
    def test_fmt_large_numbers_comma(self):
        assert _fmt(1234567.0) == "1,234,567"

    def test_fmt_small_float(self):
        assert _fmt(0.123456) == "0.123"

    def test_fmt_zero(self):
        assert _fmt(0.0) == "0"

    def test_fmt_non_float_passthrough(self):
        assert _fmt("abc") == "abc"
        assert _fmt(42) == "42"

    def test_format_table_missing_keys(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows)
        assert "3" in text  # missing b rendered as empty


class TestDatasetCaching:
    def test_different_scales_are_distinct(self):
        a = datasets.load("flixster", scale=0.02)
        b = datasets.load("flixster", scale=0.03)
        assert a.num_nodes != b.num_nodes

    def test_scheme_variants_cached_separately(self):
        wc = datasets.load("twitter", scale=0.01, scheme="wc")
        fixed = datasets.load("twitter", scale=0.01, scheme="fixed")
        assert wc is not fixed

    def test_minimum_size_floor(self):
        tiny = datasets.load("flixster", scale=0.0001)
        assert tiny.num_nodes >= 16


class TestItemsetsExtra:
    def test_subsets_between_empty_bounds(self):
        assert list(subsets_between(0, 0)) == [0]

    def test_subsets_between_full_range_count(self):
        subs = list(subsets_between(0, 0b1111))
        assert len(subs) == 16


class TestPRIMAEllPrimeOverride:
    def test_override_changes_sample_size(self, small_graph):
        default = prima(small_graph, [10], rng=np.random.default_rng(0))
        inflated = prima(
            small_graph, [10], rng=np.random.default_rng(0), ell_prime=3.0
        )
        assert inflated.num_rr_sets > default.num_rr_sets


class TestNoiseStaticHelpers:
    def test_total_empty_mask(self):
        assert NoiseModel.total(np.array([1.0, 2.0]), 0) == 0.0

    def test_gaussian_default_mc_exceed(self):
        # exercise the base-class MC fallback through a subclass without a
        # closed form
        class MCNoise(GaussianNoise):
            def exceed_probability(self, item, threshold):
                return NoiseModel.exceed_probability(self, item, threshold)

        noise = MCNoise([1.0])
        assert noise.exceed_probability(0, 0.0) == pytest.approx(0.5, abs=0.02)


class TestCLIRemainingCommands:
    def test_fig5_tiny(self, capsys):
        code = cli_main(
            ["fig5", "--networks", "flixster", "--scale", "0.01",
             "--samples", "3"]
        )
        assert code == 0
        assert "Fig 5" in capsys.readouterr().out

    def test_fig6_tiny(self, capsys):
        code = cli_main(
            ["fig6", "--networks", "flixster", "--scale", "0.01"]
        )
        assert code == 0
        assert "rr_sets" in capsys.readouterr().out

    def test_fig7_tiny(self, capsys):
        code = cli_main(
            ["fig7", "--config", "5", "--budgets", "20",
             "--scale", "0.01", "--samples", "5"]
        )
        assert code == 0
        assert "bundleGRD" in capsys.readouterr().out

    def test_fig8a_tiny(self, capsys):
        code = cli_main(
            ["fig8a", "--items", "1", "2", "--scale", "0.01", "--samples", "3"]
        )
        assert code == 0
        assert "num_items" in capsys.readouterr().out

    def test_fig8bc_tiny(self, capsys):
        code = cli_main(
            ["fig8bc", "--budgets", "30", "--scale", "0.01", "--samples", "5"]
        )
        assert code == 0
        assert "bundle-disj" in capsys.readouterr().out

    def test_fig9abc_tiny(self, capsys):
        code = cli_main(
            ["fig9abc", "--network", "orkut", "--scale", "0.01",
             "--samples", "5"]
        )
        assert code == 0
        assert "bdhs_step" in capsys.readouterr().out
