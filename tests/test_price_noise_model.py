"""Unit tests for AdditivePrice, noise models and UtilityModel."""


import numpy as np
import pytest

from repro.utility.itemsets import full_mask, iter_subsets
from repro.utility.model import UtilityModel
from repro.utility.noise import (
    GaussianNoise,
    NoiseModel,
    TruncatedGaussianNoise,
    ZeroNoise,
)
from repro.utility.price import AdditivePrice
from repro.utility.valuation import AdditiveValuation, TableValuation


class TestAdditivePrice:
    def test_additivity(self):
        p = AdditivePrice([1.0, 2.0, 4.0])
        assert p.price(0) == 0.0
        assert p.price(0b101) == pytest.approx(5.0)
        assert p.price(0b111) == pytest.approx(7.0)

    def test_item_price(self):
        p = AdditivePrice([1.5, 2.5])
        assert p.item_price(1) == 2.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AdditivePrice([1.0, -0.5])

    def test_as_array_read_only(self):
        p = AdditivePrice([1.0, 2.0])
        arr = p.as_array()
        with pytest.raises(ValueError):
            arr[0] = 9.0


class TestNoiseModels:
    def test_zero_noise(self, rng):
        n = ZeroNoise(3)
        world = n.sample(rng)
        assert np.all(world == 0)
        assert n.item_std(0) == 0.0
        assert n.exceed_probability(0, -1.0) == 1.0
        assert n.exceed_probability(0, 0.5) == 0.0

    def test_gaussian_zero_mean(self, rng):
        n = GaussianNoise([2.0, 0.5])
        samples = np.array([n.sample(rng) for _ in range(4000)])
        assert samples[:, 0].mean() == pytest.approx(0.0, abs=0.15)
        assert samples[:, 0].std() == pytest.approx(2.0, abs=0.15)
        assert samples[:, 1].std() == pytest.approx(0.5, abs=0.05)

    def test_gaussian_exceed_probability_closed_form(self):
        n = GaussianNoise([1.0])
        assert n.exceed_probability(0, 0.0) == pytest.approx(0.5)
        assert n.exceed_probability(0, -1.0) == pytest.approx(0.8413, abs=1e-3)
        assert n.exceed_probability(0, 1.0) == pytest.approx(0.1587, abs=1e-3)

    def test_gaussian_zero_std_degenerate(self):
        n = GaussianNoise([0.0])
        assert n.exceed_probability(0, 0.1) == 0.0
        assert n.exceed_probability(0, -0.1) == 1.0

    def test_gaussian_uniform_constructor(self):
        n = GaussianNoise.uniform(4, 1.5)
        assert n.num_items == 4
        assert n.item_std(3) == 1.5

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise([-1.0])

    def test_truncated_respects_bounds(self, rng):
        n = TruncatedGaussianNoise([5.0, 5.0], [1.0, 0.5])
        for _ in range(200):
            world = n.sample(rng)
            assert abs(world[0]) <= 1.0
            assert abs(world[1]) <= 0.5

    def test_truncated_validation(self):
        with pytest.raises(ValueError):
            TruncatedGaussianNoise([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            TruncatedGaussianNoise([-1.0], [1.0])

    def test_total_over_mask(self):
        world = np.array([1.0, -2.0, 4.0])
        assert NoiseModel.total(world, 0b101) == pytest.approx(5.0)
        assert NoiseModel.total(world, 0) == 0.0


class TestUtilityModel:
    def test_expected_utility(self, config1_model):
        assert config1_model.expected_utility(0b01) == pytest.approx(0.0)
        assert config1_model.expected_utility(0b10) == pytest.approx(0.0)
        assert config1_model.expected_utility(0b11) == pytest.approx(1.0)

    def test_utility_with_noise_world(self, config1_model):
        world = np.array([0.5, -0.25])
        assert config1_model.utility(0b01, world) == pytest.approx(0.5)
        assert config1_model.utility(0b11, world) == pytest.approx(1.25)

    def test_utility_table_matches_pointwise(self, config1_model, rng):
        world = config1_model.sample_noise_world(rng)
        table = config1_model.utility_table(world)
        for mask in iter_subsets(full_mask(2)):
            assert table[mask] == pytest.approx(
                config1_model.utility(mask, world)
            )

    def test_utility_table_large_universe(self, rng):
        model = UtilityModel(
            AdditiveValuation([2.0] * 6),
            AdditivePrice([1.0] * 6),
            GaussianNoise.uniform(6, 1.0),
        )
        world = model.sample_noise_world(rng)
        table = model.utility_table(world)
        for mask in (0, 0b1, 0b101010, 0b111111):
            assert table[mask] == pytest.approx(model.utility(mask, world))

    def test_best_itemset_union_tie_break(self):
        # Zero-noise config 1: U(i1)=U(i2)=0... best is {i1,i2} with 1.
        model = UtilityModel(
            TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 7.0}),
            AdditivePrice([3.0, 4.0]),
            ZeroNoise(2),
        )
        table = model.utility_table(None)
        # all four masks have utility 0 -> union of ties is {i1,i2}
        assert model.best_itemset(table) == 0b11

    def test_is_local_maximum(self, config1_model):
        table = config1_model.utility_table(None)
        assert UtilityModel.is_local_maximum(table, 0b11)
        assert UtilityModel.is_local_maximum(table, 0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UtilityModel(
                AdditiveValuation([1.0, 2.0]), AdditivePrice([1.0]), ZeroNoise(2)
            )
        with pytest.raises(ValueError):
            UtilityModel(
                AdditiveValuation([1.0]), AdditivePrice([1.0]), ZeroNoise(2)
            )
        with pytest.raises(ValueError):
            UtilityModel(
                AdditiveValuation([1.0]),
                AdditivePrice([1.0]),
                ZeroNoise(1),
                item_names=["a", "b"],
            )

    def test_item_names(self, config1_model):
        assert config1_model.item_name(0) == "i1"
        named = UtilityModel(
            AdditiveValuation([1.0]),
            AdditivePrice([0.5]),
            item_names=["widget"],
        )
        assert named.item_name(0) == "widget"
        assert named.describe(0b1) == "{widget}"
