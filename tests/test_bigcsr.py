"""Tests for repro.graph.bigcsr: streaming ingestion and .graph files.

Three contracts under test:

* **Cleaning parity** — the two-pass streaming ingester produces CSR
  arrays byte-identical (same fingerprint) to the in-memory
  ``InfluenceGraph`` construction on the same records: dense ids,
  self-loops dropped, duplicates keep max probability, unweighted files
  weighted by WC over raw (duplicate-counting) in-degrees.
* **Container robustness** — versioned header, magic/truncation/
  corruption detection, mmap and materialized loads, header-only
  fingerprint reads.
* **Zero-copy publication** — pool dispatch over a ``.graph``-loaded
  graph creates no shared-memory segments and returns results
  byte-identical to the copying path; adaptive shard grouping likewise
  never changes a number.
"""

import numpy as np
import pytest

from repro.graph.bigcsr import (
    GraphFileError,
    GraphIngestError,
    graph_file_fingerprint,
    ingest_edge_list,
    is_graph_file,
    load_graph,
    read_graph_header,
    write_graph_file,
)
from repro.graph.digraph import InfluenceGraph
from repro.graph.io import graph_fingerprint
from repro.store.format import GRAPH_MAGIC


def _wc_reference(n, records):
    """Dense-id weighted-cascade construction mirroring the paper prep."""
    arcs = [(u, v) for u, v in records if u != v]
    in_deg = {}
    for _, v in arcs:
        in_deg[v] = in_deg.get(v, 0) + 1
    return InfluenceGraph(n, ((u, v, 1.0 / in_deg[v]) for u, v in arcs))


def _write(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


class TestIngestEdgeCases:
    def test_comments_blank_lines_and_stats(self, tmp_path):
        src = _write(
            tmp_path / "g.txt",
            ["# header", "", "% matrix-market style", "0 1", "1 2", "2 0"],
        )
        out = tmp_path / "g.graph"
        stats = ingest_edge_list(src, out)
        assert stats.comments == 2
        assert stats.records == 3
        assert stats.num_nodes == 3
        assert stats.num_edges == 3
        assert stats.weighted is False
        assert stats.scheme == "wc"

    def test_duplicates_and_self_loops(self, tmp_path):
        records = [(0, 1), (0, 1), (1, 1), (1, 2), (2, 0), (1, 2), (1, 2)]
        src = _write(
            tmp_path / "g.txt", [f"{u} {v}" for u, v in records]
        )
        out = tmp_path / "g.graph"
        stats = ingest_edge_list(src, out)
        assert stats.self_loops == 1
        assert stats.duplicates == 3
        graph = load_graph(out)
        ref = _wc_reference(3, records)
        assert graph_fingerprint(graph) == graph_fingerprint(ref)
        # WC in-degree counts raw duplicate arcs (weighting.py parity):
        # node 2 has three raw in-arcs, all duplicates of (1, 2).
        assert graph.edge_probability(1, 2) == pytest.approx(1 / 3)

    def test_weighted_duplicates_keep_max(self, tmp_path):
        src = _write(
            tmp_path / "g.txt",
            ["0 1 0.25", "1 2 0.5", "0 1 0.75", "2 0 1.0"],
        )
        out = tmp_path / "g.graph"
        stats = ingest_edge_list(src, out)
        assert stats.weighted is True
        assert stats.scheme is None
        graph = load_graph(out)
        ref = InfluenceGraph(
            3, [(0, 1, 0.25), (1, 2, 0.5), (0, 1, 0.75), (2, 0, 1.0)]
        )
        assert graph_fingerprint(graph) == graph_fingerprint(ref)
        assert graph.edge_probability(0, 1) == 0.75

    def test_out_of_order_and_sparse_ids(self, tmp_path):
        # Ids arrive in no particular order and skip values: the node
        # space is dense 0..max_id, so 3 and 5 exist with degree 0.
        records = [(7, 0), (0, 7), (4, 1), (1, 4), (7, 4), (2, 6)]
        src = _write(
            tmp_path / "g.txt", [f"{u} {v}" for u, v in records]
        )
        out = tmp_path / "g.graph"
        stats = ingest_edge_list(src, out)
        assert stats.num_nodes == 8
        graph = load_graph(out)
        ref = _wc_reference(8, records)
        assert graph_fingerprint(graph) == graph_fingerprint(ref)
        assert graph.out_degree(3) == 0 and graph.in_degree(3) == 0

    def test_num_nodes_override(self, tmp_path):
        src = _write(tmp_path / "g.txt", ["0 1", "1 0"])
        out = tmp_path / "g.graph"
        stats = ingest_edge_list(src, out, num_nodes=10)
        assert stats.num_nodes == 10
        assert load_graph(out).num_nodes == 10
        with pytest.raises(GraphIngestError, match="num_nodes=1"):
            ingest_edge_list(src, out, num_nodes=1)

    def test_truncated_mid_record_raises(self, tmp_path):
        src = tmp_path / "g.txt"
        src.write_text("0 1\n1 2\n2")  # record cut mid-way, no newline
        with pytest.raises(GraphIngestError, match="truncated|fields"):
            ingest_edge_list(src, tmp_path / "g.graph")
        assert not (tmp_path / "g.graph").exists()

    def test_mixed_width_records_raise(self, tmp_path):
        src = _write(tmp_path / "g.txt", ["0 1 0.5", "1 2"])
        with pytest.raises(GraphIngestError, match="fields"):
            ingest_edge_list(src, tmp_path / "g.graph")

    def test_garbage_tokens_raise(self, tmp_path):
        src = _write(tmp_path / "g.txt", ["0 1", "a b"])
        with pytest.raises(GraphIngestError, match="non-integer"):
            ingest_edge_list(src, tmp_path / "g.graph")
        src2 = _write(tmp_path / "h.txt", ["0 1 0.5", "1 2 huge"])
        with pytest.raises(GraphIngestError, match="non-numeric"):
            ingest_edge_list(src2, tmp_path / "h.graph")

    def test_negative_id_and_bad_probability_raise(self, tmp_path):
        src = _write(tmp_path / "g.txt", ["0 1", "-1 2"])
        with pytest.raises(GraphIngestError, match="negative"):
            ingest_edge_list(src, tmp_path / "g.graph")
        src2 = _write(tmp_path / "h.txt", ["0 1 1.5"])
        with pytest.raises(GraphIngestError, match=r"\[0, 1\]"):
            ingest_edge_list(src2, tmp_path / "h.graph")

    def test_empty_and_comment_only_files(self, tmp_path):
        src = _write(tmp_path / "g.txt", ["# nothing here"])
        stats = ingest_edge_list(src, tmp_path / "g.graph")
        assert stats.num_nodes == 0 and stats.num_edges == 0
        graph = load_graph(tmp_path / "g.graph")
        assert graph.num_nodes == 0 and graph.num_edges == 0

    def test_chunk_size_invariance(self, tmp_path):
        rng = np.random.default_rng(3)
        records = [
            (int(u), int(v))
            for u, v in zip(rng.integers(0, 40, 300), rng.integers(0, 40, 300))
        ]
        src = _write(
            tmp_path / "g.txt", [f"{u} {v}" for u, v in records]
        )
        prints = set()
        for chunk_bytes in (7, 64, 1 << 20):
            out = tmp_path / f"g{chunk_bytes}.graph"
            ingest_edge_list(src, out, chunk_bytes=chunk_bytes)
            prints.add(graph_fingerprint(load_graph(out)))
        assert len(prints) == 1
        ref = _wc_reference(max(max(r) for r in records) + 1, records)
        assert prints == {graph_fingerprint(ref)}


class TestGraphFile:
    def test_write_load_round_trip_mmap_and_ram(self, tmp_path):
        from repro.graph.generators import watts_strogatz_wc_graph

        graph = watts_strogatz_wc_graph(120, 6, 0.2, seed=5)
        path = tmp_path / "g.graph"
        write_graph_file(graph, path)
        for mmap in (True, False):
            loaded = load_graph(path, mmap=mmap, verify=True)
            assert graph_fingerprint(loaded) == graph_fingerprint(graph)
            assert loaded == graph
            spec = loaded._mmap_spec
            assert (spec is not None) == mmap
        assert graph_file_fingerprint(path) == graph_fingerprint(graph)

    def test_is_graph_file(self, tmp_path):
        assert is_graph_file("x/y.graph")
        assert not is_graph_file("x/y.txt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_bytes(b"NOTAGRPH" + b"\0" * 64)
        with pytest.raises(GraphFileError, match="bad magic"):
            load_graph(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFileError, match="cannot read"):
            load_graph(tmp_path / "absent.graph")

    def test_truncated_data_section(self, tmp_path):
        from repro.graph.generators import watts_strogatz_wc_graph

        path = tmp_path / "g.graph"
        write_graph_file(watts_strogatz_wc_graph(80, 4, 0.1, seed=1), path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 257])
        with pytest.raises(GraphFileError, match="truncated"):
            load_graph(path)

    def test_corrupted_array_fails_verify(self, tmp_path):
        import json

        from repro.graph.generators import watts_strogatz_wc_graph
        from repro.store.format import align_up

        path = tmp_path / "g.graph"
        write_graph_file(watts_strogatz_wc_graph(80, 4, 0.1, seed=1), path)
        blob = bytearray(path.read_bytes())
        # Flip a mantissa bit inside out_probs — the fingerprint hashes
        # the out-CSR arrays, so verify=True must catch this while the
        # structural (indptr/bounds) checks cannot.
        header_len = int(np.frombuffer(blob[8:16], dtype="<u8")[0])
        table = json.loads(blob[16 : 16 + header_len].decode())["arrays"]
        offset = align_up(16 + header_len) + table["out_probs"]["offset"]
        blob[offset + 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        load_graph(path)  # structural checks alone cannot see this
        with pytest.raises(GraphFileError, match="fingerprint mismatch"):
            load_graph(path, verify=True)

    def test_unsupported_version(self, tmp_path):
        import json

        import numpy as np

        from repro.store.format import HEADER_LEN_DTYPE

        header = json.dumps({"format_version": 99}).encode()
        path = tmp_path / "g.graph"
        path.write_bytes(
            GRAPH_MAGIC
            + np.array([len(header)], dtype=HEADER_LEN_DTYPE).tobytes()
            + header
        )
        with pytest.raises(GraphFileError, match="version"):
            read_graph_header(path)

    def test_header_records_ingest_stats(self, tmp_path):
        src = _write(tmp_path / "g.txt", ["0 1", "1 2", "2 0"])
        out = tmp_path / "g.graph"
        ingest_edge_list(src, out)
        header = read_graph_header(out)
        ingest = header["meta"]["ingest"]
        assert ingest["records"] == 3
        assert ingest["source"] == "g.txt"
        assert header["meta"]["num_edges"] == 3

    def test_indptr_corruption_detected_structurally(self, tmp_path):
        from repro.graph.generators import watts_strogatz_wc_graph

        graph = watts_strogatz_wc_graph(50, 4, 0.1, seed=2)
        path = tmp_path / "g.graph"
        write_graph_file(graph, path)
        header = read_graph_header(path)
        # Overwrite out_indptr[-1] in place: edge counts now disagree.
        import json

        from repro.store.format import INDEX_DTYPE, align_up

        blob = path.read_bytes()
        header_len = int(np.frombuffer(blob[8:16], dtype="<u8")[0])
        data_start = align_up(16 + header_len)
        table = json.loads(blob[16 : 16 + header_len])["arrays"]
        spec = table["out_indptr"]
        offset = (
            data_start
            + spec["offset"]
            + (spec["shape"][0] - 1) * np.dtype(INDEX_DTYPE).itemsize
        )
        patched = bytearray(blob)
        patched[offset : offset + 8] = np.array(
            [1], dtype=INDEX_DTYPE
        ).tobytes()
        path.write_bytes(bytes(patched))
        with pytest.raises(
            GraphFileError, match="monotone|edge count"
        ):
            load_graph(path)


class TestFileBackedPool:
    @pytest.fixture()
    def file_graph(self, tmp_path):
        from repro.graph.generators import watts_strogatz_wc_graph

        graph = watts_strogatz_wc_graph(200, 6, 0.1, seed=9)
        path = tmp_path / "g.graph"
        write_graph_file(graph, path)
        return graph, load_graph(path)

    def _jobs(self, count=16, per=25):
        seq = np.random.SeedSequence(123)
        return [
            (child, per, None, None) for child in seq.spawn(count)
        ]

    def test_no_segments_and_identical_results(self, file_graph):
        from repro.parallel.pool import WorkerPool

        graph, mapped = file_graph
        pool = WorkerPool(processes=2)
        inline = WorkerPool(processes=0)
        try:
            pooled = pool.map_shards("rr_shard", mapped, self._jobs())
            assert pool.segment_names == []
            assert pool.tasks_dispatched == 16
            expected = inline.map_shards("rr_shard", graph, self._jobs())
            for (m_a, l_a), (m_b, l_b) in zip(pooled, expected):
                assert np.array_equal(m_a, m_b)
                assert np.array_equal(l_a, l_b)
        finally:
            pool.shutdown()
            inline.shutdown()

    def test_copying_path_still_publishes_segments(self, file_graph):
        from repro.parallel.pool import WorkerPool

        graph, _ = file_graph
        pool = WorkerPool(processes=2)
        try:
            pool.map_shards("rr_shard", graph, self._jobs(count=4, per=5))
            assert len(pool.segment_names) == 1
        finally:
            pool.shutdown()

    def test_adaptive_grouping_is_invisible_in_results(
        self, file_graph, monkeypatch
    ):
        from repro.parallel.pool import SHARD_TARGET_ENV, WorkerPool

        _, mapped = file_graph
        # A huge target forces maximal grouping once history exists.
        monkeypatch.setenv(SHARD_TARGET_ENV, "60000")
        pool = WorkerPool(processes=2)
        inline = WorkerPool(processes=0)
        try:
            first = pool.map_shards("rr_shard", mapped, self._jobs())
            warm = pool.map_shards("rr_shard", mapped, self._jobs())
            expected = inline.map_shards("rr_shard", mapped, self._jobs())
            for got in (first, warm):
                for (m_a, l_a), (m_b, l_b) in zip(got, expected):
                    assert np.array_equal(m_a, m_b)
                    assert np.array_equal(l_a, l_b)
            # Micro-shards are counted either way.
            assert pool.tasks_dispatched == 32
        finally:
            pool.shutdown()
            inline.shutdown()


class TestAdaptiveSharder:
    def test_no_history_means_singletons(self):
        from repro.parallel.pool import _AdaptiveSharder

        sharder = _AdaptiveSharder()
        jobs = [(None, 10)] * 8
        assert sharder.plan("t", jobs, 4, 0.2) == [[i] for i in range(8)]

    def test_grouping_respects_target_and_order(self):
        from repro.parallel.pool import _AdaptiveSharder

        sharder = _AdaptiveSharder()
        sharder.observe("t", worlds=10, seconds=0.1)  # 10ms/world
        jobs = [(None, 10)] * 8  # 100ms each, target 200ms -> pairs
        groups = sharder.plan("t", jobs, 2, 0.2)
        assert [i for group in groups for i in group] == list(range(8))
        assert all(len(group) <= 4 for group in groups)
        assert any(len(group) > 1 for group in groups)

    def test_zero_target_disables_grouping(self):
        from repro.parallel.pool import _AdaptiveSharder

        sharder = _AdaptiveSharder()
        sharder.observe("t", worlds=10, seconds=0.1)
        assert sharder.plan("t", [(None, 10)] * 4, 2, 0.0) == [
            [0],
            [1],
            [2],
            [3],
        ]

    def test_group_size_capped_by_processes(self):
        from repro.parallel.pool import _AdaptiveSharder

        sharder = _AdaptiveSharder()
        sharder.observe("t", worlds=1000, seconds=0.0001)  # ~free
        groups = sharder.plan("t", [(None, 1)] * 16, 4, 10.0)
        # ceil(16 / 4) = 4: at least `processes` groups survive.
        assert all(len(group) <= 4 for group in groups)
        assert len(groups) >= 4


class TestStoreNarrowing:
    def test_v3_round_trip_byte_identical_and_narrow(self, tmp_path):
        from repro.engine import EngineContext
        from repro.graph.generators import watts_strogatz_wc_graph
        from repro.store import SketchStore, build_store
        from repro.store.format import NARROW_INDEX_DTYPE

        graph = watts_strogatz_wc_graph(60, 4, 0.1, seed=3)
        store = build_store(
            graph,
            3,
            estimation_rr_sets=500,
            ctx=EngineContext.create(seed=4),
        )
        p1 = tmp_path / "a.sketch"
        p2 = tmp_path / "b.sketch"
        store.save(p1)
        loaded = SketchStore.load(p1)
        assert loaded.members.dtype == np.dtype(NARROW_INDEX_DTYPE)
        loaded.save(p2)
        assert p1.read_bytes() == p2.read_bytes()


def test_mmap_equals_in_memory_through_store_build(tmp_path):
    """The acceptance cross-check: a store built from the mmap'd graph
    is byte-identical to one built from the in-memory construction."""
    from repro.engine import EngineContext
    from repro.graph.generators import watts_strogatz_wc_graph
    from repro.graph.io import write_edge_list
    from repro.store import build_store

    graph = watts_strogatz_wc_graph(100, 4, 0.1, seed=8)
    edge_path = tmp_path / "g.txt"
    write_edge_list(graph, edge_path)
    graph_path = tmp_path / "g.graph"
    write_graph_file(graph, graph_path)
    mapped = load_graph(graph_path)

    s_mem = build_store(
        graph, 3, estimation_rr_sets=400, ctx=EngineContext.create(seed=6)
    )
    s_map = build_store(
        mapped, 3, estimation_rr_sets=400, ctx=EngineContext.create(seed=6)
    )
    assert s_mem.fingerprint == s_map.fingerprint
    a, b = tmp_path / "mem.sketch", tmp_path / "map.sketch"
    s_mem.save(a)
    s_map.save(b)
    assert a.read_bytes() == b.read_bytes()
