"""Smoke checks for the examples and documentation consistency.

Each example is a minutes-scale script, so we don't execute their mains
here; instead we verify they parse, import only public API, and that the
documentation's promises (examples listed in README, experiments indexed in
DESIGN.md) stay in sync with the tree.
"""

import ast
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
BENCHMARKS = REPO / "benchmarks"


def example_files():
    return sorted(EXAMPLES.glob("*.py"))


class TestExamples:
    def test_expected_examples_present(self):
        names = {p.name for p in example_files()}
        assert {
            "quickstart.py",
            "ps4_bundle_campaign.py",
            "multi_item_launch.py",
            "prefix_preserving_im.py",
            "model_comparison.py",
            "triggering_models.py",
            "competing_items.py",
        } <= names

    @pytest.mark.parametrize(
        "path", example_files(), ids=lambda p: p.name
    )
    def test_example_parses_and_has_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{path.name} lacks a main()"

    @pytest.mark.parametrize(
        "path", example_files(), ids=lambda p: p.name
    )
    def test_example_imports_resolve(self, path):
        """Every repro import used by an example must exist."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if not node.module.startswith("repro"):
                    continue
                import importlib

                module = importlib.import_module(node.module)
                for alias in node.names:
                    if hasattr(module, alias.name):
                        continue
                    # `from package import submodule` style
                    try:
                        importlib.import_module(
                            f"{node.module}.{alias.name}"
                        )
                    except ImportError:
                        pytest.fail(
                            f"{path.name}: {node.module}.{alias.name} missing"
                        )

    @pytest.mark.parametrize(
        "path", example_files(), ids=lambda p: p.name
    )
    def test_example_has_run_instructions(self, path):
        docstring = ast.get_docstring(ast.parse(path.read_text()))
        assert docstring
        assert "python examples/" in docstring


class TestDocumentationConsistency:
    def test_readme_lists_every_example(self):
        readme = (REPO / "README.md").read_text()
        for path in example_files():
            assert path.name in readme, f"README missing {path.name}"

    def test_design_md_references_existing_modules(self):
        import importlib

        design = (REPO / "DESIGN.md").read_text()
        for line in design.splitlines():
            for token in line.split("`"):
                if token.startswith("repro.") and " " not in token:
                    module = token.split(" ")[0].rstrip(".*")
                    if module.endswith(".*") or module == "repro.experiments":
                        continue
                    try:
                        importlib.import_module(module)
                    except ImportError:
                        # allow attribute references like repro.utility.price.X
                        parent, _, attr = module.rpartition(".")
                        mod = importlib.import_module(parent)
                        assert hasattr(mod, attr), f"DESIGN.md: {module}"

    def test_every_bench_target_in_design_or_experiments(self):
        design = (REPO / "DESIGN.md").read_text()
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        combined = design + experiments
        for path in sorted(BENCHMARKS.glob("bench_*.py")):
            assert path.name in combined, (
                f"{path.name} not documented in DESIGN.md/EXPERIMENTS.md"
            )

    def test_experiments_md_covers_all_figures_and_tables(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for anchor in (
            "Table 2", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
            "Fig. 8(a)", "Fig. 8(b, c)", "Fig. 8(d)",
            "Fig. 9(a–c)", "Fig. 9(d)", "Table 5", "Table 6",
        ):
            assert anchor in experiments, f"EXPERIMENTS.md missing {anchor}"
