"""Unit tests for bundleGRD and the brute-force optimum, including the
empirical approximation-ratio check of Theorem 2."""

import numpy as np
import pytest

from repro.core.bundlegrd import bundle_grd
from repro.core.exact import brute_force_optimum, enumerate_allocations
from repro.core.welmax import WelMaxInstance
from repro.diffusion.welfare import estimate_welfare
from repro.graph.generators import line_graph, star_graph
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


class TestBundleGRDStructure:
    def test_nested_prefix_allocation(self, small_graph):
        result = bundle_grd(small_graph, [10, 4, 7], rng=np.random.default_rng(0))
        alloc = result.allocation
        order = result.seed_order
        assert alloc.seeds_of_item(0) == set(order[:10])
        assert alloc.seeds_of_item(1) == set(order[:4])
        assert alloc.seeds_of_item(2) == set(order[:7])
        # nesting: smaller budget's seeds inside larger budget's
        assert alloc.seeds_of_item(1) <= alloc.seeds_of_item(2)
        assert alloc.seeds_of_item(2) <= alloc.seeds_of_item(0)

    def test_budgets_respected(self, small_graph):
        result = bundle_grd(small_graph, [10, 4, 7], rng=np.random.default_rng(0))
        assert result.allocation.respects_budgets([10, 4, 7])

    def test_top_seed_gets_all_items(self, small_graph):
        result = bundle_grd(small_graph, [5, 3, 4], rng=np.random.default_rng(0))
        top = result.seed_order[0]
        assert result.allocation.items_of_node(top) == 0b111

    def test_seed_order_override_skips_prima(self, small_graph):
        order = list(range(20))
        result = bundle_grd(small_graph, [5, 10], seed_order=order)
        assert result.seed_order == tuple(order)
        assert result.allocation.seeds_of_item(1) == set(range(10))
        assert result.num_rr_sets == 0  # PRIMA not invoked

    def test_seed_order_too_short_rejected(self, small_graph):
        with pytest.raises(ValueError):
            bundle_grd(small_graph, [5, 10], seed_order=[1, 2, 3])

    def test_empty_budgets_rejected(self, small_graph):
        with pytest.raises(ValueError):
            bundle_grd(small_graph, [])

    def test_negative_budgets_rejected(self, small_graph):
        with pytest.raises(ValueError):
            bundle_grd(small_graph, [5, -1])

    def test_zero_budget_item_gets_no_seeds(self, small_graph):
        result = bundle_grd(small_graph, [5, 0], rng=np.random.default_rng(0))
        assert result.allocation.seeds_of_item(1) == set()


class TestEnumerateAllocations:
    def test_count(self):
        # 3 nodes, budgets (1, 1): C(3,1) * C(3,1) = 9 maximal allocations.
        allocations = list(enumerate_allocations(3, [1, 1]))
        assert len(allocations) == 9

    def test_maximal_seed_sets(self):
        for alloc in enumerate_allocations(4, [2, 1]):
            assert len(alloc.seeds_of_item(0)) == 2
            assert len(alloc.seeds_of_item(1)) == 1

    def test_budget_capped_at_n(self):
        allocations = list(enumerate_allocations(2, [5]))
        assert len(allocations) == 1
        assert allocations[0].seeds_of_item(0) == {0, 1}


class TestBruteForceAndApproximationRatio:
    @pytest.fixture
    def tiny_instance(self) -> WelMaxInstance:
        # 4-node path with strong edges; config-1-like deterministic model.
        graph = line_graph(4, 0.8)
        model = UtilityModel(
            TableValuation(2, {0b01: 4.0, 0b10: 5.0, 0b11: 10.0}),
            AdditivePrice([3.0, 4.0]),
            ZeroNoise(2),
        )
        return WelMaxInstance.create(graph, model, [1, 1])

    def test_brute_force_finds_head_of_path(self, tiny_instance):
        result = brute_force_optimum(tiny_instance, num_samples=200)
        # Node 0 reaches everyone; the optimum puts both items there.
        assert result.allocation.seeds_of_item(0) == {0}
        assert result.allocation.seeds_of_item(1) == {0}
        assert result.num_candidates == 16

    def test_theorem2_ratio_on_tiny_instance(self, tiny_instance):
        """bundleGRD >= (1 - 1/e - eps) * OPT, empirically."""
        optimum = brute_force_optimum(tiny_instance, num_samples=300)
        greedy = bundle_grd(
            tiny_instance.graph,
            tiny_instance.budgets,
            epsilon=0.5,
            rng=np.random.default_rng(0),
        )
        greedy_welfare = estimate_welfare(
            tiny_instance.graph,
            tiny_instance.model,
            greedy.allocation,
            num_samples=300,
            rng=np.random.default_rng(0),
        )
        ratio = greedy_welfare.mean / optimum.welfare
        assert ratio >= 1 - 1 / np.e - 0.5 - 0.05  # MC slack

    def test_theorem2_ratio_star_graph(self):
        """Same check on a star: greedy must take the hub and match OPT."""
        graph = star_graph(6, probability=1.0)
        model = UtilityModel(
            TableValuation(2, {0b01: 2.0, 0b10: 2.0, 0b11: 5.0}),
            AdditivePrice([1.0, 1.0]),
            ZeroNoise(2),
        )
        instance = WelMaxInstance.create(graph, model, [1, 1])
        optimum = brute_force_optimum(instance, num_samples=50)
        greedy = bundle_grd(
            graph, instance.budgets, rng=np.random.default_rng(0)
        )
        greedy_welfare = estimate_welfare(
            graph, model, greedy.allocation, num_samples=50,
            rng=np.random.default_rng(0),
        )
        # deterministic graph: greedy should find the exact optimum here
        assert greedy_welfare.mean == pytest.approx(optimum.welfare, rel=0.01)
