"""Tests for the prefix-preserving influence oracle."""

import numpy as np
import pytest

from repro.diffusion.ic import estimate_spread
from repro.graph.generators import random_wc_graph, star_graph
from repro.rrset.oracle import InfluenceOracle


@pytest.fixture(scope="module")
def oracle():
    graph = random_wc_graph(800, 7, seed=44)
    return InfluenceOracle(
        graph, max_budget=25, rng=np.random.default_rng(0),
        estimation_rr_sets=4000,
    ), graph


class TestConstruction:
    def test_invalid_budget(self):
        graph = star_graph(5)
        with pytest.raises(ValueError):
            InfluenceOracle(graph, max_budget=0)

    def test_budget_capped_at_n(self):
        graph = star_graph(4)  # 5 nodes
        oracle = InfluenceOracle(graph, max_budget=50, estimation_rr_sets=100)
        assert oracle.max_budget == 5

    def test_repr(self, oracle):
        o, _ = oracle
        assert "max_budget=25" in repr(o)


class TestSeedQueries:
    def test_prefix_structure(self, oracle):
        o, _ = oracle
        assert o.seeds(5) == o.seed_order[:5]
        assert o.seeds(25) == o.seed_order
        assert o.seeds(0) == ()

    def test_out_of_range(self, oracle):
        o, _ = oracle
        with pytest.raises(ValueError):
            o.seeds(26)
        with pytest.raises(ValueError):
            o.seeds(-1)

    def test_prefix_quality(self, oracle):
        """Every queried prefix spreads comparably to its own size's worth."""
        o, graph = oracle
        rng = np.random.default_rng(1)
        spread_5 = estimate_spread(graph, o.seeds(5), 300, rng)
        spread_15 = estimate_spread(graph, o.seeds(15), 300, rng)
        assert spread_15 > spread_5 > 0


class TestSpreadQueries:
    def test_estimate_matches_mc(self, oracle):
        o, graph = oracle
        seeds = o.seeds(10)
        from_rr = o.estimate_spread(seeds)
        from_mc = estimate_spread(graph, seeds, 500, np.random.default_rng(2))
        assert from_rr == pytest.approx(from_mc, rel=0.2)

    def test_empty_seed_set(self, oracle):
        o, _ = oracle
        assert o.estimate_spread([]) == 0.0

    def test_spread_curve_monotone(self, oracle):
        o, _ = oracle
        curve = o.spread_curve([1, 5, 10, 20])
        values = [v for _, v in curve]
        assert values == sorted(values)


class TestAllocationQueries:
    def test_allocate_uses_precomputed_order(self, oracle):
        o, _ = oracle
        result = o.allocate([10, 4])
        assert result.num_rr_sets == 0  # no new PRIMA run
        assert result.allocation.seeds_of_item(0) == set(o.seeds(10))
        assert result.allocation.seeds_of_item(1) == set(o.seeds(4))

    def test_allocate_rejects_over_budget(self, oracle):
        o, _ = oracle
        with pytest.raises(ValueError):
            o.allocate([30])

    def test_repeated_allocations_consistent(self, oracle):
        o, _ = oracle
        a = o.allocate([8, 3])
        b = o.allocate([8, 3])
        assert a.allocation == b.allocation
