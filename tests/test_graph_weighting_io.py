"""Unit tests for edge weighting schemes and edge-list I/O."""

import numpy as np
import pytest

from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.weighting import (
    fixed_probability,
    reweight,
    trivalency,
    weighted_cascade,
)


class TestWeightedCascade:
    def test_probability_is_inverse_in_degree(self):
        arcs = [(0, 2), (1, 2), (3, 2), (0, 1)]
        g = weighted_cascade(4, arcs)
        assert g.edge_probability(0, 2) == pytest.approx(1 / 3)
        assert g.edge_probability(0, 1) == pytest.approx(1.0)

    def test_self_loops_ignored_in_degree(self):
        g = weighted_cascade(3, [(1, 1), (0, 1)])
        assert g.edge_probability(0, 1) == pytest.approx(1.0)

    def test_empty(self):
        g = weighted_cascade(3, [])
        assert g.num_edges == 0


class TestFixedAndTrivalency:
    def test_fixed_probability(self):
        g = fixed_probability(3, [(0, 1), (1, 2)], 0.01)
        assert g.edge_probability(0, 1) == pytest.approx(0.01)

    def test_fixed_probability_validation(self):
        with pytest.raises(ValueError):
            fixed_probability(2, [(0, 1)], 1.5)

    def test_trivalency_levels(self):
        g = trivalency(
            50,
            [(i, (i + 1) % 50) for i in range(50)],
            rng=np.random.default_rng(0),
        )
        levels = {0.1, 0.01, 0.001}
        for _, _, p in g.edges():
            assert p in levels

    def test_trivalency_validation(self):
        with pytest.raises(ValueError):
            trivalency(2, [(0, 1)], levels=[])
        with pytest.raises(ValueError):
            trivalency(2, [(0, 1)], levels=[1.5])

    def test_reweight_schemes(self):
        base = fixed_probability(4, [(0, 1), (2, 1), (1, 3)], 0.5)
        wc = reweight(base, "wc")
        assert wc.edge_probability(0, 1) == pytest.approx(0.5)  # in-deg 2
        fixed = reweight(base, "fixed", probability=0.07)
        assert fixed.edge_probability(1, 3) == pytest.approx(0.07)
        tr = reweight(base, "tr")
        assert tr.num_edges == base.num_edges
        with pytest.raises(ValueError):
            reweight(base, "bogus")


class TestEdgeListIO:
    def test_weighted_roundtrip(self, tmp_path):
        g = fixed_probability(5, [(0, 1), (1, 2), (2, 0), (3, 4)], 0.25)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        loaded, mapping = read_edge_list(path)
        assert loaded.num_nodes == 5
        assert loaded.num_edges == 4
        # Node ids are contiguous in the file, mapping is identity-like.
        original = {(mapping[u], mapping[v]) for u, v, _ in g.edges()}
        loaded_edges = {(u, v) for u, v, _ in loaded.edges()}
        assert original == loaded_edges

    def test_unweighted_gets_wc(self, tmp_path):
        path = tmp_path / "arcs.txt"
        path.write_text("# comment\n10 20\n30 20\n")
        g, mapping = read_edge_list(path)
        assert g.num_nodes == 3
        assert g.edge_probability(mapping[10], mapping[20]) == pytest.approx(0.5)

    def test_comment_and_percent_lines_skipped(self, tmp_path):
        path = tmp_path / "arcs.txt"
        path.write_text("% header\n# header\n0 1 0.5\n")
        g, _ = read_edge_list(path)
        assert g.num_edges == 1

    def test_malformed_weighted_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5\n2 3\n")
        with pytest.raises(ValueError):
            read_edge_list(path, weighted=True)

    def test_noncontiguous_ids_compacted(self, tmp_path):
        path = tmp_path / "arcs.txt"
        path.write_text("1000 7 0.3\n7 42 0.9\n")
        g, mapping = read_edge_list(path)
        assert g.num_nodes == 3
        assert set(mapping.keys()) == {1000, 7, 42}
        assert sorted(mapping.values()) == [0, 1, 2]

    def test_unweighted_scheme_guard(self, tmp_path):
        path = tmp_path / "arcs.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError):
            read_edge_list(path, weighted=False, default_scheme="tr")
