"""Unit tests for item-disj, bundle-disj, RR-SIM+/RR-CIM and BDHS."""

import numpy as np
import pytest

from repro.baselines.bdhs import (
    bdhs_concave_welfare,
    bdhs_step_welfare,
    best_virtual_item,
)
from repro.baselines.bundle_disjoint import bundle_disjoint
from repro.baselines.item_disjoint import item_disjoint
from repro.baselines.rr_cim import rr_cim
from repro.baselines.rr_sim import rr_sim_plus
from repro.diffusion.comic import ComICModel
from repro.graph.generators import line_graph, star_graph
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


def positive_both_model() -> UtilityModel:
    """Config-1-like: both items individually positive, zero noise."""
    return UtilityModel(
        TableValuation(2, {0b01: 4.0, 0b10: 5.0, 0b11: 10.0}),
        AdditivePrice([3.0, 4.0]),
        ZeroNoise(2),
    )


def negative_second_model() -> UtilityModel:
    """Config-3-like: item 2 is negative alone, bundle positive."""
    return UtilityModel(
        TableValuation(2, {0b01: 4.0, 0b10: 2.0, 0b11: 9.0}),
        AdditivePrice([3.0, 3.0]),
        ZeroNoise(2),
    )


class TestItemDisjoint:
    def test_one_item_per_seed(self, small_graph):
        result = item_disjoint(small_graph, [8, 5], rng=np.random.default_rng(0))
        alloc = result.allocation
        assert alloc.seeds_of_item(0) & alloc.seeds_of_item(1) == set()
        assert len(alloc.seeds_of_item(0)) == 8
        assert len(alloc.seeds_of_item(1)) == 5

    def test_higher_budget_item_gets_better_seeds(self, small_graph):
        result = item_disjoint(small_graph, [3, 6], rng=np.random.default_rng(0))
        pool = result.imm_result.seeds
        # item 1 has the larger budget: it is served first from the pool.
        assert result.allocation.seeds_of_item(1) == set(pool[:6])
        assert result.allocation.seeds_of_item(0) == set(pool[6:9])

    def test_budget_validation(self, small_graph):
        with pytest.raises(ValueError):
            item_disjoint(small_graph, [])
        with pytest.raises(ValueError):
            item_disjoint(small_graph, [3, -1])

    def test_pool_capped_at_n(self):
        graph = line_graph(5, 1.0)
        result = item_disjoint(graph, [4, 4], rng=np.random.default_rng(0))
        counts = result.allocation.item_counts()
        assert sum(counts) == 5  # only 5 nodes exist


class TestBundleDisjoint:
    def test_positive_items_become_singleton_bundles(self, small_graph):
        """Configs 1/2 regime: bundle-disj degenerates to item-disj shape."""
        result = bundle_disjoint(
            small_graph, positive_both_model(), [6, 4],
            rng=np.random.default_rng(0),
        )
        assert set(result.bundles) == {0b01, 0b10}
        alloc = result.allocation
        assert alloc.seeds_of_item(0) & alloc.seeds_of_item(1) == set()

    def test_negative_item_rides_on_bundle_seeds(self, small_graph):
        """Configs 3/4 regime: item 2 can't form a bundle alone, so its
        budget is spent on item 1's seeds — bundleGRD-like nesting."""
        result = bundle_disjoint(
            small_graph, negative_second_model(), [6, 4],
            rng=np.random.default_rng(0),
        )
        assert result.bundles == (0b01,)
        alloc = result.allocation
        assert alloc.seeds_of_item(1) <= alloc.seeds_of_item(0)
        assert len(alloc.seeds_of_item(1)) == 4

    def test_both_negative_forms_pair_bundle(self, small_graph):
        model = UtilityModel(
            TableValuation(2, {0b01: 2.0, 0b10: 2.0, 0b11: 7.0}),
            AdditivePrice([3.0, 3.0]),
            ZeroNoise(2),
        )
        result = bundle_disjoint(
            small_graph, model, [5, 5], rng=np.random.default_rng(0)
        )
        assert result.bundles == (0b11,)
        alloc = result.allocation
        assert alloc.seeds_of_item(0) == alloc.seeds_of_item(1)
        assert len(alloc.seeds_of_item(0)) == 5

    def test_unequal_budgets_surplus(self, small_graph):
        model = UtilityModel(
            TableValuation(2, {0b01: 2.0, 0b10: 2.0, 0b11: 7.0}),
            AdditivePrice([3.0, 3.0]),
            ZeroNoise(2),
        )
        result = bundle_disjoint(
            small_graph, model, [9, 4], rng=np.random.default_rng(0)
        )
        alloc = result.allocation
        # bundle of both gets min(9,4)=4 seeds; item 1's surplus 5 gets fresh.
        assert len(alloc.seeds_of_item(0)) == 9
        assert len(alloc.seeds_of_item(1)) == 4
        assert result.num_imm_calls == 2

    def test_budget_mismatch_rejected(self, small_graph):
        with pytest.raises(ValueError):
            bundle_disjoint(small_graph, positive_both_model(), [5])

    def test_imm_call_count_grows_with_items(self, small_graph):
        from repro.utility.valuation import AdditiveValuation
        from repro.utility.noise import GaussianNoise

        model = UtilityModel(
            AdditiveValuation([2.0] * 4),
            AdditivePrice([1.0] * 4),
            GaussianNoise.uniform(4, 1.0),
        )
        result = bundle_disjoint(
            small_graph, model, [4, 4, 4, 4], rng=np.random.default_rng(0)
        )
        assert result.num_imm_calls == 4  # one per singleton bundle


class TestComICBaselines:
    @pytest.fixture
    def gap(self) -> ComICModel:
        return ComICModel(0.5, 0.84, 0.5, 0.84)

    def test_rr_sim_allocation_shape(self, small_graph, gap):
        result = rr_sim_plus(
            small_graph, gap, (6, 4), rng=np.random.default_rng(0),
            num_forward_worlds=3,
        )
        alloc = result.allocation
        assert len(alloc.seeds_of_item(0)) == 6
        assert len(alloc.seeds_of_item(1)) == 4
        assert len(result.seeds_selected_item) == 6  # optimizes item 0

    def test_rr_cim_allocation_shape(self, small_graph, gap):
        result = rr_cim(
            small_graph, gap, (6, 4), rng=np.random.default_rng(0),
            num_forward_worlds=3,
        )
        alloc = result.allocation
        assert len(alloc.seeds_of_item(0)) == 6
        assert len(alloc.seeds_of_item(1)) == 4
        assert len(result.seeds_selected_item) == 4  # optimizes item 1

    def test_tim_scale_sample_counts(self, small_graph, gap):
        """The baselines must generate far more RR sets than IMM (Fig. 6)."""
        from repro.rrset.imm import imm

        result = rr_sim_plus(
            small_graph, gap, (5, 5), rng=np.random.default_rng(1),
            num_forward_worlds=3,
        )
        imm_count = imm(small_graph, 5, rng=np.random.default_rng(1)).num_rr_sets
        assert result.num_rr_sets > 3 * imm_count

    def test_selected_seeds_cover_influential_nodes(self, gap):
        """On a star, the hub must be selected for the optimized item."""
        graph = star_graph(40, probability=0.8)
        result = rr_sim_plus(
            graph, gap, (1, 1), rng=np.random.default_rng(2),
            num_forward_worlds=3,
        )
        assert result.seeds_selected_item == (0,)

    def test_zero_budget_selected_item(self, small_graph, gap):
        result = rr_sim_plus(
            small_graph, gap, (0, 4), rng=np.random.default_rng(0),
            num_forward_worlds=2,
        )
        assert result.seeds_selected_item == ()


class TestBDHS:
    def test_best_virtual_item_union(self):
        model = positive_both_model()
        item, utility = best_virtual_item(model)
        assert item == 0b11
        assert utility == pytest.approx(3.0)

    def test_step_welfare_line_graph(self):
        """On 0->1->...->4 with p=1: nodes 1..4 have a live in-neighbor,
        node 0 has no in-edges at all (consumes unconditionally)."""
        graph = line_graph(5, 1.0)
        result = bdhs_step_welfare(
            positive_both_model(), graph=None
        ) if False else bdhs_step_welfare(
            graph, positive_both_model(), num_worlds=10,
            rng=np.random.default_rng(0),
        )
        assert result.welfare == pytest.approx(5 * 3.0)

    def test_step_welfare_probabilistic(self):
        graph = line_graph(2, 0.5)  # node 1 realizes in half the worlds
        result = bdhs_step_welfare(
            graph, positive_both_model(), num_worlds=2000,
            rng=np.random.default_rng(1),
        )
        expected = 3.0 * (1 + 0.5)
        assert result.welfare == pytest.approx(expected, rel=0.1)

    def test_step_zero_utility_model(self):
        model = UtilityModel(
            TableValuation(1, {0b1: 1.0}), AdditivePrice([5.0]), ZeroNoise(1)
        )
        result = bdhs_step_welfare(
            line_graph(3, 1.0), model, num_worlds=5,
            rng=np.random.default_rng(0),
        )
        assert result.welfare == 0.0

    def test_step_validation(self):
        with pytest.raises(ValueError):
            bdhs_step_welfare(
                line_graph(3, 1.0), positive_both_model(), num_worlds=0
            )

    def test_concave_welfare_formula(self):
        """2-node path, p=0.5: node 0 isolated (s=0, consumes), node 1 has
        support {0} (s=1): welfare = U + U * (1 - 0.5)."""
        graph = line_graph(2, 0.5)
        result = bdhs_concave_welfare(graph, positive_both_model(), 0.5)
        assert result.welfare == pytest.approx(3.0 + 3.0 * 0.5)

    def test_concave_two_hop_support(self):
        """Path 0->1->2: node 2's support is {1, 0} (friends-of-friends)."""
        graph = line_graph(3, 0.5)
        result = bdhs_concave_welfare(graph, positive_both_model(), 0.5)
        expected = 3.0 * (1 + (1 - 0.5**1) + (1 - 0.5**2))
        assert result.welfare == pytest.approx(expected)

    def test_concave_validation(self):
        with pytest.raises(ValueError):
            bdhs_concave_welfare(line_graph(2, 0.5), positive_both_model(), 0.0)
