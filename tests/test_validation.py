"""Tests for the validation subpackage: Theorem 1 counterexamples and the
assumption/guarantee checkers."""

import numpy as np
import pytest

from repro.core.welmax import WelMaxInstance
from repro.graph.generators import line_graph
from repro.utility.learned import real_utility_model
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice, DiscountedBundlePrice
from repro.utility.valuation import TableValuation
from repro.validation import (
    check_model_assumptions,
    empirical_approximation_ratio,
    non_submodularity_instance,
    non_supermodularity_instance,
    verify_prefix_property,
)


class TestTheorem1Counterexamples:
    def test_welfare_not_submodular(self):
        """The single-node bundle construction: marginal of (u, i2) grows
        from 0 (at ∅) to +1 (after (u, i1))."""
        comparison = non_submodularity_instance()
        assert comparison.marginal_at_small == pytest.approx(0.0)
        assert comparison.marginal_at_large == pytest.approx(1.0)
        assert comparison.violates_submodularity
        assert not comparison.violates_supermodularity

    def test_welfare_not_supermodular(self):
        """The two-node propagation construction: marginal of (v2, i) shrinks
        from +1 (at ∅) to 0 (after (v1, i))."""
        comparison = non_supermodularity_instance()
        assert comparison.marginal_at_small == pytest.approx(1.0)
        assert comparison.marginal_at_large == pytest.approx(0.0)
        assert comparison.violates_supermodularity
        assert not comparison.violates_submodularity

    def test_counterexample_models_satisfy_assumptions(self):
        """Both constructions stay inside Theorem 2's assumption set — the
        violations concern the *objective*, not the model."""
        for instance in (
            non_submodularity_instance(),
            non_supermodularity_instance(),
        ):
            report = check_model_assumptions(instance.model)
            assert report.guarantee_applies


class TestAssumptionChecker:
    def test_compliant_model_passes(self, config1_model):
        report = check_model_assumptions(config1_model)
        assert report.valuation_monotone
        assert report.valuation_supermodular
        assert report.price_additive
        assert report.noise_zero_mean
        assert report.guarantee_applies
        assert "applies" in report.summary()

    def test_submodular_valuation_flagged(self):
        model = UtilityModel(
            TableValuation(
                2, {0b01: 3.0, 0b10: 3.0, 0b11: 4.0}, validate=None
            ),
            AdditivePrice([1.0, 1.0]),
            ZeroNoise(2),
        )
        report = check_model_assumptions(model)
        assert not report.valuation_supermodular
        assert not report.guarantee_applies
        assert "supermodular" in report.summary()

    def test_non_monotone_valuation_flagged(self):
        model = UtilityModel(
            TableValuation(
                2, {0b01: 5.0, 0b10: 4.0, 0b11: 4.5}, validate=None
            ),
            AdditivePrice([1.0, 1.0]),
            ZeroNoise(2),
        )
        report = check_model_assumptions(model)
        assert not report.valuation_monotone

    def test_discounted_price_flagged_non_additive(self, rng):
        model = UtilityModel(
            TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0}),
            DiscountedBundlePrice([3.0, 4.0], discount=1.0),
            ZeroNoise(2),
        )
        report = check_model_assumptions(model)
        assert not report.price_additive
        assert "additive price" in report.summary()

    def test_biased_noise_flagged(self):
        class BiasedNoise(ZeroNoise):
            def sample(self, rng):
                return np.full(self.num_items, 0.5)

        model = UtilityModel(
            TableValuation(1, {0b1: 2.0}),
            AdditivePrice([1.0]),
            BiasedNoise(1),
        )
        report = check_model_assumptions(model, noise_samples=200)
        assert not report.noise_zero_mean

    def test_gaussian_noise_passes(self, config1_model):
        report = check_model_assumptions(config1_model, noise_samples=3000)
        assert report.noise_zero_mean
        assert len(report.noise_mean_estimates) == 2

    def test_real_param_model_reported_as_heuristic_regime(self):
        """The learned Table 5 model is monotone but not supermodular — the
        checker surfaces exactly that."""
        report = check_model_assumptions(real_utility_model())
        assert report.valuation_monotone
        assert not report.valuation_supermodular
        assert not report.guarantee_applies


class TestGuaranteeCheckers:
    def test_prefix_property_on_medium_graph(self, medium_graph):
        qualities = verify_prefix_property(
            medium_graph, [30, 10], num_samples=200
        )
        assert [q.budget for q in qualities] == [10, 30]
        for quality in qualities:
            assert quality.ratio >= 0.8

    def test_empirical_ratio_on_tiny_instance(self):
        graph = line_graph(4, 0.8)
        model = UtilityModel(
            TableValuation(2, {0b01: 4.0, 0b10: 5.0, 0b11: 10.0}),
            AdditivePrice([3.0, 4.0]),
            ZeroNoise(2),
        )
        instance = WelMaxInstance.create(graph, model, [1, 1])
        ratio = empirical_approximation_ratio(instance, num_samples=200)
        assert ratio >= 1 - 1 / np.e - 0.5 - 0.05

    def test_ratio_handles_zero_optimum(self):
        graph = line_graph(2, 1.0)
        model = UtilityModel(
            TableValuation(1, {0b1: 0.5}, validate="monotone"),
            AdditivePrice([5.0]),  # never adopted: utility -4.5
            ZeroNoise(1),
        )
        instance = WelMaxInstance.create(graph, model, [1])
        assert empirical_approximation_ratio(instance, num_samples=20) == 1.0
