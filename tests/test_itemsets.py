"""Unit tests for bitmask itemset helpers."""

import pytest

from repro.utility.itemsets import (
    contains,
    full_mask,
    is_subset,
    items_of,
    iter_nonempty_subsets,
    iter_subsets,
    mask_of,
    popcount,
    subsets_between,
    subsets_of_size,
)


class TestMaskBasics:
    def test_mask_of_roundtrip(self):
        assert items_of(mask_of([0, 2, 5])) == (0, 2, 5)

    def test_mask_of_empty(self):
        assert mask_of([]) == 0
        assert items_of(0) == ()

    def test_mask_of_rejects_negative(self):
        with pytest.raises(ValueError):
            mask_of([-1])

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_full_mask(self):
        assert full_mask(0) == 0
        assert full_mask(3) == 0b111

    def test_contains(self):
        assert contains(0b101, 0)
        assert not contains(0b101, 1)

    def test_is_subset(self):
        assert is_subset(0b001, 0b011)
        assert is_subset(0, 0b011)
        assert not is_subset(0b100, 0b011)


class TestSubsetEnumeration:
    def test_iter_subsets_counts(self):
        subs = list(iter_subsets(0b1011))
        assert len(subs) == 8
        assert subs[0] == 0
        assert subs[-1] == 0b1011

    def test_iter_subsets_ascending(self):
        subs = list(iter_subsets(0b111))
        assert subs == sorted(subs)

    def test_iter_subsets_of_empty(self):
        assert list(iter_subsets(0)) == [0]

    def test_iter_nonempty_subsets(self):
        subs = list(iter_nonempty_subsets(0b101))
        assert subs == [0b001, 0b100, 0b101]

    def test_subsets_between(self):
        subs = set(subsets_between(0b001, 0b111))
        assert subs == {0b001, 0b011, 0b101, 0b111}

    def test_subsets_between_identity(self):
        assert list(subsets_between(0b11, 0b11)) == [0b11]

    def test_subsets_between_rejects_non_subset(self):
        with pytest.raises(ValueError):
            list(subsets_between(0b100, 0b011))

    def test_subsets_of_size(self):
        subs = set(subsets_of_size(0b1110, 2))
        assert subs == {0b0110, 0b1010, 0b1100}

    def test_subsets_of_size_degenerate(self):
        assert list(subsets_of_size(0b11, 5)) == []
        assert list(subsets_of_size(0b11, 0)) == [0]
