"""Tests for the unified :class:`repro.engine.EngineContext`.

Four contracts (DESIGN.md §5):

* **Construction semantics** — backend resolved exactly once (explicit >
  ``$REPRO_RR_BACKEND`` > batched) with errors that name the valid
  backends and, for environment typos, the offending variable; integer
  seeds establish a ``SeedSequence`` lineage whose stream equals the
  historical ``default_rng(seed)``.
* **Legacy-kwarg removal** — the one-release ``backend=``/``seed=``
  deprecation shim is gone: passing either kwarg to any public entry
  point raises ``TypeError`` naming ``ctx=`` as the supported spelling;
  plain ``rng=`` remains first-class.
* **Integer-seed uniformity** — ``estimate_welfare``,
  ``estimate_adoption`` and ``estimate_welfare_personalized`` accept plain
  integer seeds (via ``SeedSequence`` children on the sequential engine),
  matching the earlier fix to ``estimate_comic_spread``.
* **Cross-backend parity** — one parametrized sweep asserting
  sequential-vs-batched statistical equivalence through every public
  entry point that takes a context (PRIMA, IMM, TIM, SSA, RR-SIM+,
  RR-CIM, the welfare/adoption/Com-IC estimators), superseding the
  per-module copies that used to live in ``test_comic_gap_engine`` and
  ``test_batch_forward``.
"""

import warnings

import numpy as np
import pytest

from repro.baselines.rr_cim import rr_cim
from repro.baselines.rr_sim import rr_sim_plus
from repro.diffusion.comic import ComICModel, estimate_comic_spread
from repro.diffusion.personalized import estimate_welfare_personalized
from repro.diffusion.welfare import estimate_adoption, estimate_welfare
from repro.engine import (
    BACKEND_ENV,
    BACKENDS,
    EngineContext,
    WorldCursor,
    resolve_backend,
)
from repro.graph.generators import random_wc_graph, star_graph
from repro.rrset.imm import imm
from repro.rrset.prima import prima
from repro.rrset.rrgen import RRCollection
from repro.rrset.ssa import ssa
from repro.rrset.tim import tim
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation

GAP = ComICModel(0.1, 0.4, 0.1, 0.4)


@pytest.fixture(scope="module")
def wc300():
    return random_wc_graph(300, avg_degree=6, seed=23)


@pytest.fixture(scope="module")
def spread_estimator(wc300):
    """One shared, independent RR collection scoring every selector."""
    est = RRCollection(wc300, np.random.default_rng(999), backend="batched")
    est.extend_to(4000)
    return est


@pytest.fixture(scope="module")
def two_item_model():
    return UtilityModel(
        TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0}),
        AdditivePrice([3.0, 4.0]),
        GaussianNoise([1.0, 1.0]),
    )


class TestContextConstruction:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        ctx = EngineContext.create()
        assert ctx.backend == "batched"
        assert not ctx.has_lineage
        assert ctx.cursor.position == 0
        # Default stream is the historical default_rng(0), byte for byte.
        assert np.array_equal(
            ctx.rng.random(4), np.random.default_rng(0).random(4)
        )

    def test_env_beats_default_and_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sequential")
        assert EngineContext.create().backend == "sequential"
        assert EngineContext.create(backend="batched").backend == "batched"

    def test_integer_seed_establishes_lineage(self):
        ctx = EngineContext.create(seed=7)
        assert ctx.has_lineage
        assert np.array_equal(
            ctx.rng.random(4), np.random.default_rng(7).random(4)
        )
        children = ctx.spawn_generators(3)
        expected = [
            np.random.default_rng(c)
            for c in np.random.SeedSequence(7).spawn(3)
        ]
        for child, ref in zip(children, expected):
            assert np.array_equal(child.random(4), ref.random(4))

    def test_integer_rng_is_a_seed(self):
        ctx = EngineContext.create(rng=11)
        assert ctx.has_lineage
        assert ctx.seed_seq.entropy == 11

    def test_generator_contexts_cannot_spawn(self):
        ctx = EngineContext.create(rng=np.random.default_rng(0))
        assert not ctx.has_lineage
        with pytest.raises(ValueError, match="lineage"):
            ctx.spawn_generators(2)

    def test_seed_and_rng_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            EngineContext.create(seed=1, rng=np.random.default_rng(0))

    def test_with_stream_keeps_policy(self):
        base = EngineContext.create(backend="sequential", triggering="lt")
        derived = base.with_stream(seed=5)
        assert derived.backend == "sequential"
        assert derived.triggering is base.triggering
        assert derived.cursor is not base.cursor
        assert np.array_equal(
            derived.rng.random(3), np.random.default_rng(5).random(3)
        )

    def test_world_cursor(self):
        cursor = WorldCursor(10)
        assert cursor.advance(5) == 10
        assert cursor.position == 15
        with pytest.raises(ValueError):
            cursor.advance(-1)
        ctx = EngineContext.create(world_cursor=42)
        assert ctx.cursor.position == 42


class TestBackendErrors:
    def test_unknown_explicit_backend_names_valid_ones(self):
        with pytest.raises(ValueError) as err:
            resolve_backend("vectorized")
        message = str(err.value)
        assert "vectorized" in message
        for name in BACKENDS:
            assert name in message

    def test_env_typo_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "batchd")
        with pytest.raises(ValueError) as err:
            resolve_backend(None)
        message = str(err.value)
        assert BACKEND_ENV in message
        assert "batchd" in message
        for name in BACKENDS:
            assert name in message

    def test_env_typo_fails_at_context_construction(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        with pytest.raises(ValueError, match=BACKEND_ENV):
            EngineContext.create()

    def test_collection_rejects_bad_backend_at_construction(self):
        g = star_graph(4, probability=0.5)
        with pytest.raises(ValueError, match="valid backends"):
            RRCollection(g, np.random.default_rng(0), backend="bogus")


class TestLegacyKwargRemoval:
    def test_backend_kwarg_raises_naming_ctx(self, wc300):
        with pytest.raises(TypeError, match=r"ctx=") as err:
            prima(
                wc300, [4], rng=np.random.default_rng(3),
                backend="sequential",
            )
        assert "backend= keyword" in str(err.value)
        assert "prima" in str(err.value)

    def test_estimator_backend_kwarg_raises(self, wc300, two_item_model):
        alloc = [(0, 0), (1, 1)]
        with pytest.raises(TypeError, match=r"ctx="):
            estimate_welfare(
                wc300, two_item_model, alloc, num_samples=5,
                backend="batched",
            )

    def test_ctx_plus_legacy_backend_is_an_error(self, wc300):
        ctx = EngineContext.create()
        with pytest.raises(TypeError, match=r"ctx="):
            prima(wc300, [2], backend="batched", ctx=ctx)

    def test_ctx_plus_rng_is_an_error(self, wc300):
        ctx = EngineContext.create()
        with pytest.raises(TypeError, match="not both"):
            imm(wc300, 2, rng=np.random.default_rng(0), ctx=ctx)

    def test_conflicting_triggering_sources_error(self, wc300):
        ctx = EngineContext.create(triggering="ic")
        with pytest.raises(TypeError, match="triggering"):
            prima(wc300, [2], triggering="lt", ctx=ctx)

    def test_builder_seed_kwarg_raises(self, wc300):
        from repro.store import build_store

        with pytest.raises(TypeError, match=r"ctx=") as err:
            build_store(wc300, 2, seed=3, estimation_rr_sets=50)
        assert "seed= keyword" in str(err.value)

    def test_plain_rng_stays_first_class(self, wc300):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            imm(wc300, 2, rng=np.random.default_rng(0))


class TestIntegerSeedUniformity:
    """Satellite: integer seeds via SeedSequence children, all estimators."""

    ALLOC = [(0, 0), (1, 1), (2, 0)]

    def _children_reference(self, graph, model, seed, num_samples):
        from repro.diffusion.uic import simulate_uic

        values = []
        for child in np.random.SeedSequence(seed).spawn(num_samples):
            rng = np.random.default_rng(child)
            values.append(
                simulate_uic(graph, model, self.ALLOC, rng).welfare
            )
        return values

    def test_estimate_welfare_integer_seed_sequential(
        self, wc300, two_item_model
    ):
        est = estimate_welfare(
            wc300, two_item_model, self.ALLOC, num_samples=6,
            ctx=EngineContext.create(backend="sequential", seed=123),
        )
        reference = self._children_reference(wc300, two_item_model, 123, 6)
        assert est.mean == pytest.approx(float(np.mean(reference)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_integer_seed_reproducible_everywhere(
        self, wc300, two_item_model, backend
    ):
        def ctx():
            return EngineContext.create(backend=backend, seed=77)

        for estimator in (estimate_welfare, estimate_adoption):
            a = estimator(
                wc300, two_item_model, self.ALLOC, num_samples=8, ctx=ctx()
            )
            b = estimator(
                wc300, two_item_model, self.ALLOC, num_samples=8, ctx=ctx()
            )
            assert a.mean == b.mean
        a = estimate_welfare_personalized(
            wc300, two_item_model, self.ALLOC, num_samples=8, ctx=ctx()
        )
        b = estimate_welfare_personalized(
            wc300, two_item_model, self.ALLOC, num_samples=8, ctx=ctx()
        )
        assert a == b

    def test_estimate_adoption_integer_seed_spawns_children(
        self, wc300, two_item_model
    ):
        from repro.diffusion.uic import simulate_uic

        est = estimate_adoption(
            wc300, two_item_model, self.ALLOC, num_samples=5,
            ctx=EngineContext.create(backend="sequential", seed=9),
        )
        totals = []
        for child in np.random.SeedSequence(9).spawn(5):
            rng = np.random.default_rng(child)
            result = simulate_uic(wc300, two_item_model, self.ALLOC, rng)
            totals.append(result.total_adoptions())
        assert est.mean == pytest.approx(float(np.mean(totals)))

    def test_personalized_integer_seed_spawns_children(
        self, wc300, two_item_model
    ):
        from repro.diffusion.personalized import simulate_uic_personalized

        est = estimate_welfare_personalized(
            wc300, two_item_model, self.ALLOC, num_samples=5,
            ctx=EngineContext.create(backend="sequential", seed=4),
        )
        totals = []
        for child in np.random.SeedSequence(4).spawn(5):
            rng = np.random.default_rng(child)
            totals.append(
                simulate_uic_personalized(
                    wc300, two_item_model, self.ALLOC, rng
                ).welfare
            )
        assert est == pytest.approx(float(np.mean(totals)))


#: (runner, relative quality tolerance).  SSA stops at far smaller sample
#: sizes than the θ-bounded algorithms, so its selections wobble more
#: between independent streams.
SELECTORS = {
    "prima": (lambda g, ctx: prima(g, [5, 3], ctx=ctx).seeds, 0.1),
    "imm": (lambda g, ctx: imm(g, 5, ctx=ctx).seeds, 0.1),
    "tim": (lambda g, ctx: tim(g, 5, ctx=ctx).seeds, 0.1),
    "ssa": (lambda g, ctx: ssa(g, 5, ctx=ctx).seeds, 0.4),
}


class TestCrossBackendParity:
    """The one sweep: sequential vs batched through every entry point."""

    @pytest.mark.parametrize("name", sorted(SELECTORS))
    def test_selector_quality_parity(self, name, wc300, spread_estimator):
        runner, tolerance = SELECTORS[name]
        seeds = {}
        for backend in BACKENDS:
            ctx = EngineContext.create(backend=backend, seed=31)
            seeds[backend] = runner(wc300, ctx)
            assert len(seeds[backend]) == 5
        spreads = {
            backend: 300 * spread_estimator.coverage_fraction(list(chosen))
            for backend, chosen in seeds.items()
        }
        # Independent streams select different seeds; both must land at
        # near-identical quality on the shared estimator.
        assert spreads["batched"] == pytest.approx(
            spreads["sequential"], rel=tolerance
        )

    @pytest.mark.parametrize(("name", "func"), [
        ("rr_sim_plus", rr_sim_plus),
        ("rr_cim", rr_cim),
    ])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_comic_baselines_pick_the_hub(self, name, func, backend):
        g = star_graph(40, probability=0.8)
        result = func(
            g, GAP, (1, 1),
            num_forward_worlds=3,
            ctx=EngineContext.create(backend=backend, seed=2),
        )
        assert result.seeds_selected_item == (0,)

    def test_comic_baseline_sampling_scale_parity(self):
        g = star_graph(40, probability=0.8)
        counts = {}
        for backend in BACKENDS:
            counts[backend] = rr_sim_plus(
                g, GAP, (2, 2),
                num_forward_worlds=3,
                ctx=EngineContext.create(backend=backend, seed=11),
            ).num_rr_sets
        ratio = counts["batched"] / counts["sequential"]
        assert 0.5 < ratio < 2.0

    def test_estimate_welfare_parity(self, wc300, two_item_model):
        alloc = [(v, i) for v in range(8) for i in (0, 1)]
        results = {}
        for backend, seed in (("batched", 1), ("sequential", 2)):
            results[backend] = estimate_welfare(
                wc300, two_item_model, alloc, num_samples=1500,
                ctx=EngineContext.create(backend=backend, seed=seed),
            )
        sigma = np.hypot(
            results["batched"].stderr, results["sequential"].stderr
        )
        assert abs(
            results["batched"].mean - results["sequential"].mean
        ) < 5.0 * sigma

    def test_estimate_adoption_parity(self, wc300, two_item_model):
        alloc = [(v, i) for v in range(8) for i in (0, 1)]
        results = {}
        for backend, seed in (("batched", 3), ("sequential", 4)):
            results[backend] = estimate_adoption(
                wc300, two_item_model, alloc, num_samples=1500,
                ctx=EngineContext.create(backend=backend, seed=seed),
            )
        sigma = np.hypot(
            results["batched"].stderr, results["sequential"].stderr
        )
        assert abs(
            results["batched"].mean - results["sequential"].mean
        ) < 5.0 * sigma

    def test_estimate_comic_spread_parity(self, wc300):
        seeds_a = list(range(5))
        seeds_b = list(range(5, 10))
        values = {
            backend: estimate_comic_spread(
                wc300, GAP, seeds_a, seeds_b, item=0, num_samples=600,
                ctx=EngineContext.create(backend=backend, seed=8),
            )
            for backend in BACKENDS
        }
        assert values["batched"] == pytest.approx(
            values["sequential"], rel=0.2, abs=1.0
        )

    def test_personalized_parity(self, wc300, two_item_model):
        alloc = [(v, i) for v in range(6) for i in (0, 1)]
        values = {
            backend: estimate_welfare_personalized(
                wc300, two_item_model, alloc, num_samples=400,
                ctx=EngineContext.create(backend=backend, seed=6),
            )
            for backend in BACKENDS
        }
        assert values["batched"] == pytest.approx(
            values["sequential"], rel=0.25, abs=2.0
        )


class TestContextThreading:
    """One context, many layers: the drift-prevention contract."""

    def test_shared_cursor_survives_comic_run(self):
        from repro.baselines._comic_common import comic_rr_sketch
        from repro.rrset.imm import imm as imm_func

        g = star_graph(30, probability=0.7)
        ctx = EngineContext.create(backend="batched", seed=5)
        fixed = imm_func(g, 2, ctx=ctx).seeds
        assert ctx.cursor.position == 0  # IMM does not touch the cursor
        state = comic_rr_sketch(
            g, GAP, 0, fixed, 2, 0.5, 1.0, ctx, 3, False
        )
        assert ctx.cursor.position == state.world_cursor
        assert state.world_cursor == state.theta + state.kpt_sets

    def test_tim_triggering_covers_both_phases(self):
        g = random_wc_graph(120, avg_degree=4, seed=13)
        for backend in BACKENDS:
            ctx = EngineContext.create(
                backend=backend, seed=3, triggering="lt"
            )
            result = tim(g, 3, ctx=ctx)
            assert len(result.seeds) == 3
            assert result.kpt > 0

    def test_env_read_happens_once_at_construction(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sequential")
        ctx = EngineContext.create()
        monkeypatch.setenv(BACKEND_ENV, "batched")
        g = star_graph(10, probability=0.5)
        collection = RRCollection(g, ctx=ctx)
        assert collection.backend == "sequential"
