"""Tests for the persistent RR-sketch store and oracle serving layer.

Contract under test (DESIGN.md store section):

* **Golden serving** — a store built, saved and re-loaded (in this process
  and in a genuinely fresh one via the CLI) answers seed-prefix, spread
  and allocation queries with the exact numbers of the in-memory
  :class:`InfluenceOracle` it snapshots.
* **Round-trip fidelity** — every persisted array survives save/load byte
  for byte, memory-mapped or materialized.
* **Stale/corrupt rejection** — fingerprint mismatches raise
  ``StaleStoreError``; bad magic, truncation, version skew and violated
  CSR invariants raise ``SketchStoreError`` instead of serving garbage.
* **Incremental θ-extension** — save → load → extend is byte-identical to
  growing the original live collection (the persisted RNG state makes the
  round trip transparent), and the incrementally merged inverted index
  equals a from-scratch rebuild.
* **Sharded builds** — deterministic in (seed, num_shards), independent of
  the process count, statistically equivalent to single-stream builds.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.bundlegrd import bundle_grd
from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.graph.io import graph_fingerprint, write_edge_list
from repro.rrset.oracle import InfluenceOracle
from repro.rrset.rrgen import RRCollection, build_inverted_index
from repro.store import (
    OracleService,
    SketchStore,
    SketchStoreError,
    StaleStoreError,
    build_sharded,
    build_store,
    extend_store,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def graph():
    return random_wc_graph(400, 6, seed=19)


@pytest.fixture(scope="module")
def oracle(graph):
    return InfluenceOracle(
        graph, max_budget=10, rng=np.random.default_rng(5),
        estimation_rr_sets=3000,
    )


@pytest.fixture(scope="module")
def store_path(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "g.sketch"
    build_store(
        graph, 10, ctx=EngineContext.create(seed=5
    ), estimation_rr_sets=3000).save(path)
    return path


class TestGoldenServing:
    def test_seed_prefixes_match_in_memory_oracle(
        self, graph, oracle, store_path
    ):
        service = OracleService.open(store_path, graph)
        assert service.seed_order == oracle.seed_order
        for budget in (0, 1, 5, 10):
            assert service.seeds(budget) == oracle.seeds(budget)

    def test_spread_estimates_match_exactly(self, graph, oracle, store_path):
        """Same persisted collection => identical F_R, not merely close."""
        service = OracleService.open(store_path, graph)
        for budget in (1, 4, 10):
            seeds = service.seeds(budget)
            assert service.estimate_spread(seeds) == oracle.estimate_spread(
                seeds
            )
        assert service.estimate_spread([]) == 0.0
        curve = service.spread_curve([1, 5, 10])
        values = [v for _, v in curve]
        assert values == sorted(values)

    def test_allocation_matches_in_memory_oracle(
        self, graph, oracle, store_path
    ):
        service = OracleService.open(store_path, graph)
        mine = service.allocate([7, 3])
        theirs = oracle.allocate([7, 3])
        assert mine.allocation == theirs.allocation
        assert mine.num_rr_sets == 0  # no new PRIMA run

    def test_budget_range_enforced(self, graph, store_path):
        service = OracleService.open(store_path, graph)
        with pytest.raises(ValueError):
            service.seeds(11)
        with pytest.raises(ValueError):
            service.allocate([11])

    def test_allocate_requires_graph(self, store_path):
        service = OracleService.open(store_path)
        with pytest.raises(ValueError, match="need the graph"):
            service.allocate([2])

    def test_store_backed_seed_order_in_bundlegrd(
        self, graph, oracle, store_path
    ):
        store = SketchStore.load(store_path)
        result = bundle_grd(graph, [6, 2], seed_order=store)
        assert result.seed_order == oracle.seed_order
        other = random_wc_graph(50, 4, seed=1)
        with pytest.raises(StaleStoreError):
            bundle_grd(other, [6, 2], seed_order=store)

    def test_service_and_oracle_as_seed_order_are_fingerprint_checked(
        self, graph, oracle, store_path
    ):
        """Every store-backed seed_order source — service and oracle
        included — must be verified, not just the raw SketchStore."""
        other = random_wc_graph(50, 4, seed=1)
        service = OracleService.open(store_path)  # graph not yet checked
        assert (
            bundle_grd(graph, [4], seed_order=service).seed_order
            == oracle.seed_order
        )
        with pytest.raises(StaleStoreError):
            bundle_grd(other, [4], seed_order=service)
        with pytest.raises(StaleStoreError):
            bundle_grd(other, [4], seed_order=oracle)

    def test_plain_sequences_still_accepted_as_seed_order(self, graph):
        """range/generators were valid seed_order inputs before the
        store-backed unwrap existed and must stay valid."""
        result = bundle_grd(graph, [3], seed_order=range(5))
        assert result.seed_order == (0, 1, 2, 3, 4)


class TestRoundTrip:
    def test_arrays_survive_byte_identical(self, graph, store_path):
        fresh = build_store(
            graph, 10, ctx=EngineContext.create(seed=5
        ), estimation_rr_sets=3000)
        for mmap in (True, False):
            loaded = SketchStore.load(store_path, mmap=mmap)
            for name in (
                "seed_order", "members", "offsets", "widths",
                "idx_sets", "idx_indptr", "cover_counts",
            ):
                assert np.array_equal(
                    getattr(loaded, name), getattr(fresh, name)
                ), name
            assert loaded.fingerprint == fresh.fingerprint
            assert loaded.rng_state == fresh.rng_state
            assert loaded.num_sets == fresh.num_sets
            assert loaded.max_budget == 10
            assert loaded.world_cursor == 0

    def test_node_selection_identical_on_loaded_arrays(
        self, graph, oracle, store_path
    ):
        """Greedy seeds from the loaded CSR equal those from the live
        collection — the stored sketch is the collection."""
        from repro.rrset.node_selection import greedy_max_coverage

        loaded = SketchStore.load(store_path)
        live_members, live_offsets = oracle.estimator.flat_arrays()
        from_store = greedy_max_coverage(
            graph.num_nodes, loaded.members, loaded.offsets, 8
        )
        from_live = greedy_max_coverage(
            graph.num_nodes, live_members, live_offsets, 8
        )
        assert from_store == from_live

    def test_mmap_arrays_are_memmaps(self, store_path):
        loaded = SketchStore.load(store_path, mmap=True)
        assert isinstance(loaded.members, np.memmap)
        materialized = SketchStore.load(store_path, mmap=False)
        assert not isinstance(materialized.members, np.memmap)

    def test_save_over_own_mmap_source_is_safe(self, graph, tmp_path):
        """load (mmap) → extend → save to the SAME path must not fault:
        the save writes a temp file and atomically replaces."""
        path = tmp_path / "inplace.sketch"
        build_store(
            graph, 4, ctx=EngineContext.create(seed=9
        ), estimation_rr_sets=400).save(path)
        loaded = SketchStore.load(path, mmap=True)  # arrays are memmaps
        extended = extend_store(loaded, graph, 200)
        extended.save(path)  # seed_order still views the old mapping
        reread = SketchStore.load(path)
        assert reread.num_sets == 600
        # And the trivial case: re-saving a loaded store onto itself.
        reread_mmap = SketchStore.load(path, mmap=True)
        reread_mmap.save(path)
        assert SketchStore.load(path).num_sets == 600


class TestStaleAndCorrupt:
    def test_fingerprint_mismatch_rejected(self, store_path):
        other = random_wc_graph(400, 6, seed=77)
        store = SketchStore.load(store_path)
        with pytest.raises(StaleStoreError, match="rebuild the store"):
            store.verify_graph(other)
        with pytest.raises(StaleStoreError):
            OracleService.open(store_path, other)

    def test_fingerprint_sensitivity(self, graph):
        same = random_wc_graph(400, 6, seed=19)
        other = random_wc_graph(400, 6, seed=20)
        assert graph_fingerprint(same) == graph_fingerprint(graph)
        assert graph_fingerprint(other) != graph_fingerprint(graph)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.sketch"
        path.write_bytes(b"NOTASKETCHSTORE" * 10)
        with pytest.raises(SketchStoreError, match="bad magic"):
            SketchStore.load(path)

    def test_truncated_file_rejected(self, store_path, tmp_path):
        data = Path(store_path).read_bytes()
        for cut in (4, 20, len(data) // 2, len(data) - 8):
            trunc = tmp_path / f"trunc_{cut}.sketch"
            trunc.write_bytes(data[:cut])
            with pytest.raises(SketchStoreError):
                SketchStore.load(trunc)

    def test_corrupted_header_rejected(self, store_path, tmp_path):
        data = bytearray(Path(store_path).read_bytes())
        data[20] ^= 0xFF  # flip a byte inside the JSON header
        bad = tmp_path / "badheader.sketch"
        bad.write_bytes(bytes(data))
        with pytest.raises(SketchStoreError):
            SketchStore.load(bad)

    def test_unsupported_version_rejected(self, graph, tmp_path, store_path):
        data = Path(store_path).read_bytes()
        header_len = int(np.frombuffer(data[8:16], dtype="<u8")[0])
        header = json.loads(data[16 : 16 + header_len].decode())
        header["format_version"] = 9  # same serialized length as 1
        blob = json.dumps(header, separators=(",", ":")).encode()
        # Same-length substitution keeps offsets valid.
        blob = blob.ljust(header_len, b" ")
        assert len(blob) == header_len
        bad = tmp_path / "version.sketch"
        bad.write_bytes(data[:16] + blob + data[16 + header_len :])
        with pytest.raises(SketchStoreError, match="version"):
            SketchStore.load(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SketchStoreError):
            SketchStore.load(tmp_path / "absent.sketch")

    def test_out_of_range_ids_rejected(self, store_path, tmp_path):
        """A bit-flip inside the member log must fail the range scan
        instead of silently wrapping into a wrong coverage answer."""
        data = bytearray(Path(store_path).read_bytes())
        header_len = int(np.frombuffer(data[8:16], dtype="<u8")[0])
        header = json.loads(data[16 : 16 + header_len].decode())
        data_start = (16 + header_len + 63) // 64 * 64
        spec = header["arrays"]["members"]
        # Overwrite the first member with a negative id.
        offset = data_start + spec["offset"]
        data[offset : offset + 8] = np.array([-1], dtype="<i8").tobytes()
        bad = tmp_path / "range.sketch"
        bad.write_bytes(bytes(data))
        with pytest.raises(SketchStoreError, match="outside"):
            SketchStore.load(bad)


class TestIncrementalExtension:
    def test_extension_byte_identical_to_live_growth(self, graph, tmp_path):
        path = tmp_path / "ext.sketch"
        rng = np.random.default_rng(31)
        oracle = InfluenceOracle(
            graph, max_budget=6, rng=rng, estimation_rr_sets=1200
        )
        oracle.save(path)
        # Grow the live collection; the loaded store must track it exactly.
        oracle.estimator.generate(800)
        live_members, live_offsets = oracle.estimator.flat_arrays()

        extended = extend_store(SketchStore.load(path), graph, 800)
        assert np.array_equal(extended.members, live_members)
        assert np.array_equal(extended.offsets, live_offsets)
        assert extended.num_sets == 2000
        # The persisted RNG state advanced: extending again continues the
        # stream rather than replaying it.
        assert extended.rng_state != SketchStore.load(path).rng_state

    def test_incremental_index_equals_full_rebuild(self, graph, tmp_path):
        path = tmp_path / "idx.sketch"
        build_store(
            graph, 5, ctx=EngineContext.create(seed=3
        ), estimation_rr_sets=700).save(path)
        extended = extend_store(SketchStore.load(path), graph, 500)
        idx_sets, idx_indptr = build_inverted_index(
            np.asarray(extended.members),
            np.asarray(extended.offsets),
            graph.num_nodes,
        )
        assert np.array_equal(extended.idx_sets, idx_sets)
        assert np.array_equal(extended.idx_indptr, idx_indptr)
        assert np.array_equal(
            extended.cover_counts,
            np.bincount(extended.members, minlength=graph.num_nodes),
        )

    def test_extension_statistical_equivalence(self, graph, tmp_path):
        """Extended stores estimate the same spreads as fresh ones of the
        same total θ (unbiasedness of the appended sample)."""
        path = tmp_path / "stat.sketch"
        build_store(
            graph, 5, ctx=EngineContext.create(seed=3
        ), estimation_rr_sets=1000).save(path)
        extended = extend_store(SketchStore.load(path), graph, 3000)
        fresh = build_store(
            graph, 5, ctx=EngineContext.create(seed=101
        ), estimation_rr_sets=4000)
        seeds = list(extended.seed_order[:5])
        ext_spread = OracleService(extended).estimate_spread(seeds)
        fresh_spread = OracleService(fresh).estimate_spread(seeds)
        # F_R(S) has stderr <= 0.5 / sqrt(theta) per store; 5 sigma.
        sigma = graph.num_nodes * 0.5 * np.sqrt(2.0 / 4000.0)
        assert abs(ext_spread - fresh_spread) < 5.0 * sigma

    def test_extension_rejects_stale_graph(self, graph, tmp_path):
        path = tmp_path / "stale.sketch"
        build_store(
            graph, 4, ctx=EngineContext.create(seed=1
        ), estimation_rr_sets=200).save(path)
        other = random_wc_graph(100, 4, seed=9)
        with pytest.raises(StaleStoreError):
            extend_store(SketchStore.load(path), other, 100)

    def test_negative_add_rejected(self, graph, tmp_path):
        path = tmp_path / "neg.sketch"
        build_store(
            graph, 4, ctx=EngineContext.create(seed=1
        ), estimation_rr_sets=200).save(path)
        with pytest.raises(ValueError):
            extend_store(SketchStore.load(path), graph, -1)

    def test_non_pcg64_rng_state_round_trips(self, graph, tmp_path):
        """Bit-generator states carrying numpy arrays (MT19937's key)
        survive the JSON header and keep extension byte-reproducible."""
        path = tmp_path / "mt.sketch"
        rng = np.random.Generator(np.random.MT19937(7))
        oracle = InfluenceOracle(
            graph, max_budget=4, rng=rng, estimation_rr_sets=300
        )
        oracle.save(path)
        oracle.estimator.generate(100)
        live_members, _ = oracle.estimator.flat_arrays()
        extended = extend_store(SketchStore.load(path), graph, 100)
        assert np.array_equal(extended.members, live_members)

    def test_from_flat_rejects_inconsistent_arrays(self, graph):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RRCollection.from_flat(
                graph, rng,
                np.array([1, 2, 3], dtype=np.int64),
                np.array([0, 2], dtype=np.int64),
            )


class TestShardedBuild:
    def test_deterministic_across_process_counts(self, graph):
        serial = build_sharded(
            graph, 6, num_shards=3, processes=0, ctx=EngineContext.create(seed=11),
            estimation_rr_sets=600,
        )
        pooled = build_sharded(
            graph, 6, num_shards=3, processes=2, ctx=EngineContext.create(seed=11),
            estimation_rr_sets=600,
        )
        assert np.array_equal(serial.members, pooled.members)
        assert np.array_equal(serial.offsets, pooled.offsets)
        assert np.array_equal(serial.seed_order, pooled.seed_order)
        assert serial.rng_state == pooled.rng_state
        assert serial.num_sets == 600

    def test_statistically_equivalent_to_single_stream(self, graph):
        sharded = build_sharded(
            graph, 5, num_shards=4, processes=0, ctx=EngineContext.create(seed=23),
            estimation_rr_sets=4000,
        )
        single = build_store(
            graph, 5, ctx=EngineContext.create(seed=23
        ), estimation_rr_sets=4000)
        seeds = list(single.seed_order[:5])
        sh = OracleService(sharded).estimate_spread(seeds)
        si = OracleService(single).estimate_spread(seeds)
        sigma = graph.num_nodes * 0.5 * np.sqrt(2.0 / 4000.0)
        assert abs(sh - si) < 5.0 * sigma

    def test_sharded_store_extends(self, graph, tmp_path):
        path = tmp_path / "sharded.sketch"
        build_sharded(
            graph, 4, num_shards=2, processes=0, ctx=EngineContext.create(seed=2),
            estimation_rr_sets=300,
        ).save(path)
        extended = extend_store(SketchStore.load(path), graph, 200)
        assert extended.num_sets == 500

    def test_invalid_parameters(self, graph):
        with pytest.raises(ValueError):
            build_sharded(graph, 4, num_shards=0)
        with pytest.raises(ValueError):
            build_sharded(graph, 0)
        with pytest.raises(ValueError):
            build_sharded(graph, 4, estimation_rr_sets=-1)

    def test_arbitrary_triggering_model_rejected(self, graph):
        from repro.diffusion.triggering import AttentionICTriggering

        with pytest.raises(SketchStoreError, match="by name"):
            build_store(
                graph, 4, estimation_rr_sets=100,
                triggering=AttentionICTriggering(2),
            )


class TestCLI:
    """``repro oracle build|extend|query`` — including the acceptance
    golden: a fresh *process* returns the in-memory oracle's prefixes."""

    @pytest.fixture(scope="class")
    def cli_env(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli")
        graph = random_wc_graph(200, 5, seed=41)
        graph_path = tmp / "g.txt"
        write_edge_list(graph, graph_path)
        store_path = tmp / "g.sketch"
        return graph_path, store_path

    def test_build_and_query_fresh_process_golden(self, cli_env):
        graph_path, store_path = cli_env
        env_cmd = [sys.executable, "-m", "repro"]
        common = ["--graph", str(graph_path), "--store", str(store_path)]
        build = subprocess.run(
            env_cmd + ["oracle", "build", *common, "--max-budget", "6",
                       "--rr-sets", "800", "--seed", "13"],
            capture_output=True, text=True,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )
        assert build.returncode == 0, build.stderr
        query = subprocess.run(
            env_cmd + ["oracle", "query", *common, "--budgets", "3", "6",
                       "--spread"],
            capture_output=True, text=True,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )
        assert query.returncode == 0, query.stderr

        # The golden: an in-memory oracle on the re-read graph, same seed.
        from repro.graph.io import read_edge_list

        graph, _ = read_edge_list(graph_path)
        oracle = InfluenceOracle(
            graph, max_budget=6, rng=np.random.default_rng(13),
            estimation_rr_sets=800,
        )
        lines = dict(
            line.split(" = ")
            for line in query.stdout.strip().splitlines()
        )
        for budget in (3, 6):
            expected = " ".join(str(s) for s in oracle.seeds(budget))
            assert lines[f"seeds[{budget}]"] == expected
            spread = float(lines[f"spread[{budget}]"])
            assert spread == pytest.approx(
                oracle.estimate_spread(oracle.seeds(budget)), abs=5e-3
            )

    def test_extend_and_allocate_in_process(self, cli_env):
        from repro.cli import main

        graph_path, store_path = cli_env
        common = ["--graph", str(graph_path), "--store", str(store_path)]
        assert main(["oracle", "extend", *common, "--add", "400"]) == 0
        loaded = SketchStore.load(store_path)
        assert loaded.num_sets == 1200
        assert (
            main(["oracle", "query", *common, "--budgets", "2",
                  "--allocate", "4", "2"])
            == 0
        )

    def test_query_stale_store_fails_loudly(self, cli_env, tmp_path):
        from repro.cli import main

        _, store_path = cli_env
        other = random_wc_graph(80, 4, seed=3)
        other_path = tmp_path / "other.txt"
        write_edge_list(other, other_path)
        with pytest.raises(SystemExit, match="was not built from the edge list"):
            main(["oracle", "query", "--graph", str(other_path),
                  "--store", str(store_path), "--budgets", "2"])

    def test_sharded_build_via_cli(self, cli_env, tmp_path):
        from repro.cli import main

        graph_path, _ = cli_env
        sharded_path = tmp_path / "sharded.sketch"
        assert (
            main(["oracle", "build", "--graph", str(graph_path),
                  "--store", str(sharded_path), "--max-budget", "4",
                  "--rr-sets", "400", "--shards", "2", "--seed", "7"])
            == 0
        )
        assert SketchStore.load(sharded_path).num_sets == 400
