"""Unit tests for Allocation and WelMaxInstance."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.welmax import WelMaxInstance
from repro.graph.generators import line_graph


class TestAllocation:
    def test_construction_and_pairs(self):
        a = Allocation([(0, 0), (1, 1), (0, 0)], num_items=2)
        assert len(a) == 2
        assert (0, 0) in a
        assert (1, 0) not in a

    def test_invalid_item(self):
        with pytest.raises(ValueError):
            Allocation([(0, 5)], num_items=2)

    def test_invalid_node(self):
        with pytest.raises(ValueError):
            Allocation([(-1, 0)], num_items=2)

    def test_empty(self):
        a = Allocation.empty(3)
        assert len(a) == 0
        assert a.num_items == 3

    def test_from_item_seed_sets(self):
        a = Allocation.from_item_seed_sets([[0, 1], [2]])
        assert a.seeds_of_item(0) == {0, 1}
        assert a.seeds_of_item(1) == {2}
        assert a.seed_nodes() == {0, 1, 2}

    def test_items_of_node(self):
        a = Allocation([(7, 0), (7, 2)], num_items=3)
        assert a.items_of_node(7) == 0b101
        assert a.items_of_node(3) == 0

    def test_item_counts_and_budgets(self):
        a = Allocation([(0, 0), (1, 0), (2, 1)], num_items=2)
        assert a.item_counts() == [2, 1]
        assert a.respects_budgets([2, 1])
        assert not a.respects_budgets([1, 1])
        with pytest.raises(ValueError):
            a.respects_budgets([2])

    def test_union(self):
        a = Allocation([(0, 0)], num_items=2)
        b = Allocation([(1, 1)], num_items=2)
        u = a.union(b)
        assert len(u) == 2
        with pytest.raises(ValueError):
            a.union(Allocation([(0, 0)], num_items=3))

    def test_with_pair_and_subset(self):
        a = Allocation([(0, 0)], num_items=2)
        b = a.with_pair(1, 1)
        assert a <= b
        assert not b <= a

    def test_iteration_sorted(self):
        a = Allocation([(3, 1), (0, 0), (1, 1)], num_items=2)
        assert list(a) == [(0, 0), (1, 1), (3, 1)]

    def test_equality_and_hash(self):
        a = Allocation([(0, 0)], num_items=2)
        b = Allocation([(0, 0)], num_items=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Allocation([(0, 0)], num_items=3)


class TestWelMaxInstance:
    def test_create_and_properties(self, small_graph, config1_model):
        inst = WelMaxInstance.create(small_graph, config1_model, [5, 10])
        assert inst.num_items == 2
        assert inst.max_budget == 10

    def test_budget_length_mismatch(self, small_graph, config1_model):
        with pytest.raises(ValueError):
            WelMaxInstance.create(small_graph, config1_model, [5])

    def test_negative_budget(self, small_graph, config1_model):
        with pytest.raises(ValueError):
            WelMaxInstance.create(small_graph, config1_model, [5, -2])

    def test_check_rejects_over_budget(self, small_graph, config1_model):
        inst = WelMaxInstance.create(small_graph, config1_model, [1, 1])
        bad = Allocation([(0, 0), (1, 0)], num_items=2)
        with pytest.raises(ValueError):
            inst.check(bad)

    def test_check_rejects_foreign_universe(self, small_graph, config1_model):
        inst = WelMaxInstance.create(small_graph, config1_model, [1, 1])
        with pytest.raises(ValueError):
            inst.check(Allocation([(0, 0)], num_items=3))

    def test_check_rejects_node_outside_graph(self, config1_model):
        graph = line_graph(3, 1.0)
        inst = WelMaxInstance.create(graph, config1_model, [1, 1])
        with pytest.raises(ValueError):
            inst.check(Allocation([(10, 0)], num_items=2))

    def test_welfare_and_adoption(self, small_graph, config1_model):
        inst = WelMaxInstance.create(small_graph, config1_model, [3, 3])
        alloc = Allocation([(0, 0), (0, 1)], num_items=2)
        w = inst.welfare(alloc, num_samples=50, rng=np.random.default_rng(0))
        a = inst.adoption(alloc, num_samples=50, rng=np.random.default_rng(0))
        assert w.mean >= 0.0
        assert a.mean >= 0.0
