"""Tests for the vectorized batched RR-set engine.

Covers the three engine layers introduced with the flat CSR refactor:

* exact equivalence — the ``sequential`` backend reproduces the historical
  per-set sampler bit for bit (same RNG stream, same sets, and byte-identical
  PRIMA seed tuples against pre-refactor golden values);
* statistical equivalence — the ``batched`` backend matches the sequential
  sampler's coverage statistics within tolerance (IC and LT) on a 1k-node
  Watts–Strogatz graph;
* vectorized NodeSelection — bit-for-bit identical to the reference
  per-element greedy loop, including the lowest-id tie-break contract.
"""

import numpy as np
import pytest

from repro.diffusion.triggering import (
    LinearThresholdTriggering,
    TriggeringModel,
)
from repro.graph.generators import (
    line_graph,
    random_wc_graph,
    star_graph,
    watts_strogatz_wc_graph,
)
from repro.rrset.batch import (
    BACKEND_ENV,
    batch_generate_rr_sets,
    resolve_backend,
    supports_batched,
)
from repro.rrset.node_selection import (
    greedy_max_coverage,
    node_selection,
    node_selection_reference,
)
from repro.engine import EngineContext
from repro.rrset.prima import prima
from repro.rrset.rrgen import RRCollection, generate_rr_set

# Golden outputs of the pre-refactor (pure-Python, list-of-lists) PRIMA
# implementation, captured at seed commit eefbe22: byte-identical
# reproduction under backend="sequential" is the refactor's contract.
GOLDEN_WC300_SEEDS = (297, 189, 274, 215, 194, 196, 208, 197, 262, 187)
GOLDEN_WC300_NUM_RR_SETS = 6774
GOLDEN_WC150_SEEDS = (147, 99, 127, 136, 143, 62, 114, 63)
GOLDEN_WC150_NUM_RR_SETS = 2454


class TestSequentialExactEquivalence:
    def test_collection_matches_legacy_per_set_sampler(self):
        g = random_wc_graph(200, avg_degree=6, seed=21)
        rng_coll = np.random.default_rng(5)
        rng_legacy = np.random.default_rng(5)
        coll = RRCollection(g, rng_coll, backend="sequential")
        coll.generate(60)
        for i in range(60):
            legacy = generate_rr_set(g, rng_legacy)
            assert np.array_equal(coll.sets()[i], legacy)

    def test_prima_sequential_matches_golden_300(self):
        g = random_wc_graph(300, avg_degree=6, seed=99)
        result = prima(
            g, [10, 5],
            ctx=EngineContext.create(
                backend="sequential", rng=np.random.default_rng(42)
            ),
        )
        assert result.seeds == GOLDEN_WC300_SEEDS
        assert result.num_rr_sets == GOLDEN_WC300_NUM_RR_SETS

    def test_prima_sequential_matches_golden_150(self):
        g = random_wc_graph(150, avg_degree=5, seed=7)
        result = prima(
            g, [8],
            ctx=EngineContext.create(
                backend="sequential", rng=np.random.default_rng(3)
            ),
        )
        assert result.seeds == GOLDEN_WC150_SEEDS
        assert result.num_rr_sets == GOLDEN_WC150_NUM_RR_SETS


class TestBatchedSampler:
    def test_lengths_sum_to_members(self):
        g = random_wc_graph(500, avg_degree=6, seed=2)
        members, lengths = batch_generate_rr_sets(
            g, np.random.default_rng(0), 250
        )
        assert lengths.shape[0] == 250
        assert int(lengths.sum()) == members.shape[0]
        assert (lengths >= 1).all()  # every set contains its root

    def test_deterministic_given_rng(self):
        g = random_wc_graph(400, avg_degree=5, seed=4)
        m1, l1 = batch_generate_rr_sets(g, np.random.default_rng(9), 100)
        m2, l2 = batch_generate_rr_sets(g, np.random.default_rng(9), 100)
        assert np.array_equal(m1, m2)
        assert np.array_equal(l1, l2)

    def test_line_graph_full_probability_reaches_all_ancestors(self):
        g = line_graph(8, 1.0)
        members, lengths = batch_generate_rr_sets(
            g, np.random.default_rng(1), 40
        )
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        for i in range(40):
            rr = set(members[offsets[i] : offsets[i + 1]].tolist())
            root = max(rr)
            assert rr == set(range(root + 1))

    def test_zero_probability_sets_are_roots_only(self):
        g = line_graph(8, 0.0)
        members, lengths = batch_generate_rr_sets(
            g, np.random.default_rng(1), 40
        )
        assert (lengths == 1).all()

    def test_empty_graph_rejected(self):
        from repro.graph.digraph import InfluenceGraph

        with pytest.raises(ValueError):
            batch_generate_rr_sets(
                InfluenceGraph(0, []), np.random.default_rng(0), 3
            )

    def test_hit_probability_matches_sequential_watts_strogatz(self):
        """Statistical equivalence on a 1k-node Watts–Strogatz graph."""
        g = watts_strogatz_wc_graph(
            1000, nearest_neighbors=6, rewire_probability=0.1, seed=13
        )
        count = 4000
        seq = RRCollection(g, np.random.default_rng(3), backend="sequential")
        seq.generate(count)
        bat = RRCollection(g, np.random.default_rng(3), backend="batched")
        bat.generate(count)
        # Same expected width and, for a common probe seed set, the same
        # expected coverage fraction.
        assert bat.total_width == pytest.approx(seq.total_width, rel=0.06)
        probe = list(range(0, 1000, 50))  # 20 fixed nodes
        assert bat.coverage_fraction(probe) == pytest.approx(
            seq.coverage_fraction(probe), rel=0.08, abs=0.01
        )

    def test_lt_statistical_equivalence(self):
        g = watts_strogatz_wc_graph(
            600, nearest_neighbors=6, rewire_probability=0.2, seed=8
        )
        lt = LinearThresholdTriggering()
        count = 4000
        seq = RRCollection(
            g, np.random.default_rng(5), triggering=lt, backend="sequential"
        )
        seq.generate(count)
        bat = RRCollection(
            g, np.random.default_rng(5), triggering=lt, backend="batched"
        )
        bat.generate(count)
        assert bat.total_width == pytest.approx(seq.total_width, rel=0.06)
        probe = list(range(0, 600, 30))
        assert bat.coverage_fraction(probe) == pytest.approx(
            seq.coverage_fraction(probe), rel=0.08, abs=0.01
        )

    def test_batched_prima_star_graph_hub_first(self):
        g = star_graph(60, probability=0.5, outward=True)
        result = prima(
            g, [1],
            ctx=EngineContext.create(
                backend="batched", rng=np.random.default_rng(0)
            ),
        )
        assert result.seeds == (0,)

    def test_generic_triggering_model_falls_back_to_sequential(self):
        class EmptyTrigger(TriggeringModel):
            def sample_trigger_set(self, graph, node, rng):
                return graph.in_neighbors(node)[:0]

        assert not supports_batched(EmptyTrigger())
        g = random_wc_graph(50, avg_degree=4, seed=1)
        coll = RRCollection(
            g, np.random.default_rng(0), triggering=EmptyTrigger(),
            backend="batched",
        )
        coll.generate(20)  # silently routed through the sequential sampler
        assert coll.num_sets == 20
        assert coll.total_width == 20  # empty trigger sets: roots only


class TestBackendResolution:
    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "batched"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sequential")
        assert resolve_backend(None) == "sequential"
        coll = RRCollection(
            line_graph(3, 1.0), np.random.default_rng(0)
        )
        assert coll.backend == "sequential"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sequential")
        assert resolve_backend("batched") == "batched"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("vectorized")
        with pytest.raises(ValueError):
            RRCollection(
                line_graph(3, 1.0), np.random.default_rng(0), backend="bogus"
            )


class TestFlatStorage:
    def test_add_sets_roundtrip(self):
        g = line_graph(6, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        sets = [[0, 2], [1], [3, 4, 5], [], [2, 3]]
        coll.add_sets(sets)
        assert coll.num_sets == 5
        assert coll.total_width == 8
        for i, s in enumerate(sets):
            assert coll.sets()[i].tolist() == s
        assert coll.cover_counts.tolist() == [1, 1, 2, 2, 1, 1]
        assert sorted(coll.containing(3).tolist()) == [2, 4]

    def test_sets_views_are_read_only(self):
        g = line_graph(4, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        coll.add_sets([[0, 1], [2]])
        with pytest.raises(ValueError):
            coll.sets()[0][0] = 9
        with pytest.raises(ValueError):
            coll.containing(0)[0] = 9

    def test_growth_across_many_batches(self):
        g = random_wc_graph(120, avg_degree=5, seed=3)
        coll = RRCollection(g, np.random.default_rng(1), backend="batched")
        for _ in range(12):
            coll.generate(100)  # forces several capacity doublings
        assert coll.num_sets == 1200
        members, offsets, idx_sets, idx_indptr = coll.selection_arrays()
        assert offsets[-1] == members.shape[0] == coll.total_width
        assert idx_sets.shape[0] == members.shape[0]
        assert int(coll.cover_counts.sum()) == coll.total_width

    def test_coverage_fraction_scratch_reuse(self):
        """Repeated/interleaved queries must stay exact (epoch scratch)."""
        g = line_graph(5, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        coll.add_sets([[0], [0, 1], [2]])
        assert coll.coverage_fraction([0]) == pytest.approx(2 / 3)
        assert coll.coverage_fraction([0, 1]) == pytest.approx(2 / 3)
        assert coll.coverage_fraction([0, 2]) == 1.0
        assert coll.coverage_fraction([3]) == 0.0
        coll.add_sets([[3]])  # grow, then query again
        assert coll.coverage_fraction([3]) == pytest.approx(1 / 4)
        assert coll.coverage_fraction([0, 1, 2, 3]) == 1.0
        # duplicate seeds must not double-count
        assert coll.coverage_fraction([0, 0, 0]) == pytest.approx(2 / 4)

    def test_reset_then_regrow(self):
        g = random_wc_graph(80, avg_degree=4, seed=6)
        coll = RRCollection(g, np.random.default_rng(2), backend="batched")
        coll.generate(50)
        first = coll.coverage_fraction(range(10))
        coll.reset()
        assert coll.num_sets == 0
        assert coll.coverage_fraction([0]) == 0.0
        coll.generate(50)
        assert coll.num_sets == 50
        assert 0.0 <= coll.coverage_fraction(range(10)) <= 1.0
        assert first >= 0.0


class TestVectorizedNodeSelection:
    def _random_collection(self, seed, n=150, count=400):
        g = random_wc_graph(n, avg_degree=6, seed=seed)
        coll = RRCollection(g, np.random.default_rng(seed), backend="batched")
        coll.generate(count)
        return coll

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_reference_bit_for_bit(self, seed):
        coll = self._random_collection(seed)
        for k in (1, 5, 20):
            assert node_selection(coll, k) == node_selection_reference(
                coll, k
            )

    def test_tie_break_lowest_id(self):
        g = line_graph(6, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        coll.add_sets([[4], [2], [5]])  # three singletons, all gain 1
        seeds, _ = node_selection(coll, 2)
        assert seeds == node_selection_reference(coll, 2)[0]
        assert seeds == [2, 4]

    def test_k_exceeding_positive_gain_nodes(self):
        g = line_graph(5, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        coll.add_sets([[1], [1]])
        seeds, frac = node_selection(coll, 4)
        ref = node_selection_reference(coll, 4)
        assert (seeds, frac) == ref
        assert seeds[0] == 1
        assert len(set(seeds)) == 4

    def test_greedy_max_coverage_flat_api(self):
        members = np.array([0, 1, 0, 2, 0, 3, 4, 4], dtype=np.int64)
        offsets = np.array([0, 2, 4, 6, 7, 8], dtype=np.int64)
        seeds, covered = greedy_max_coverage(5, members, offsets, 2)
        assert seeds == [0, 4]
        assert covered == 5

    def test_greedy_max_coverage_dedups_repeated_members(self):
        # set 0 = {0} written as [0, 0, 0]; set 1 = {1}: node 0 must win
        # with a gain of 1 set, and coverage must count sets, not entries.
        members = np.array([0, 0, 0, 1], dtype=np.int64)
        offsets = np.array([0, 3, 4], dtype=np.int64)
        seeds, covered = greedy_max_coverage(3, members, offsets, 1)
        assert seeds == [0]
        assert covered == 1  # not 3

    def test_add_sets_dedups_repeated_members(self):
        g = line_graph(4, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        coll.add_sets([[2, 2, 0, 2], [1, 1]])
        assert coll.sets()[0].tolist() == [0, 2]
        assert coll.total_width == 3
        assert coll.cover_counts.tolist() == [1, 1, 1, 0]
        assert coll.coverage_fraction([2]) == pytest.approx(0.5)

    def test_greedy_max_coverage_clamps_k_to_num_nodes(self):
        members = np.array([0, 1, 1, 2], dtype=np.int64)
        offsets = np.array([0, 2, 4], dtype=np.int64)
        seeds, covered = greedy_max_coverage(3, members, offsets, 5)
        assert len(seeds) == 3
        assert len(set(seeds)) == 3  # no duplicate seeds past exhaustion
        assert covered == 2
