"""Tests for store-backed Com-IC/GAP sketches (format v2) + v1 compat.

Acceptance contract of the engine-context PR:

* **Round trip** — ``repro oracle build --model comic`` followed by a
  fresh-process ``repro oracle query`` returns byte-identical seeds (and
  matching spreads) to the in-memory run with the same seed.
* **Cursor-exact extension** — save → load → ``extend_store`` equals
  uninterrupted growth byte for byte: the θ-phase world cursor continues
  exactly where the persisted run stopped, on both backends.
* **Forward compatibility** — format-v1 PRIMA stores (no ``model``
  discriminator, no ``worlds`` bitmap) still load and serve identically;
  v1 cannot carry a comic sketch.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.baselines._comic_common import (
    _GapSampler,
    bitmap_to_worlds,
    comic_rr_sketch,
)
from repro.diffusion.comic import ComICModel
from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.graph.io import write_edge_list
from repro.rrset.imm import imm
from repro.store import (
    OracleService,
    SketchStore,
    SketchStoreError,
    build_comic_store,
    build_store,
    extend_store,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

GAP = ComICModel(0.1, 0.4, 0.1, 0.4)


@pytest.fixture(scope="module")
def graph():
    return random_wc_graph(150, 5, seed=29)


@pytest.fixture(scope="module")
def comic_store(graph):
    return build_comic_store(
        graph, GAP, 3,
        fixed_budget=2,
        num_forward_worlds=3,
        ctx=EngineContext.create(seed=17),
    )


def _uninterrupted_state(graph, extra=0, backend=None, seed=17):
    """The no-save/no-load reference: one context end to end."""
    ctx = EngineContext.create(backend=backend, seed=seed)
    fixed = imm(graph, 2, ctx=ctx).seeds
    state = comic_rr_sketch(graph, GAP, 0, fixed, 3, 0.5, 1.0, ctx, 3, False)
    delta = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if extra:
        sampler = _GapSampler(
            graph, q_plain=state.q_plain, q_boosted=state.q_boosted, ctx=ctx
        )
        if ctx.backend == "batched":
            sampler.set_worlds(state.worlds_bitmap)
        else:
            sampler.set_worlds(bitmap_to_worlds(state.worlds_bitmap))
        delta = sampler.sample(extra)
    return ctx, state, delta


class TestComicBuild:
    def test_matches_in_memory_baseline(self, graph, comic_store):
        from repro.baselines.rr_sim import rr_sim_plus

        reference = rr_sim_plus(
            graph, GAP, (3, 2), select_item=0, num_forward_worlds=3,
            ctx=EngineContext.create(seed=17),
        )
        assert (
            tuple(int(v) for v in comic_store.seed_order)
            == reference.seeds_selected_item
        )
        assert comic_store.model == "comic"
        assert comic_store.comic["fixed_seeds"] == list(
            reference.seeds_fixed_item
        )

    def test_header_carries_gap_metadata(self, comic_store):
        comic = comic_store.comic
        assert comic["q_plain"] == GAP.q_a_empty
        assert comic["q_boosted"] == GAP.q_a_given_b
        assert comic["select_item"] == 0
        assert comic["num_forward_worlds"] == 3
        assert comic_store.worlds.shape[1] == comic_store.num_nodes
        assert comic_store.world_cursor == comic_store.num_sets + int(
            comic_store.comic["kpt_sets"]
        )

    def test_save_load_round_trip(self, graph, comic_store, tmp_path):
        path = tmp_path / "comic.sketch"
        comic_store.save(path)
        loaded = SketchStore.load(path)
        assert loaded.model == "comic"
        assert loaded.comic == comic_store.comic
        for name in (
            "seed_order", "members", "offsets", "widths",
            "idx_sets", "idx_indptr", "cover_counts", "worlds",
        ):
            assert np.array_equal(
                getattr(loaded, name), getattr(comic_store, name)
            ), name
        assert loaded.world_cursor == comic_store.world_cursor

    def test_rr_cim_variant_builds(self, graph):
        store = build_comic_store(
            graph, GAP, 2,
            fixed_budget=2,
            num_forward_worlds=2,
            extra_forward_pass=True,
            ctx=EngineContext.create(seed=3),
        )
        assert store.comic["extra_forward_pass"] is True
        # RR-CIM's refreshed forward pass doubles the paired world count.
        assert store.worlds.shape[0] == 4


class TestComicService:
    def test_serves_seeds_and_spread(self, graph, comic_store, tmp_path):
        path = tmp_path / "c.sketch"
        comic_store.save(path)
        service = OracleService.open(path, graph)
        assert service.model == "comic"
        assert service.seeds(3) == tuple(
            int(v) for v in comic_store.seed_order
        )
        fraction = service.coverage_fraction(service.seeds(3))
        expected = comic_store.comic["covered"] / comic_store.num_sets
        assert fraction == pytest.approx(expected)

    def test_allocation_refused(self, graph, comic_store, tmp_path):
        path = tmp_path / "c.sketch"
        comic_store.save(path)
        service = OracleService.open(path, graph)
        with pytest.raises(ValueError, match="PRIMA"):
            service.allocate([2])


class TestComicExtension:
    @pytest.mark.parametrize("backend", ["batched", "sequential"])
    def test_extension_equals_uninterrupted_growth(
        self, graph, backend, tmp_path
    ):
        store = build_comic_store(
            graph, GAP, 3,
            fixed_budget=2,
            num_forward_worlds=3,
            ctx=EngineContext.create(backend=backend, seed=17),
        )
        path = tmp_path / "c.sketch"
        store.save(path)
        extended = extend_store(SketchStore.load(path), graph, 400)

        ctx, state, (delta_members, delta_lengths) = _uninterrupted_state(
            graph, extra=400, backend=backend
        )
        expected_members = np.concatenate([state.members, delta_members])
        assert np.array_equal(np.asarray(extended.members), expected_members)
        assert extended.num_sets == state.theta + 400
        assert extended.world_cursor == ctx.cursor.position
        assert extended.rng_state == ctx.rng.bit_generator.state

    def test_extension_reselects_on_grown_collection(
        self, graph, comic_store, tmp_path
    ):
        from repro.rrset.node_selection import greedy_max_coverage

        path = tmp_path / "c.sketch"
        comic_store.save(path)
        extended = extend_store(SketchStore.load(path), graph, 300)
        seeds, covered = greedy_max_coverage(
            graph.num_nodes,
            np.asarray(extended.members),
            np.asarray(extended.offsets),
            3,
        )
        assert tuple(int(v) for v in extended.seed_order) == tuple(seeds)
        assert extended.comic["covered"] == covered

    def test_double_extension_continues_cursor(
        self, graph, comic_store, tmp_path
    ):
        path = tmp_path / "c.sketch"
        comic_store.save(path)
        once = extend_store(SketchStore.load(path), graph, 100)
        once.save(path)
        twice = extend_store(SketchStore.load(path), graph, 100)
        assert twice.world_cursor == comic_store.world_cursor + 200
        assert twice.num_sets == comic_store.num_sets + 200

    def test_extension_rejects_unknown_backend(
        self, graph, comic_store, tmp_path
    ):
        path = tmp_path / "c.sketch"
        comic_store.save(path)
        with pytest.raises(ValueError, match="valid backends"):
            extend_store(
                SketchStore.load(path), graph, 10, backend="bogus"
            )

    def test_extension_keeps_theta_header_consistent(
        self, graph, comic_store, tmp_path
    ):
        path = tmp_path / "c.sketch"
        comic_store.save(path)
        extended = extend_store(SketchStore.load(path), graph, 250)
        assert extended.comic["theta"] == extended.num_sets
        assert extended.comic["covered"] <= extended.num_sets
        assert extended.world_cursor == extended.num_sets + int(
            extended.comic["kpt_sets"]
        )

    def test_extension_checks_fingerprint(self, comic_store, tmp_path):
        from repro.store import StaleStoreError

        other = random_wc_graph(150, 5, seed=77)
        path = tmp_path / "c.sketch"
        comic_store.save(path)
        with pytest.raises(StaleStoreError):
            extend_store(SketchStore.load(path), other, 10)


class TestFormatVersions:
    def test_v1_prima_store_still_loads(self, graph, tmp_path):
        store = build_store(
            graph, 4, estimation_rr_sets=500,
            ctx=EngineContext.create(seed=5),
        )
        v1_path = tmp_path / "v1.sketch"
        v2_path = tmp_path / "v2.sketch"
        store.save(v1_path, format_version=1)
        store.save(v2_path)
        v1 = SketchStore.load(v1_path)
        v2 = SketchStore.load(v2_path)
        assert v1.model == "prima"
        assert v1.worlds is None
        assert v1.comic is None
        for name in ("seed_order", "members", "offsets", "cover_counts"):
            assert np.array_equal(getattr(v1, name), getattr(v2, name))
        # A v1 store keeps extending (the PRIMA path needs no v2 fields).
        extended = extend_store(v1, graph, 50)
        assert extended.num_sets == store.num_sets + 50

    def test_v1_header_has_no_model_key(self, graph, tmp_path):
        import json

        store = build_store(
            graph, 2, estimation_rr_sets=100,
            ctx=EngineContext.create(seed=5),
        )
        path = tmp_path / "v1.sketch"
        store.save(path, format_version=1)
        raw = path.read_bytes()
        header_len = int(np.frombuffer(raw[8:16], dtype="<u8")[0])
        header = json.loads(raw[16 : 16 + header_len].decode())
        assert header["format_version"] == 1
        assert "model" not in header["meta"]

    def test_v1_refuses_comic_sketches(self, comic_store, tmp_path):
        with pytest.raises(SketchStoreError, match="version 1"):
            comic_store.save(tmp_path / "x.sketch", format_version=1)

    def test_unknown_version_rejected(self, graph, tmp_path):
        store = build_store(
            graph, 2, estimation_rr_sets=100,
            ctx=EngineContext.create(seed=5),
        )
        with pytest.raises(SketchStoreError, match="format version"):
            store.save(tmp_path / "x.sketch", format_version=7)

    def test_comic_store_without_worlds_rejected(
        self, comic_store, tmp_path
    ):
        import json

        path = tmp_path / "c.sketch"
        comic_store.save(path)
        raw = bytearray(path.read_bytes())
        header_len = int(np.frombuffer(raw[8:16], dtype="<u8")[0])
        header = json.loads(raw[16 : 16 + header_len].decode())
        del header["arrays"]["worlds"]
        blob = json.dumps(header, separators=(",", ":")).encode()
        # Same-length re-encode is not guaranteed; pad with spaces (JSON
        # tolerates trailing whitespace inside the reserved header span).
        assert len(blob) <= header_len
        blob = blob + b" " * (header_len - len(blob))
        raw[16 : 16 + header_len] = blob
        path.write_bytes(bytes(raw))
        with pytest.raises(SketchStoreError, match="worlds"):
            SketchStore.load(path)


class TestComicCLI:
    """The acceptance golden: fresh-process comic build + query."""

    @pytest.fixture(scope="class")
    def cli_env(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("comic_cli")
        graph = random_wc_graph(120, 4, seed=53)
        graph_path = tmp / "g.txt"
        write_edge_list(graph, graph_path)
        return graph, graph_path, tmp / "g.sketch"

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )

    def test_build_query_extend_fresh_process(self, cli_env):
        graph, graph_path, store_path = cli_env
        common = ["--graph", str(graph_path), "--store", str(store_path)]
        build = self._run(
            "oracle", "build", *common, "--model", "comic",
            "--max-budget", "3", "--fixed-budget", "2",
            "--gap", "0.1", "0.4", "0.1", "0.4",
            "--forward-worlds", "3", "--seed", "13",
        )
        assert build.returncode == 0, build.stderr
        assert "model=comic" in build.stdout

        query = self._run(
            "oracle", "query", *common, "--budgets", "3", "--spread"
        )
        assert query.returncode == 0, query.stderr

        # In-memory golden: same pipeline, same seed, same context.
        from repro.graph.io import read_edge_list

        reread, _ = read_edge_list(graph_path)
        reference = build_comic_store(
            reread, GAP, 3,
            fixed_budget=2,
            num_forward_worlds=3,
            ctx=EngineContext.create(seed=13),
        )
        service = OracleService(reference, reread)
        lines = dict(
            line.split(" = ")
            for line in query.stdout.strip().splitlines()
        )
        expected = " ".join(str(s) for s in service.seeds(3))
        assert lines["seeds[3]"] == expected
        assert float(lines["spread[3]"]) == pytest.approx(
            service.estimate_spread(service.seeds(3)), abs=5e-3
        )

        extend = self._run("oracle", "extend", *common, "--add", "200")
        assert extend.returncode == 0, extend.stderr
        grown = SketchStore.load(store_path)
        assert grown.num_sets == reference.num_sets + 200
        assert grown.world_cursor == reference.world_cursor + 200

    def test_comic_build_refuses_shards(self, cli_env):
        _, graph_path, store_path = cli_env
        result = self._run(
            "oracle", "build", "--graph", str(graph_path),
            "--store", str(store_path) + ".x", "--model", "comic",
            "--max-budget", "2", "--shards", "4",
        )
        assert result.returncode != 0
        assert "shards" in result.stderr
