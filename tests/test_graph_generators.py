"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    isolated_nodes,
    line_graph,
    preferential_attachment,
    random_wc_graph,
    star_graph,
    two_node_edge,
)


class TestStructuredGraphs:
    def test_line_graph_edges(self):
        g = line_graph(5, 0.8)
        assert g.num_nodes == 5
        assert g.num_edges == 4
        for v in range(4):
            assert g.edge_probability(v, v + 1) == pytest.approx(0.8)

    def test_cycle_graph_closes(self):
        g = cycle_graph(4)
        assert g.num_edges == 4
        assert g.has_edge(3, 0)

    def test_cycle_graph_single_node(self):
        g = cycle_graph(1)
        assert g.num_edges == 0

    def test_star_outward(self):
        g = star_graph(5, outward=True)
        assert g.num_nodes == 6
        assert g.out_degree(0) == 5
        assert g.in_degree(0) == 0

    def test_star_inward(self):
        g = star_graph(5, outward=False)
        assert g.in_degree(0) == 5
        assert g.out_degree(0) == 0

    def test_complete_graph(self):
        g = complete_graph(4, 0.3)
        assert g.num_edges == 12
        assert g.edge_probability(2, 3) == pytest.approx(0.3)

    def test_two_node_edge(self):
        g = two_node_edge(0.5)
        assert g.num_nodes == 2
        assert g.num_edges == 1

    def test_isolated_nodes(self):
        g = isolated_nodes(7)
        assert g.num_nodes == 7
        assert g.num_edges == 0


class TestRandomGenerators:
    def test_erdos_renyi_size(self):
        arcs = erdos_renyi(500, 6.0, seed=1)
        assert len(arcs) == pytest.approx(3000, rel=0.05)

    def test_erdos_renyi_undirected_symmetric(self):
        arcs = set(erdos_renyi(100, 4.0, seed=2, directed=False))
        for u, v in arcs:
            assert (v, u) in arcs

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(200, 5.0, seed=3) == erdos_renyi(200, 5.0, seed=3)

    def test_erdos_renyi_tiny(self):
        assert erdos_renyi(1, 5.0) == []
        assert erdos_renyi(0, 5.0) == []

    def test_preferential_attachment_degree(self):
        arcs = preferential_attachment(1000, 4, seed=4)
        # Each of the ~1000 non-initial nodes attaches to ~4 targets.
        assert len(arcs) == pytest.approx(4000, rel=0.1)

    def test_preferential_attachment_heavy_tail(self):
        arcs = preferential_attachment(2000, 3, seed=5)
        in_deg = np.zeros(2000)
        for _, v in arcs:
            in_deg[v] += 1
        # Heavy tail: the max in-degree should be far above the mean.
        assert in_deg.max() > 10 * in_deg.mean()

    def test_preferential_attachment_no_self_loops(self):
        arcs = preferential_attachment(300, 2, seed=6)
        assert all(u != v for u, v in arcs)

    def test_preferential_attachment_deterministic(self):
        a = preferential_attachment(100, 2, seed=7)
        b = preferential_attachment(100, 2, seed=7)
        assert a == b

    def test_preferential_attachment_empty(self):
        assert preferential_attachment(0, 2) == []

    def test_random_wc_graph_probabilities(self):
        g = random_wc_graph(200, 6, seed=8)
        # WC: probability of (u, v) equals 1/in_degree(v).
        for v in range(0, 200, 17):
            sources = g.in_neighbors(v)
            if sources.shape[0] == 0:
                continue
            probs = g.in_probabilities(v)
            expected = 1.0 / sources.shape[0]
            assert np.allclose(probs, expected)

    def test_random_wc_graph_er_variant(self):
        g = random_wc_graph(200, 6, seed=9, heavy_tailed=False)
        assert g.num_nodes == 200
        assert g.num_edges > 0
