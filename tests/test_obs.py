"""repro.obs contracts — metrics registry, Prometheus text, span tracing.

Pinned behaviors (DESIGN.md §9):

* **Registry.** Registration is get-or-create: the same name with the
  same kind and labels returns the same instance (so every module-level
  handle to ``repro_engine_phase_seconds`` shares one histogram), while
  a kind or label mismatch raises.  Counters are monotone; label sets
  are validated at observation time.
* **Exposition.** ``render()`` emits Prometheus text format 0.0.4 with
  cumulative histogram buckets, ``+Inf``, ``_sum`` and ``_count``;
  :func:`~repro.obs.parse_prometheus` round-trips it and rejects
  malformed text.
* **Tracing is zero-cost when off.** ``span()`` with tracing disabled
  returns the module-level no-op singleton — no allocation, no clock
  read — and instrumented estimates are byte-identical with tracing on
  vs off (observability never touches RNG lineage).
* **Cross-process spans.** A pooled forward estimate yields ONE tree:
  every shard appears as a child with its own wall-clock, queue wait,
  and worker-pid attribution.
"""

from __future__ import annotations

import io
import os

import pytest

from repro import obs
from repro.diffusion.welfare import estimate_welfare
from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.parallel import (
    forward_shard_counts,
    get_pool,
    pool_stats,
    shutdown_pool,
)


@pytest.fixture(autouse=True)
def tracing_off():
    """Every test starts and ends with tracing disabled and trees cleared."""
    obs.disable_tracing()
    yield
    obs.disable_tracing()


@pytest.fixture
def registry():
    return obs.MetricsRegistry()


@pytest.fixture
def graph():
    return random_wc_graph(150, avg_degree=5, seed=29)


class TestRegistry:
    def test_counter_monotone(self, registry):
        c = registry.counter("repro_t_total", "things", labels=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(5, kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1, kind="a")

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("repro_t_depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_histogram_observe_and_snapshot(self, registry):
        h = registry.histogram("repro_t_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)

    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("repro_t_total", "x", labels=("kind",))
        again = registry.counter("repro_t_total", "x", labels=("kind",))
        assert first is again

    def test_kind_and_label_mismatch_raise(self, registry):
        registry.counter("repro_t_total", labels=("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_t_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_t_total", labels=("other",))

    def test_invalid_names_and_labels_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name")
        c = registry.counter("repro_t_total", labels=("kind",))
        with pytest.raises(ValueError):
            c.inc(wrong_label="x")
        with pytest.raises(ValueError):
            c.inc()  # missing the declared label

    def test_reset_zeroes_samples_keeps_registrations(self, registry):
        c = registry.counter("repro_t_total")
        c.inc(7)
        registry.reset()
        assert c.value() == 0
        assert registry.get("repro_t_total") is c

    def test_timer_observes_into_histogram(self, registry):
        h = registry.histogram("repro_t_seconds", labels=("phase",))
        with h.timer(phase="demo"):
            pass
        snap = h.snapshot(phase="demo")
        assert snap["count"] == 1
        assert snap["sum"] >= 0


class TestPrometheusText:
    def test_render_golden_shape(self, registry):
        c = registry.counter("repro_t_total", "Things done", labels=("kind",))
        c.inc(3, kind="a")
        g = registry.gauge("repro_t_depth", "Queue depth")
        g.set(2)
        text = registry.render()
        assert "# HELP repro_t_total Things done" in text
        assert "# TYPE repro_t_total counter" in text
        assert 'repro_t_total{kind="a"} 3' in text
        assert "# TYPE repro_t_depth gauge" in text
        assert "repro_t_depth 2" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self, registry):
        h = registry.histogram("repro_t_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = registry.render()
        assert 'repro_t_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_t_seconds_bucket{le="1"} 2' in text
        assert 'repro_t_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_t_seconds_count 3" in text

    def test_parse_round_trips_render(self, registry):
        c = registry.counter("repro_t_total", labels=("kind",))
        c.inc(3, kind="a b")
        h = registry.histogram("repro_t_seconds", buckets=(0.5,))
        h.observe(0.25)
        parsed = obs.parse_prometheus(registry.render())
        assert parsed["repro_t_total"]['{"kind": "a b"}'] == 3
        assert parsed["repro_t_seconds_bucket"]['{"le": "+Inf"}'] == 1
        assert parsed["repro_t_seconds_count"][""] == 1

    def test_escaped_labels_stay_parseable(self, registry):
        c = registry.counter("repro_t_total", labels=("kind",))
        c.inc(1, kind='q"b\\c\nd')
        parsed = obs.parse_prometheus(registry.render())
        assert len(parsed["repro_t_total"]) == 1

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            obs.parse_prometheus("repro_t_total three\n")
        with pytest.raises(ValueError):
            obs.parse_prometheus("not a metric line at all !!\n")

    def test_snapshot_is_compact(self, registry):
        registry.counter("repro_t_total").inc(4)
        labeled = registry.counter("repro_t_hits_total", labels=("result",))
        labeled.inc(2, result="hit")
        h = registry.histogram("repro_t_seconds")
        h.observe(0.2)
        snap = registry.snapshot()
        assert snap["repro_t_total"] == 4
        assert snap["repro_t_hits_total"] == {"result=hit": 2}
        assert snap["repro_t_seconds"] == {"count": 1, "sum": pytest.approx(0.2)}


class TestSpans:
    def test_disabled_span_is_the_noop_singleton(self):
        assert not obs.tracing_enabled()
        handle = obs.span("rrset.kpt", k=3)
        assert handle is obs.NOOP_SPAN
        with handle:
            assert obs.current_span() is obs.NOOP_SPAN

    def test_enabled_spans_build_one_tree(self):
        obs.enable_tracing()
        obs.clear_finished()
        with obs.span("outer", k=2) as outer:
            with obs.span("inner") as inner:
                inner.set(rows=7)
        roots = obs.finished_roots()
        assert [r.name for r in roots] == ["outer"]
        root = roots[0]
        assert root.attrs == {"k": 2}
        assert root.duration_s is not None and root.duration_s >= 0
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].attrs == {"rows": 7}
        assert outer is root

    def test_render_span_tree_lists_every_span(self):
        obs.enable_tracing()
        obs.clear_finished()
        with obs.span("outer"):
            with obs.span("inner", shard=0):
                pass
        rendered = obs.render_span_tree(obs.finished_roots()[0])
        lines = rendered.splitlines()
        assert lines[0].startswith("outer ")
        assert lines[1].startswith("  inner ")
        assert "shard=0" in lines[1]

    def test_remote_payload_round_trip(self):
        obs.enable_tracing()
        obs.clear_finished()
        payload = obs.remote_span_payload("parallel.task", shard=1)
        assert payload is not None
        result, span_dict = obs.record_remote(payload, lambda x: x + 1, 41)
        assert result == 42
        with obs.span("parallel.forward"):
            obs.adopt(span_dict)
        root = obs.finished_roots()[0]
        task = root.children[0]
        assert task.name == "parallel.task"
        assert task.attrs["shard"] == 1
        assert task.attrs["queue_wait_s"] >= 0
        assert task.duration_s is not None

    def test_record_remote_without_payload_skips_tracing(self):
        result, span_dict = obs.record_remote(None, lambda: 5)
        assert result == 5
        assert span_dict is None

    def test_disable_clears_state(self):
        obs.enable_tracing()
        with obs.span("outer"):
            pass
        obs.disable_tracing()
        assert obs.finished_roots() == ()
        assert obs.span("again") is obs.NOOP_SPAN


class TestStopwatchAndEmit:
    def test_stopwatch_overwrites_sink_key(self):
        sink = {"seconds": 999.0}
        with obs.stopwatch(sink):
            pass
        assert 0 <= sink["seconds"] < 999.0
        with obs.stopwatch(sink, key="phase_s"):
            pass
        assert "phase_s" in sink

    def test_emit_writes_line_to_stream(self):
        stream = io.StringIO()
        obs.emit("hello", stream=stream)
        assert stream.getvalue() == "hello\n"


class TestByteIdentity:
    def test_tracing_on_off_identical_estimates(self, graph, config1_model):
        """Observability must never touch the RNG lineage."""

        def run():
            return estimate_welfare(
                graph,
                config1_model,
                [(0, 0), (1, 1)],
                num_samples=32,
                ctx=EngineContext.create(seed=11),
            )

        baseline = run()
        obs.enable_tracing()
        traced = run()
        obs.disable_tracing()
        untraced = run()
        assert traced.mean == baseline.mean
        assert traced.stderr == baseline.stderr
        assert untraced.mean == baseline.mean
        assert untraced.stderr == baseline.stderr


class TestPooledSpanTree:
    def test_every_shard_attributed_with_wall_clock(
        self, graph, config1_model
    ):
        """The acceptance pin: one coherent tree from a pooled estimate."""
        shutdown_pool()
        obs.enable_tracing()
        obs.clear_finished()
        try:
            get_pool(2)
            estimate_welfare(
                graph,
                config1_model,
                [(0, 0), (1, 1)],
                num_samples=24,
                ctx=EngineContext.create(backend="parallel", seed=5),
            )
            roots = [
                r for r in obs.finished_roots()
                if r.name == "diffusion.welfare"
            ]
            assert len(roots) == 1
            forward = next(
                c for c in roots[0].children if c.name == "parallel.forward"
            )
            tasks = [
                c for c in forward.children if c.name == "parallel.task"
            ]
            expected = len(forward_shard_counts(24))
            assert sorted(t.attrs["shard"] for t in tasks) == list(
                range(expected)
            )
            for task in tasks:
                assert task.duration_s is not None and task.duration_s >= 0
                assert task.attrs["mode"] == "pool"
                assert task.attrs["queue_wait_s"] >= 0
                assert task.pid != os.getpid()
            stats = pool_stats()
            assert stats["active"] == 1
            assert stats["tasks_dispatched"] >= expected
        finally:
            shutdown_pool()

    def test_in_process_fallback_spans_inline(self, graph, config1_model):
        shutdown_pool()
        obs.enable_tracing()
        obs.clear_finished()
        try:
            get_pool(0)
            estimate_welfare(
                graph,
                config1_model,
                [(0, 0)],
                num_samples=8,
                ctx=EngineContext.create(backend="parallel", seed=5),
            )
            root = next(
                r for r in obs.finished_roots()
                if r.name == "diffusion.welfare"
            )
            forward = next(
                c for c in root.children if c.name == "parallel.forward"
            )
            tasks = [
                c for c in forward.children if c.name == "parallel.task"
            ]
            assert tasks
            assert all(t.attrs["mode"] == "inline" for t in tasks)
            assert all(t.pid == os.getpid() for t in tasks)
        finally:
            shutdown_pool()


class TestEnginePhaseMetrics:
    def test_forward_estimate_feeds_shared_phase_histogram(
        self, graph, config1_model
    ):
        phase = obs.REGISTRY.get("repro_engine_phase_seconds")
        assert phase is not None
        before = phase.snapshot(phase="forward")["count"]
        worlds = obs.REGISTRY.get("repro_forward_worlds_total")
        worlds_before = worlds.value(engine="batched")
        estimate_welfare(
            graph,
            config1_model,
            [(0, 0)],
            num_samples=16,
            ctx=EngineContext.create(seed=1),
        )
        assert phase.snapshot(phase="forward")["count"] == before + 1
        assert worlds.value(engine="batched") == worlds_before + 16
