"""Unit tests for IC simulation, live-edge worlds and welfare estimation."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.diffusion.ic import estimate_spread, simulate_ic
from repro.diffusion.welfare import estimate_adoption, estimate_welfare
from repro.diffusion.worlds import (
    reachable_set,
    sample_live_edge_graph,
)
from repro.graph.generators import complete_graph, line_graph, star_graph


class TestICSimulation:
    def test_deterministic_line(self, rng):
        active = simulate_ic(line_graph(5, 1.0), [0], rng)
        assert active == {0, 1, 2, 3, 4}

    def test_zero_probability(self, rng):
        active = simulate_ic(line_graph(5, 0.0), [0], rng)
        assert active == {0}

    def test_multiple_seeds(self, rng):
        active = simulate_ic(line_graph(5, 0.0), [0, 3], rng)
        assert active == {0, 3}

    def test_spread_deterministic_graph(self):
        assert estimate_spread(line_graph(8, 1.0), [0], 20) == pytest.approx(8.0)

    def test_spread_star_half(self):
        # hub -> 100 leaves at p=0.5: E[spread] = 1 + 50
        spread = estimate_spread(
            star_graph(100, probability=0.5), [0], 400, np.random.default_rng(1)
        )
        assert spread == pytest.approx(51.0, rel=0.05)

    def test_spread_validation(self):
        with pytest.raises(ValueError):
            estimate_spread(line_graph(3, 1.0), [0], 0)


class TestLiveEdgeWorlds:
    def test_probability_one_keeps_everything(self, rng):
        g = complete_graph(5, 1.0)
        world = sample_live_edge_graph(g, rng)
        assert world.num_live_edges == g.num_edges

    def test_probability_zero_keeps_nothing(self, rng):
        g = complete_graph(5, 0.0)
        world = sample_live_edge_graph(g, rng)
        assert world.num_live_edges == 0

    def test_live_fraction(self, rng):
        g = complete_graph(30, 0.3)
        totals = [
            sample_live_edge_graph(g, rng).num_live_edges for _ in range(30)
        ]
        assert np.mean(totals) == pytest.approx(0.3 * g.num_edges, rel=0.1)

    def test_reachable_set(self, rng):
        g = line_graph(6, 1.0)
        world = sample_live_edge_graph(g, rng)
        assert reachable_set(world, [2]) == {2, 3, 4, 5}
        assert reachable_set(world, []) == set()

    def test_in_adjacency(self, rng):
        g = line_graph(4, 1.0)
        world = sample_live_edge_graph(g, rng)
        incoming = world.in_adjacency()
        assert incoming[1] == [0]
        assert incoming[0] == []


class TestWelfareEstimation:
    def test_empty_allocation_zero_welfare(self, small_graph, config1_model):
        est = estimate_welfare(
            small_graph, config1_model, Allocation.empty(2), num_samples=10
        )
        assert est.mean == 0.0
        assert est.stderr == 0.0

    def test_deterministic_welfare(self, deterministic_two_item_model):
        graph = line_graph(4, 1.0)
        est = estimate_welfare(
            graph,
            deterministic_two_item_model,
            [(0, 0), (0, 1)],
            num_samples=5,
        )
        # every node adopts the bundle: 4 * 3 utility, zero variance
        assert est.mean == pytest.approx(12.0)
        assert est.stderr == 0.0

    def test_welfare_monotone_in_allocation(self, small_graph, config1_model):
        """Theorem 1 (statistical form): more allocation, more welfare."""
        small = [(v, 0) for v in range(5)]
        large = small + [(v, 1) for v in range(5)] + [(v, 0) for v in range(5, 10)]
        w_small = estimate_welfare(
            small_graph, config1_model, small, 300, np.random.default_rng(5)
        )
        w_large = estimate_welfare(
            small_graph, config1_model, large, 300, np.random.default_rng(5)
        )
        assert w_large.mean > w_small.mean

    def test_confidence_interval(self, small_graph, config1_model):
        est = estimate_welfare(
            small_graph, config1_model, [(0, 0)], num_samples=50
        )
        lo, hi = est.confidence_interval()
        assert lo <= est.mean <= hi

    def test_num_samples_validation(self, small_graph, config1_model):
        with pytest.raises(ValueError):
            estimate_welfare(small_graph, config1_model, [], num_samples=0)
        with pytest.raises(ValueError):
            estimate_adoption(small_graph, config1_model, [], num_samples=-1)

    def test_fixed_noise_world(self, small_graph, config1_model):
        # A hugely positive noise world forces adoption everywhere reachable.
        noise = np.array([50.0, 50.0])
        est = estimate_welfare(
            small_graph,
            config1_model,
            [(v, 0) for v in range(3)],
            num_samples=20,
            noise_world=noise,
        )
        assert est.mean > 100.0  # ~3+ nodes * ~51 utility

    def test_estimate_adoption_counts(self, deterministic_two_item_model):
        graph = line_graph(4, 1.0)
        est = estimate_adoption(
            graph, deterministic_two_item_model, [(0, 0)], num_samples=5
        )
        assert est.mean == pytest.approx(4.0)  # item 1 adopted by all 4

    def test_estimate_adoption_single_item(self, deterministic_two_item_model):
        graph = line_graph(4, 1.0)
        est = estimate_adoption(
            graph,
            deterministic_two_item_model,
            [(0, 0), (0, 1)],
            num_samples=5,
            item=1,
        )
        assert est.mean == pytest.approx(4.0)
