"""Shared fixtures: small graphs and utility models used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import line_graph, random_wc_graph
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise, ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_graph() -> InfluenceGraph:
    """A 300-node scale-free WC graph (fast for MC estimation)."""
    return random_wc_graph(300, avg_degree=6, seed=99)


@pytest.fixture
def medium_graph() -> InfluenceGraph:
    """A 1500-node scale-free WC graph (enough structure for RIS tests)."""
    return random_wc_graph(1500, avg_degree=8, seed=77)


@pytest.fixture
def deterministic_line() -> InfluenceGraph:
    """0 -> 1 -> ... -> 9 with probability 1 edges."""
    return line_graph(10, 1.0)


@pytest.fixture
def config1_model() -> UtilityModel:
    """Table 3 Configuration 1 utility model (both items positive)."""
    return UtilityModel(
        TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0}),
        AdditivePrice([3.0, 4.0]),
        GaussianNoise([1.0, 1.0]),
    )


@pytest.fixture
def config3_model() -> UtilityModel:
    """Table 3 Configuration 3 utility model (item 2 negative alone)."""
    return UtilityModel(
        TableValuation(2, {0b01: 3.0, 0b10: 3.0, 0b11: 8.0}),
        AdditivePrice([3.0, 4.0]),
        GaussianNoise([1.0, 1.0]),
    )


@pytest.fixture
def deterministic_two_item_model() -> UtilityModel:
    """Two items, zero noise: U(i1)=1, U(i2)=-1, U(both)=3 (Fig. 2 style)."""
    return UtilityModel(
        TableValuation(2, {0b01: 4.0, 0b10: 2.0, 0b11: 9.0}),
        AdditivePrice([3.0, 3.0]),
        ZeroNoise(2),
    )
