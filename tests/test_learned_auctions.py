"""Unit tests for the learned Table 5 parameters and the auction pipeline."""

import numpy as np
import pytest

from repro.utility.auctions import (
    AuctionOutcome,
    learn_item_parameters,
    learn_value_distribution,
    simulate_auctions,
)
from repro.utility.itemsets import full_mask, iter_subsets, popcount
from repro.utility.learned import (
    CONTROLLER,
    GAME1,
    GAME2,
    GAME3,
    PS,
    PRICES,
    real_utility_model,
    real_value_table,
    table5_rows,
)
from repro.utility.valuation import TableValuation, is_monotone, is_supermodular


class TestTable5Parameters:
    def test_anchor_values(self):
        """The Table 5 rows the paper lists, verbatim."""
        rows = {r["itemset"]: r for r in table5_rows()}
        assert rows["{ps}"]["value"] == 213.0
        assert rows["{ps}"]["price"] == 260.0
        assert rows["{ps, c}"]["value"] == 220.0
        assert rows["{ps, g1, g2, g3}"]["value"] == 258.0
        assert rows["{ps, g1, g2, c}"]["value"] == 292.5
        assert rows["{ps, g1, g2, g3, c}"]["value"] == 302.0

    def test_positive_utility_cone(self):
        """Only itemsets with ps, c and >= 2 games have positive utility."""
        model = real_utility_model()
        for mask in iter_subsets(full_mask(5)):
            utility = model.expected_utility(mask)
            has_ps = bool(mask >> PS & 1)
            has_c = bool(mask >> CONTROLLER & 1)
            games = popcount(mask >> GAME1)
            if has_ps and has_c and games >= 2:
                assert utility > 0, f"mask {mask:#b} should be positive"
            elif mask != 0:
                assert utility < 0, f"mask {mask:#b} should be negative"

    def test_items_without_ps_worthless(self):
        model = real_utility_model()
        for mask in iter_subsets(full_mask(5)):
            if not mask >> PS & 1:
                assert model.valuation.value(mask) == 0.0

    def test_games_interchangeable(self):
        model = real_utility_model()
        m1 = (1 << PS) | (1 << CONTROLLER) | (1 << GAME1) | (1 << GAME2)
        m2 = (1 << PS) | (1 << CONTROLLER) | (1 << GAME2) | (1 << GAME3)
        assert model.valuation.value(m1) == model.valuation.value(m2)

    def test_monotone(self):
        table = TableValuation(5, real_value_table(), validate=None)
        assert is_monotone(table)

    def test_raw_table_is_not_exactly_supermodular(self):
        """Documents the real-data caveat: the learned anchors violate exact
        supermodularity (see module docstring)."""
        table = TableValuation(5, real_value_table(), validate=None)
        assert not is_supermodular(table)

    def test_strict_supermodular_projection(self):
        table = TableValuation(
            5, real_value_table(strict_supermodular=True), validate=None
        )
        assert is_monotone(table)
        assert is_supermodular(table)

    def test_strict_projection_stays_close(self):
        raw = real_value_table()
        strict = real_value_table(strict_supermodular=True)
        for mask in raw:
            assert abs(raw[mask] - strict[mask]) < 60.0

    def test_prices(self):
        assert PRICES == (260.0, 20.0, 5.0, 5.0, 5.0)


class TestAuctionSimulation:
    def test_simulate_shapes(self):
        outcomes = simulate_auctions(100.0, 5.0, 50, 8, seed=1)
        assert len(outcomes) == 50
        assert all(o.num_bidders == 8 for o in outcomes)

    def test_winning_price_is_second_highest(self):
        """With many bidders the winning price concentrates near the upper
        order statistics, above the mean."""
        outcomes = simulate_auctions(100.0, 5.0, 500, 10, seed=2)
        prices = np.array([o.winning_price for o in outcomes])
        assert prices.mean() > 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_auctions(100.0, 5.0, 0, 8)
        with pytest.raises(ValueError):
            simulate_auctions(100.0, 5.0, 10, 1)

    def test_learning_roundtrip(self):
        """The censored-moment inversion recovers ground truth."""
        outcomes = simulate_auctions(213.0, 4.0, 800, 8, seed=3)
        learned = learn_value_distribution(outcomes)
        assert learned.value == pytest.approx(213.0, abs=1.0)
        assert learned.noise_std == pytest.approx(4.0, abs=0.5)

    def test_learning_requires_outcomes(self):
        with pytest.raises(ValueError):
            learn_value_distribution([])

    def test_learning_rejects_mixed_bidder_counts(self):
        mixed = [AuctionOutcome(10.0, 5), AuctionOutcome(11.0, 8)]
        with pytest.raises(ValueError):
            learn_value_distribution(mixed)

    def test_end_to_end_pipeline(self):
        learned = learn_item_parameters(
            213.0, 4.0, num_auctions=400, seed=4
        )
        assert learned.value == pytest.approx(213.0, abs=1.5)
        assert learned.noise_std == pytest.approx(4.0, abs=0.6)

    def test_pipeline_deterministic(self):
        a = learn_item_parameters(50.0, 2.0, num_auctions=100, seed=9)
        b = learn_item_parameters(50.0, 2.0, num_auctions=100, seed=9)
        assert a == b
