"""Tests for the experiment CLI."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig4_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.config == 1
        assert args.scale == 0.05

    def test_fig7_budgets(self):
        args = build_parser().parse_args(
            ["fig7", "--config", "6", "--budgets", "50", "100"]
        )
        assert args.config == 6
        assert args.budgets == [50, 100]

    def test_invalid_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--config", "9"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "flixster" in out
        assert "orkut" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "{ps}" in out
        assert "302" in out

    def test_fig4_no_comic_tiny(self, capsys):
        code = main(
            ["fig4", "--config", "1", "--no-comic",
             "--scale", "0.01", "--samples", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bundleGRD" in out
        assert "RR-SIM+" not in out

    def test_fig8d_tiny(self, capsys):
        code = main(["fig8d", "--total", "30", "--scale", "0.01", "--samples", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "large_skew" in out

    def test_table6_tiny(self, capsys):
        code = main(["table6", "--total", "25", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bundleGRD" in out
        assert "IMM_MAX" in out

    def test_fig9d_tiny(self, capsys):
        code = main(
            ["fig9d", "--budget", "5", "--scale", "0.01", "--samples", "5"]
        )
        assert code == 0
        assert "wc" in capsys.readouterr().out


class TestLintSubcommand:
    """The invariant checker through the real CLI (see test_lint.py for
    per-rule coverage)."""

    def _run(self, *argv, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True, text=True, cwd=cwd,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin",
            },
        )

    def test_repository_clean_fresh_process(self):
        """Golden run: the tree itself exits 0 with zero findings."""
        result = self._run()
        assert result.returncode == 0, result.stdout + result.stderr
        assert result.stdout == ""
        assert "0 findings" in result.stderr

    def test_findings_exit_one_fresh_process(self):
        result = self._run("--root", str(LINT_FIXTURES / "bad"))
        assert result.returncode == 1
        assert ": RL001 " in result.stdout

    def test_usage_error_exit_two_fresh_process(self):
        result = self._run("--select", "RL777")
        assert result.returncode == 2
        assert "unknown rule" in result.stderr

    def test_in_process_dispatch(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "RL003" in capsys.readouterr().out


class TestObsSubcommand:
    def test_catalogue_is_valid_prometheus(self, capsys):
        from repro import obs

        assert main(["obs"]) == 0
        out = capsys.readouterr().out
        obs.parse_prometheus(out)  # raises on malformed text
        assert "# TYPE repro_serving_request_seconds histogram" in out
        assert "# TYPE repro_parallel_pool_restarts_total counter" in out
        assert "# TYPE repro_engine_phase_seconds histogram" in out

    def test_scrape_rejects_bad_address(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["obs", "--scrape", "nonsense"])

    def test_trace_epilogue_prints_span_tree(self, capsys):
        from repro import obs

        obs.enable_tracing()
        try:
            assert main(["table6", "--total", "25", "--scale", "0.01"]) == 0
        finally:
            obs.disable_tracing()
        out = capsys.readouterr().out
        assert "bundleGRD" in out  # the table still prints first
        assert "rrset.prima" in out  # then the span trees
        assert "rrset.generate" in out
