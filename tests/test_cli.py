"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig4_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.config == 1
        assert args.scale == 0.05

    def test_fig7_budgets(self):
        args = build_parser().parse_args(
            ["fig7", "--config", "6", "--budgets", "50", "100"]
        )
        assert args.config == 6
        assert args.budgets == [50, 100]

    def test_invalid_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--config", "9"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "flixster" in out and "orkut" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "{ps}" in out and "302" in out

    def test_fig4_no_comic_tiny(self, capsys):
        code = main(
            ["fig4", "--config", "1", "--no-comic",
             "--scale", "0.01", "--samples", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bundleGRD" in out
        assert "RR-SIM+" not in out

    def test_fig8d_tiny(self, capsys):
        code = main(["fig8d", "--total", "30", "--scale", "0.01", "--samples", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "large_skew" in out

    def test_table6_tiny(self, capsys):
        code = main(["table6", "--total", "25", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bundleGRD" in out and "IMM_MAX" in out

    def test_fig9d_tiny(self, capsys):
        code = main(
            ["fig9d", "--budget", "5", "--scale", "0.01", "--samples", "5"]
        )
        assert code == 0
        assert "wc" in capsys.readouterr().out
