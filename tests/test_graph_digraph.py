"""Unit tests for the CSR-backed InfluenceGraph."""

import pytest

from repro.graph.digraph import InfluenceGraph


class TestConstruction:
    def test_basic_counts(self):
        g = InfluenceGraph(4, [(0, 1, 0.5), (1, 2, 0.3), (2, 3, 1.0)])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_empty_graph(self):
        g = InfluenceGraph(0, [])
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.average_degree() == 0.0

    def test_nodes_range(self):
        g = InfluenceGraph(3, [(0, 1, 1.0)])
        assert list(g.nodes) == [0, 1, 2]

    def test_self_loops_dropped(self):
        g = InfluenceGraph(3, [(0, 0, 0.9), (0, 1, 0.5)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_keep_max_probability(self):
        g = InfluenceGraph(2, [(0, 1, 0.2), (0, 1, 0.7), (0, 1, 0.4)])
        assert g.num_edges == 1
        assert g.edge_probability(0, 1) == pytest.approx(0.7)

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            InfluenceGraph(-1, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(IndexError):
            InfluenceGraph(2, [(0, 5, 0.5)])

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            InfluenceGraph(2, [(0, 1, 1.5)])
        with pytest.raises(ValueError):
            InfluenceGraph(2, [(0, 1, -0.1)])


class TestAccessors:
    @pytest.fixture
    def graph(self) -> InfluenceGraph:
        return InfluenceGraph(
            4, [(0, 1, 0.5), (0, 2, 0.25), (1, 2, 0.75), (3, 2, 1.0)]
        )

    def test_out_neighbors_sorted(self, graph):
        assert graph.out_neighbors(0).tolist() == [1, 2]

    def test_out_probabilities_aligned(self, graph):
        assert graph.out_probabilities(0).tolist() == [0.5, 0.25]

    def test_in_neighbors(self, graph):
        assert graph.in_neighbors(2).tolist() == [0, 1, 3]

    def test_in_probabilities_aligned(self, graph):
        assert graph.in_probabilities(2).tolist() == [0.25, 0.75, 1.0]

    def test_degrees(self, graph):
        assert graph.out_degree(0) == 2
        assert graph.in_degree(2) == 3
        assert graph.out_degree(2) == 0
        assert graph.in_degree(0) == 0

    def test_has_edge(self, graph):
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_edge_probability_absent_edge(self, graph):
        assert graph.edge_probability(1, 0) == 0.0

    def test_edges_iteration(self, graph):
        edges = sorted(graph.edges())
        assert edges == [
            (0, 1, 0.5),
            (0, 2, 0.25),
            (1, 2, 0.75),
            (3, 2, 1.0),
        ]

    def test_node_out_of_range(self, graph):
        with pytest.raises(IndexError):
            graph.out_neighbors(10)
        with pytest.raises(IndexError):
            graph.in_degree(-1)

    def test_average_degree(self, graph):
        assert graph.average_degree() == pytest.approx(1.0)


class TestDerivedGraphs:
    def test_reverse_swaps_edges(self):
        g = InfluenceGraph(3, [(0, 1, 0.4), (1, 2, 0.6)])
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert r.edge_probability(1, 0) == pytest.approx(0.4)
        assert not r.has_edge(0, 1)

    def test_reverse_involution(self):
        g = InfluenceGraph(3, [(0, 1, 0.4), (1, 2, 0.6), (2, 0, 0.1)])
        assert g.reverse().reverse() == g

    def test_with_probabilities(self):
        g = InfluenceGraph(3, [(0, 1, 0.4), (1, 2, 0.6)])
        u = g.with_probabilities(0.05)
        assert u.edge_probability(0, 1) == pytest.approx(0.05)
        assert u.edge_probability(1, 2) == pytest.approx(0.05)
        with pytest.raises(ValueError):
            g.with_probabilities(2.0)

    def test_subgraph_relabels(self):
        g = InfluenceGraph(4, [(0, 1, 0.5), (1, 3, 0.5), (3, 0, 0.5)])
        s = g.subgraph([1, 3])
        assert s.num_nodes == 2
        assert s.has_edge(0, 1)  # old (1, 3)
        assert s.num_edges == 1  # (3, 0) leaves the node set

    def test_subgraph_deduplicates_nodes(self):
        g = InfluenceGraph(3, [(0, 1, 0.5)])
        s = g.subgraph([0, 1, 0])
        assert s.num_nodes == 2

    def test_subgraph_bad_node(self):
        g = InfluenceGraph(2, [(0, 1, 0.5)])
        with pytest.raises(IndexError):
            g.subgraph([0, 9])

    def test_equality(self):
        a = InfluenceGraph(2, [(0, 1, 0.5)])
        b = InfluenceGraph(2, [(0, 1, 0.5)])
        c = InfluenceGraph(2, [(0, 1, 0.6)])
        assert a == b
        assert a != c

    def test_repr(self):
        g = InfluenceGraph(2, [(0, 1, 0.5)])
        assert "num_nodes=2" in repr(g)
