"""Unit tests for the adoption rule and the UIC diffusion simulator."""

import numpy as np
import pytest

from repro.diffusion.adoption import adopt
from repro.diffusion.uic import simulate_uic
from repro.diffusion.worlds import LiveEdgeGraph
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import line_graph, star_graph
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


class TestAdoptRule:
    def test_positive_single_item(self):
        table = np.array([0.0, 1.0])
        assert adopt(table, desire=0b1, adopted=0) == 0b1

    def test_negative_single_item_not_adopted(self):
        table = np.array([0.0, -1.0])
        assert adopt(table, desire=0b1, adopted=0) == 0

    def test_bundle_rescues_negative_items(self):
        # both negative alone, positive together
        table = np.array([0.0, -1.0, -1.0, 2.0])
        assert adopt(table, desire=0b11, adopted=0) == 0b11

    def test_partial_desire_cannot_bundle(self):
        table = np.array([0.0, -1.0, -1.0, 2.0])
        assert adopt(table, desire=0b01, adopted=0) == 0

    def test_superset_constraint_respected(self):
        # item 2 alone would be best, but item 1 is already adopted.
        table = np.array([0.0, 0.5, 3.0, 1.0])
        result = adopt(table, desire=0b11, adopted=0b01)
        assert result & 0b01  # keeps previous adoption
        assert result == 0b11  # 1.0 > 0.5, so adds item 2

    def test_keeps_adoption_when_extension_hurts(self):
        table = np.array([0.0, 2.0, -5.0, 1.0])
        assert adopt(table, desire=0b11, adopted=0b01) == 0b01

    def test_tie_break_prefers_larger_set(self):
        # U({i1}) == U({i1,i2}): the union wins (paper's tie rule).
        table = np.array([0.0, 2.0, -1.0, 2.0])
        assert adopt(table, desire=0b11, adopted=0) == 0b11

    def test_zero_utility_tie_with_empty(self):
        # everything utility 0: adopt the full desire set (largest tie).
        table = np.zeros(4)
        assert adopt(table, desire=0b11, adopted=0) == 0b11

    def test_invalid_adopted_not_subset_of_desire(self):
        table = np.zeros(4)
        with pytest.raises(ValueError):
            adopt(table, desire=0b01, adopted=0b10)

    def test_no_free_items_returns_adopted(self):
        table = np.array([0.0, 1.0])
        assert adopt(table, desire=0b1, adopted=0b1) == 0b1

    def test_non_supermodular_fallback_is_max_cardinality(self):
        # Union of tied maximizers loses utility => fall back to largest.
        table = np.array([0.0, 2.0, 2.0, -7.0])
        result = adopt(table, desire=0b11, adopted=0)
        assert result in (0b01, 0b10)
        assert table[result] == 2.0


def fig2_model() -> UtilityModel:
    """Zero-noise model with U(i1)=+1, U(i2)=-1, U({i1,i2})=+3 (Fig. 2)."""
    return UtilityModel(
        TableValuation(2, {0b01: 4.0, 0b10: 2.0, 0b11: 9.0}),
        AdditivePrice([3.0, 3.0]),
        ZeroNoise(2),
    )


class TestUICSimulation:
    def test_fig2_walkthrough(self, rng):
        """The paper's running example: v3 adopts the bundle via propagation."""
        graph = InfluenceGraph(3, [(0, 1, 1.0), (0, 2, 0.0), (1, 2, 1.0)])
        result = simulate_uic(graph, fig2_model(), [(0, 0), (2, 1)], rng)
        assert result.adopted[0] == 0b01  # v1 adopts i1
        assert result.adopted[1] == 0b01  # v2 adopts i1
        assert result.adopted[2] == 0b11  # v3 adopts {i1, i2}
        assert result.desire[2] == 0b11
        assert result.welfare == pytest.approx(1.0 + 1.0 + 3.0)

    def test_seed_rejects_negative_item(self, rng):
        graph = InfluenceGraph(1, [])
        result = simulate_uic(graph, fig2_model(), [(0, 1)], rng)
        assert result.adopted.get(0, 0) == 0
        assert result.desire[0] == 0b10  # desired but not adopted
        assert result.welfare == 0.0

    def test_seed_adopts_bundle(self, rng):
        graph = InfluenceGraph(1, [])
        result = simulate_uic(graph, fig2_model(), [(0, 0), (0, 1)], rng)
        assert result.adopted[0] == 0b11
        assert result.welfare == pytest.approx(3.0)

    def test_deterministic_line_full_propagation(self, rng):
        graph = line_graph(6, 1.0)
        result = simulate_uic(graph, fig2_model(), [(0, 0)], rng)
        for v in range(6):
            assert result.adopted[v] == 0b01
        assert result.welfare == pytest.approx(6.0)

    def test_zero_probability_blocks_propagation(self, rng):
        graph = line_graph(4, 0.0)
        result = simulate_uic(graph, fig2_model(), [(0, 0)], rng)
        assert result.adopted == {0: 0b01}

    def test_fixed_edge_world_replay(self):
        graph = star_graph(4, probability=0.5, outward=True)
        # Live-edge world where only leaves 1 and 3 are reachable.
        world = LiveEdgeGraph(
            5, [np.array([1, 3])] + [np.array([], dtype=np.int64)] * 4
        )
        rng = np.random.default_rng(0)
        result = simulate_uic(
            graph, fig2_model(), [(0, 0)], rng, edge_world=world
        )
        assert set(result.adopted) == {0, 1, 3}

    def test_fixed_noise_world(self, config1_model):
        graph = line_graph(3, 1.0)
        noise = np.array([5.0, 5.0])  # both items strongly positive
        rng = np.random.default_rng(0)
        result = simulate_uic(
            graph, config1_model, [(0, 0), (0, 1)], rng, noise_world=noise
        )
        assert result.adopted[2] == 0b11
        # welfare = 3 nodes * (1 + 10) utility in this noise world
        assert result.welfare == pytest.approx(33.0)

    def test_invalid_seed_node(self, rng):
        graph = line_graph(3, 1.0)
        with pytest.raises(IndexError):
            simulate_uic(graph, fig2_model(), [(99, 0)], rng)

    def test_invalid_item(self, rng):
        graph = line_graph(3, 1.0)
        with pytest.raises(IndexError):
            simulate_uic(graph, fig2_model(), [(0, 7)], rng)

    def test_adopters_of_and_total_adoptions(self, rng):
        graph = line_graph(4, 1.0)
        result = simulate_uic(graph, fig2_model(), [(0, 0), (0, 1)], rng)
        assert result.adopters_of(0) == {0, 1, 2, 3}
        assert result.adopters_of(1) == {0, 1, 2, 3}
        assert result.total_adoptions() == 8

    def test_late_arriving_item_joins_adopted_set(self, rng):
        """A node that adopted i1 earlier upgrades to the bundle when i2
        arrives later (progressive adoption, never unadopts)."""
        # v0 seeds i1; v1 seeds i2 (needs the bundle); chain 0->1.
        graph = InfluenceGraph(2, [(0, 1, 1.0)])
        result = simulate_uic(graph, fig2_model(), [(0, 0), (1, 1)], rng)
        # v1 desired i2 (not adoptable alone), then receives i1: adopts both.
        assert result.adopted[1] == 0b11
