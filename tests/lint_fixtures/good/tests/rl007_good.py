"""RL007 fixture: deterministic waits stay clean."""
import asyncio
import threading


async def let_loop_run():
    await asyncio.sleep(0)


def wait_ready(event: threading.Event) -> None:
    assert event.wait(timeout=5.0)
