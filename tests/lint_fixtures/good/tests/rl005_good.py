"""RL005 fixture: hygienic estimate comparisons — must lint clean."""

import pytest


def check_estimates(graph, estimate_spread, estimate_welfare):
    spread = estimate_spread(graph, [])
    assert spread == 0.0  # exact boundary: empty seed set
    assert estimate_spread(graph, [0]) == pytest.approx(3.14, rel=0.05)
    # Same-lineage determinism is a pinned contract, not an ulp trap.
    assert estimate_welfare(graph) == estimate_welfare(graph)
    assert len(graph.spreads) == 4  # structural, not value equality
