"""RL004 fixture: layout spelled via format constants — must lint clean."""

import numpy as np

from repro.store.format import (
    ALIGN,
    INDEX_DTYPE,
    MAGIC,
    WORLDS_DTYPE,
    align_up,
)


def disciplined_writer(offsets, payload):
    index = np.asarray(offsets, dtype=INDEX_DTYPE)
    worlds = np.zeros(4, dtype=WORLDS_DTYPE)
    padding = align_up(len(payload)) - len(payload)
    assert padding < ALIGN
    return MAGIC, index, worlds, padding
