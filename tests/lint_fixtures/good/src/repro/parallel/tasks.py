"""RL003 fixture: copy-first worker task — must lint clean."""

import numpy as np


def good_task(graph, trigger_csr, seed_seq, count):
    weights = graph.weights.copy()  # laundered: a private buffer
    weights[0] = 0.0
    weights += 1.0
    local = np.zeros(count)
    np.add(local, 1.0, out=local)
    totals = np.empty(count)
    np.copyto(totals, local)
    return totals, seed_seq, trigger_csr.shape
