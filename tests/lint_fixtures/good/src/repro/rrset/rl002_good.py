"""RL002 fixture: tombstone/threading patterns that must lint clean."""

from repro.engine import EngineContext, ensure_context, is_batched


def spread(graph, k, ctx=None, backend=None, seed=None):
    # Tombstone entry point: the kwargs exist only to be rejected or
    # resolved by the engine, never read directly.
    ctx = ensure_context(
        ctx, backend=backend, seed=seed, caller="spread"
    )
    if ctx.is_batched:
        return _batched(graph, k, ctx)
    return _sequential(graph, k, ctx)


def legacy_constructor(graph, backend=None):
    if backend is None:
        backend = "batched"
    ctx = EngineContext.create(backend=backend)
    return graph, ctx


def capability(backend):
    return is_batched(backend)


def _batched(graph, k, ctx):
    return graph, k, ctx


def _sequential(graph, k, ctx):
    return graph, k, ctx
