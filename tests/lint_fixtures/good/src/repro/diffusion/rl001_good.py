"""RL001 fixture: lineage-derived randomness only — must lint clean."""

import numpy as np


def honest_streams(ctx, seed):
    root = np.random.SeedSequence(seed)
    rng = np.random.default_rng(root.spawn(1)[0])
    explicit = np.random.default_rng(12345)
    return rng, explicit, ctx.rng
