"""Suppression fixture: reasoned disable comments — must lint clean."""

import numpy as np


def entropy_for_tempfile_names():
    # repro-lint: disable=RL001 naming entropy only, never touches results
    return np.random.default_rng()


def trailing_style():
    rng = np.random.default_rng()  # repro-lint: disable=RL001 naming entropy only
    return rng
