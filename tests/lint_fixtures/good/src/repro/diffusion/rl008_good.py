"""RL008 fixture: timing and output through repro.obs — lints clean."""

from repro import obs

_PHASE = obs.histogram("repro_fixture_phase_seconds", labels=("phase",))


def disciplined_phase(rows, sink):
    with _PHASE.timer(phase="demo"), obs.span("fixture.demo"):
        total = sum(rows)
    with obs.stopwatch(sink):
        squared = total * total
    obs.emit(f"total={total}")
    return squared
