"""RL006 fixture: floors bound through min_speedup stay clean."""


def min_speedup(default):
    return default


FLOOR = min_speedup(1.4)
row = {"warm_speedup": 2.0, "qps": 900.0, "spread_ratio": 1.1}
assert row["warm_speedup"] >= FLOOR
assert row["qps"] > FLOOR * 100
# Quality ratios compare estimators, not clocks: out of vocabulary.
assert 0.7 <= row["spread_ratio"] <= 1.4
count = 5
assert count > 3
