"""RL007 fixture: blocking sleeps racing the scheduler."""
import time
from time import sleep
from time import sleep as snooze

time.sleep(0.5)
sleep(0.1)
snooze(2)
