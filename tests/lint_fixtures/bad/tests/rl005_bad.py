"""RL005 fixture: bare float equality on Monte-Carlo estimates."""


def check_estimates(graph, estimate_spread, estimate_welfare):
    spread = estimate_spread(graph, [0, 1])
    assert spread == 3.14  # line 6: bare float equality
    welfare = estimate_welfare(graph)
    assert welfare == 5 / 3  # line 8: constant-arithmetic re-derivation
    assert estimate_spread(graph, [2]) != 2.5  # line 9: != same trap
