"""RL002 fixture: every ctx-threading violation class."""

import os


def spread_with_knob(graph, k, backend="sequential", seed=None):
    # line 7-9: working backend kwarg + raw comparison + env re-read
    if backend != "sequential":
        batched = True
    else:
        batched = False
    fallback = os.environ.get("REPRO_RR_BACKEND", "batched")
    from repro.engine.context import resolve_backend

    resolved = resolve_backend(None)
    return batched, fallback, resolved, seed


def silently_ignored(graph, backend=None):
    # 'backend' accepted but never read: a no-op execution-state kwarg.
    return graph
