"""RL004 fixture: re-spelled on-disk format literals."""

import numpy as np

MAGIC_AGAIN = b"REPROSKT"  # line 5: re-spelled magic


def drifty_writer(offsets, payload):
    index = np.asarray(offsets, dtype="int64")  # line 9: dtype literal
    worlds = np.zeros(4, dtype=np.bool_)  # line 10: format dtype inline
    header_len = payload.astype("<u8")  # line 11: astype literal
    kind = np.dtype("bool")  # line 12: np.dtype literal
    padding = (64 - len(payload) % 64) % 64  # line 13: bare alignment
    return index, worlds, header_len, kind, padding
