"""RL001 fixture: every way of minting rogue randomness."""

import random  # line 3: stdlib random import

import numpy as np
import time


def rogue_streams():
    rng = np.random.default_rng()  # line 10: unseeded
    legacy = np.random.RandomState(7)  # line 11: legacy API
    np.random.seed(0)  # line 12: global state
    clocked = np.random.default_rng(int(time.time()))  # line 13: wall clock
    return rng, legacy, clocked, random.random()
