"""RL000 fixture: suppression without a reason (RL001 itself silenced)."""

import numpy as np


def quiet_but_unexplained():
    return np.random.default_rng()  # repro-lint: disable=RL001
