"""RL008 fixture: raw clocks and prints in engine code."""

import time
from time import perf_counter as pc


def leaky_phase(rows):
    start = time.perf_counter()  # line 8: attribute clock
    stamp = time.time()  # line 9: attribute clock
    print("phase done")  # line 10: raw print
    elapsed = pc() - start  # line 11: aliased from-import clock
    return stamp, elapsed, rows
