"""RL003 fixture: writes through shared-memory views in a worker task."""

import numpy as np


def bad_task(graph, trigger_csr, seed_seq, count):
    weights = graph.weights  # aliases the shared segment
    weights[0] = 0.0  # line 8: subscript write through the view
    graph.indptr += 1  # line 9: in-place update of an attachment
    trigger_csr.fill(0)  # line 10: mutating method on shared view
    np.copyto(weights, np.zeros_like(weights))  # line 11: copyto dest
    np.add(weights, 1.0, out=weights)  # line 12: out= aliasing
    return count, seed_seq
