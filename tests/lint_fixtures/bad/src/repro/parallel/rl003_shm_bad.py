"""RL003 fixture: raw shared_memory usage outside parallel/shm.py."""

from multiprocessing import shared_memory


def leak_prone(name):
    return shared_memory.SharedMemory(name=name)
