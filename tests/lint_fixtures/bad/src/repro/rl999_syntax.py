"""RL999 fixture: a file that does not parse must fail, not crash."""

def broken(:
    return 1
