"""RL006 fixture: hard-coded wall-clock gates and direct env-knob reads."""
import os

row = {"warm_speedup": 2.0, "qps": 900.0}
assert row["warm_speedup"] >= 1.5
assert row["qps"] > 100
speedup = 3.0
assert 1.2 < speedup
assert speedup >= 3 / 2
floor = float(os.environ["REPRO_BENCH_MIN_SPEEDUP"])
floor = float(os.getenv("REPRO_BENCH_MIN_SPEEDUP", "1.0"))
