"""Tests for repro.lint — the AST-based invariant checker.

Each rule is exercised against fixture trees under
``tests/lint_fixtures/{bad,good}/`` that mirror the repository layout
(the runner resolves rule scopes against a configurable root, so a
fixture at ``bad/src/repro/parallel/tasks.py`` exercises RL003's
path-scoped write analysis exactly as the real file would).  The
repository itself must lint clean — that test is the contract CI
enforces.
"""

from pathlib import Path

import pytest

from repro.lint import (
    Diagnostic,
    RULES,
    lint_file,
    parse_suppressions,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import Rule, rule

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"


def ids_for(root, rel):
    """Rule ids flagged in one fixture file, in line order."""
    findings = lint_file(root / rel, root)
    return [d.rule_id for d in sorted(findings)]


class TestRL001Determinism:
    def test_bad_fixture_trips(self):
        findings = sorted(lint_file(BAD / "src/repro/diffusion/rl001_bad.py", BAD))
        # Line 13's wall-clock RNG seed violates both the determinism
        # contract (RL001) and the obs clock discipline (RL008).
        assert [d.rule_id for d in findings] == ["RL001"] * 5 + ["RL008"]
        assert [d.line for d in findings] == [3, 10, 11, 12, 13, 13]

    def test_good_fixture_clean(self):
        assert ids_for(GOOD, "src/repro/diffusion/rl001_good.py") == []


class TestRL002CtxThreading:
    def test_bad_fixture_trips(self):
        findings = sorted(lint_file(BAD / "src/repro/rrset/rl002_bad.py", BAD))
        assert {d.rule_id for d in findings} == {"RL002"}
        messages = " | ".join(d.message for d in findings)
        assert "backend= kwarg" in messages
        assert "sequential" in messages
        assert "resolve_backend" in messages
        assert "environ" in messages
        assert "never" in messages  # the silently-ignored kwarg

    def test_good_fixture_clean(self):
        assert ids_for(GOOD, "src/repro/rrset/rl002_good.py") == []


class TestRL003ShmSafety:
    def test_bad_task_trips(self):
        findings = sorted(lint_file(BAD / "src/repro/parallel/tasks.py", BAD))
        assert [d.rule_id for d in findings] == ["RL003"] * 5
        assert [d.line for d in findings] == [8, 9, 10, 11, 12]

    def test_shm_outside_home_trips(self):
        assert ids_for(BAD, "src/repro/parallel/rl003_shm_bad.py") == ["RL003"]

    def test_good_task_clean(self):
        assert ids_for(GOOD, "src/repro/parallel/tasks.py") == []


class TestRL004StoreFormat:
    def test_bad_fixture_trips(self):
        findings = sorted(lint_file(BAD / "src/repro/store/rl004_bad.py", BAD))
        assert {d.rule_id for d in findings} == {"RL004"}
        # magic bytes, dtype=, np dtype, astype, np.dtype, 3x bare 64
        assert len(findings) == 8
        assert findings[0].line == 5

    def test_good_fixture_clean(self):
        assert ids_for(GOOD, "src/repro/store/rl004_good.py") == []


class TestRL005TestHygiene:
    def test_bad_fixture_trips(self):
        findings = sorted(lint_file(BAD / "tests/rl005_bad.py", BAD))
        assert [d.rule_id for d in findings] == ["RL005"] * 3
        assert [d.line for d in findings] == [6, 8, 9]

    def test_good_fixture_clean(self):
        assert ids_for(GOOD, "tests/rl005_good.py") == []


class TestRL006BenchGates:
    def test_bad_fixture_trips(self):
        findings = sorted(
            lint_file(BAD / "benchmarks/bench_rl006_bad.py", BAD)
        )
        assert [d.rule_id for d in findings] == ["RL006"] * 6
        assert [d.line for d in findings] == [5, 6, 8, 9, 10, 11]
        messages = " | ".join(d.message for d in findings)
        assert "min_speedup" in messages
        assert "REPRO_BENCH_MIN_SPEEDUP" in messages

    def test_good_fixture_clean(self):
        assert ids_for(GOOD, "benchmarks/bench_rl006_good.py") == []

    def test_scope_excludes_bench_utils(self):
        rule = RULES["RL006"]
        assert rule.scope("benchmarks/bench_oracle_serving.py")
        assert not rule.scope("benchmarks/_bench_utils.py")
        assert not rule.scope("src/repro/store/service.py")


class TestRL007NoSleep:
    def test_bad_fixture_trips(self):
        findings = sorted(lint_file(BAD / "tests/rl007_bad.py", BAD))
        assert [d.rule_id for d in findings] == ["RL007"] * 3
        assert [d.line for d in findings] == [6, 7, 8]
        messages = " | ".join(d.message for d in findings)
        assert "Event" in messages

    def test_good_fixture_clean(self):
        assert ids_for(GOOD, "tests/rl007_good.py") == []

    def test_scope_is_tests_only(self):
        rule = RULES["RL007"]
        assert rule.scope("tests/test_serving.py")
        assert not rule.scope("benchmarks/bench_oracle_serving.py")
        assert not rule.scope("src/repro/serving/coalesce.py")


class TestRL008ObsDiscipline:
    def test_bad_fixture_trips(self):
        findings = sorted(lint_file(BAD / "src/repro/diffusion/rl008_bad.py", BAD))
        assert [d.rule_id for d in findings] == ["RL008"] * 4
        assert [d.line for d in findings] == [8, 9, 10, 11]
        messages = " | ".join(d.message for d in findings)
        assert "obs.emit" in messages
        assert "obs.stopwatch" in messages

    def test_good_fixture_clean(self):
        assert ids_for(GOOD, "src/repro/diffusion/rl008_good.py") == []

    def test_scope_exempts_obs_and_cli(self):
        rule = RULES["RL008"]
        assert rule.scope("src/repro/diffusion/welfare.py")
        assert rule.scope("src/repro/serving/app.py")
        assert not rule.scope("src/repro/obs/metrics.py")
        assert not rule.scope("src/repro/cli.py")
        assert not rule.scope("src/repro/lint/cli.py")
        assert not rule.scope("tests/test_obs.py")
        assert not rule.scope("benchmarks/bench_oracle_serving.py")


class TestSuppressions:
    def test_reasonless_suppression_silences_rule_but_flags_rl000(self):
        findings = lint_file(BAD / "src/repro/diffusion/rl000_reasonless.py", BAD)
        assert [d.rule_id for d in findings] == ["RL000"]
        assert "no reason" in findings[0].message

    def test_reasoned_suppressions_clean(self):
        rel = "src/repro/diffusion/suppressed_with_reason.py"
        assert ids_for(GOOD, rel) == []

    def test_parse_standalone_shields_next_line(self):
        table = parse_suppressions(
            "# repro-lint: disable=RL001 naming entropy\nx = rng()\n"
        )
        assert table.is_suppressed(2, "RL001")
        assert not table.is_suppressed(1, "RL001")
        assert table.reasonless == []

    def test_parse_trailing_shields_own_line(self):
        table = parse_suppressions(
            "x = rng()  # repro-lint: disable=RL001,RL002 shared entropy\n"
        )
        assert table.is_suppressed(1, "RL001")
        assert table.is_suppressed(1, "RL002")
        assert not table.is_suppressed(1, "RL003")

    def test_parse_reasonless_recorded(self):
        table = parse_suppressions("x = rng()  # repro-lint: disable=RL001\n")
        assert table.is_suppressed(1, "RL001")
        assert len(table.reasonless) == 1


class TestEngine:
    def test_syntax_error_becomes_rl999(self):
        findings = lint_file(BAD / "src/repro/rl999_syntax.py", BAD)
        assert [d.rule_id for d in findings] == ["RL999"]
        assert "does not parse" in findings[0].message

    def test_bad_tree_trips_every_rule(self):
        ids = {d.rule_id for d in run_lint(BAD)}
        assert ids == {
            "RL000",
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL999",
        }

    def test_good_tree_clean(self):
        assert run_lint(GOOD) == []

    def test_repository_lints_clean(self):
        """The contract CI enforces: the tree itself has zero findings."""
        assert [d.render() for d in run_lint(REPO_ROOT)] == []

    def test_duplicate_rule_id_rejected(self):
        class Clone(Rule):
            rule_id = "RL001"

        with pytest.raises(ValueError, match="duplicate"):
            rule(Clone)

    def test_registry_has_all_rules(self):
        assert set(RULES) == {
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
        }

    def test_diagnostic_render(self):
        diag = Diagnostic(
            path="src/repro/x.py",
            line=3,
            col=7,
            rule_id="RL001",
            message="boom",
        )
        assert diag.render() == "src/repro/x.py:3:7: RL001 boom"


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert lint_main(["--root", str(GOOD)]) == 0
        err = capsys.readouterr().err
        assert "0 findings" in err

    def test_findings_exit_one(self, capsys):
        assert lint_main(["--root", str(BAD)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "RL005" in out

    def test_select_restricts_rules(self, capsys):
        assert lint_main(["--root", str(BAD), "--select", "RL004"]) == 1
        out = capsys.readouterr().out
        assert ": RL004 " in out
        assert ": RL001 " not in out

    def test_unknown_rule_usage_error(self, capsys):
        assert lint_main(["--root", str(BAD), "--select", "RL777"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_target_usage_error(self, capsys):
        assert lint_main(["--root", str(GOOD), "no_such_dir"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_root_usage_error(self, capsys):
        assert lint_main(["--root", str(GOOD / "nowhere")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_explicit_target_narrows_scan(self, capsys):
        assert lint_main(["--root", str(BAD), "tests"]) == 1
        out = capsys.readouterr().out
        assert "RL005" in out
        assert "RL001" not in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
        ):
            assert rule_id in out

    def test_quiet_omits_summary(self, capsys):
        assert lint_main(["--root", str(GOOD), "-q"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""
