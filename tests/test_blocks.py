"""Unit tests for the block generation process (§4.2.2).

Covers the paper's Examples 1–4 verbatim plus Properties 1–3.
"""

import numpy as np
import pytest

from repro.utility.blocks import (
    budget_sorted_order,
    generate_blocks,
    precedence_compare_literal,
    precedence_key,
)


def example2_table() -> np.ndarray:
    """Example 2's utility assignments (items i1, i2, i3 = bits 0, 1, 2)."""
    table = np.zeros(8)
    table[0b001] = table[0b010] = table[0b100] = table[0b011] = -1.0
    table[0b101] = table[0b110] = 1.0
    table[0b111] = 4.0
    return table


class TestPrecedenceOrder:
    def test_example1_order(self):
        """I = ({i1},{i2},{i1,i2},{i3},{i1,i3},{i2,i3},{i1,i2,i3})."""
        expected = [0b001, 0b010, 0b011, 0b100, 0b101, 0b110, 0b111]
        got = sorted(range(1, 8), key=precedence_key)
        assert got == expected

    def test_integer_order_matches_literal_rules(self):
        for s in range(1, 32):
            for t in range(1, 32):
                literal = precedence_compare_literal(s, t)
                integer = (s > t) - (s < t)
                assert literal == integer, (s, t)

    def test_property1_subset_comes_first(self):
        # (a) proper subset => earlier.
        for s in range(1, 64):
            for t in range(1, 64):
                if t != s and t & s == t:  # t proper subset of s
                    assert precedence_key(t) < precedence_key(s)

    def test_property1_lower_max_index_first(self):
        # (b) strictly lower highest index => earlier.
        assert precedence_key(0b011) < precedence_key(0b100)
        assert precedence_key(0b0111) < precedence_key(0b1000)


class TestBudgetSortedOrder:
    def test_descending_budget(self):
        order = budget_sorted_order(0b111, [5, 9, 7])
        assert order == (1, 2, 0)

    def test_tie_broken_by_index(self):
        order = budget_sorted_order(0b111, [5, 5, 5])
        assert order == (0, 1, 2)

    def test_restricted_to_istar(self):
        order = budget_sorted_order(0b101, [5, 9, 7])
        assert order == (2, 0)


class TestBlockGeneration:
    def test_example2_blocks(self):
        """B = ({i1, i3}, {i2}) with Δ = (1, 3)."""
        partition = generate_blocks(example2_table(), [30, 20, 10], 0b111)
        assert partition.blocks == (0b101, 0b010)
        assert partition.deltas == pytest.approx((1.0, 3.0))

    def test_example2_partition_covers_istar(self):
        partition = generate_blocks(example2_table(), [30, 20, 10], 0b111)
        union = 0
        for block in partition.blocks:
            assert union & block == 0  # disjoint
            union |= block
        assert union == 0b111

    def test_property2_deltas_sum_to_istar_utility(self):
        table = example2_table()
        partition = generate_blocks(table, [30, 20, 10], 0b111)
        assert sum(partition.deltas) == pytest.approx(table[0b111])
        assert all(d >= 0 for d in partition.deltas)

    def test_example3_4_anchor_and_effective_budget(self):
        """Anchor of both blocks is i3; effective budgets are b3."""
        partition = generate_blocks(example2_table(), [30, 20, 10], 0b111)
        # anchor item of B1 = i3 (index 2); B2's anchor block is B1 => i3 too.
        assert partition.anchor_items == (2, 2)
        assert partition.anchor_block_index == (0, 0)
        assert partition.effective_budgets == (10, 10)

    def test_property3_subset_deltas(self):
        table = example2_table()
        partition = generate_blocks(table, [30, 20, 10], 0b111)
        for subset in range(8):
            if subset & ~0b111:
                continue
            deltas = partition.subset_deltas(subset, table)
            # Σ Δ^A_i = U(A)
            assert sum(deltas) == pytest.approx(table[subset])
            # Δ^A_i <= Δ_i
            for da, d in zip(deltas, partition.deltas):
                assert da <= d + 1e-12

    def test_subset_deltas_rejects_non_subset(self):
        partition = generate_blocks(example2_table(), [30, 20, 10], 0b111)
        with pytest.raises(ValueError):
            partition.subset_deltas(0b1000, example2_table())

    def test_empty_istar(self):
        partition = generate_blocks(np.zeros(8), [1, 1, 1], 0)
        assert partition.num_blocks == 0

    def test_singleton_positive_items_become_singleton_blocks(self):
        table = np.array([0.0, 1.0, 1.0, 2.0])
        partition = generate_blocks(table, [5, 5], 0b11)
        assert partition.blocks == (0b01, 0b10)
        assert partition.deltas == pytest.approx((1.0, 1.0))

    def test_budget_order_changes_block_content(self):
        """Reversing budgets renumbers items and changes the scan order."""
        table = example2_table()
        # Now i3 (bit 2) has the largest budget: sorted order is (2, 1, 0),
        # so the roles of bit 0 and bit 2 swap relative to Example 2.
        partition = generate_blocks(table, [10, 20, 30], 0b111)
        union = 0
        for block in partition.blocks:
            union |= block
        assert union == 0b111
        assert sum(partition.deltas) == pytest.approx(table[0b111])

    def test_non_local_max_istar_raises(self):
        table = np.array([0.0, -1.0, -1.0, -5.0])  # {i1,i2} not a local max
        with pytest.raises(RuntimeError):
            generate_blocks(table, [1, 1], 0b11)

    def test_prefix_union(self):
        partition = generate_blocks(example2_table(), [30, 20, 10], 0b111)
        assert partition.prefix_union(0) == 0
        assert partition.prefix_union(1) == 0b101
        assert partition.prefix_union(2) == 0b111
