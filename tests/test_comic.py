"""Unit tests for the Com-IC model and the GAP correspondence (Eq. 12)."""

import numpy as np
import pytest

from repro.diffusion.comic import (
    ComICModel,
    estimate_comic_spread,
    simulate_comic,
)
from repro.experiments.configs import two_item_config
from repro.experiments.gap import gap_from_utility, utility_from_gap
from repro.graph.generators import line_graph, star_graph


class TestComICModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ComICModel(1.2, 0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            ComICModel(0.5, 0.5, -0.1, 0.5)

    def test_mutual_complementarity(self):
        assert ComICModel(0.5, 0.8, 0.5, 0.8).is_mutually_complementary()
        assert not ComICModel(0.5, 0.3, 0.5, 0.8).is_mutually_complementary()

    def test_q_accessor(self):
        m = ComICModel(0.1, 0.2, 0.3, 0.4)
        assert m.q(0, False) == 0.1
        assert m.q(0, True) == 0.2
        assert m.q(1, False) == 0.3
        assert m.q(1, True) == 0.4
        with pytest.raises(ValueError):
            m.q(2, False)


class TestComICSimulation:
    def test_competitive_model_rejected(self, rng):
        model = ComICModel(0.5, 0.2, 0.5, 0.2)
        with pytest.raises(ValueError):
            simulate_comic(line_graph(3, 1.0), model, [0], [], rng)

    def test_q_one_adopts_all_reachable(self, rng):
        model = ComICModel(1.0, 1.0, 1.0, 1.0)
        result = simulate_comic(line_graph(5, 1.0), model, [0], [], rng)
        assert result.adopted_a == {0, 1, 2, 3, 4}
        assert result.adopted_b == set()

    def test_q_zero_adopts_nothing(self, rng):
        model = ComICModel(0.0, 0.0, 0.0, 0.0)
        result = simulate_comic(line_graph(5, 1.0), model, [0], [0], rng)
        assert result.adopted_a == set()
        assert result.adopted_b == set()

    def test_adoption_frequency_matches_q(self):
        model = ComICModel(0.3, 0.3, 0.5, 0.5)
        graph = line_graph(1, 1.0)  # single node, no propagation
        rng = np.random.default_rng(7)
        adopted = 0
        for _ in range(4000):
            result = simulate_comic(graph, model, [0], [], rng)
            adopted += len(result.adopted_a)
        assert adopted / 4000 == pytest.approx(0.3, abs=0.02)

    def test_reconsideration_boost(self):
        """With q_{A|B} > q_{A|∅}, seeding B too must raise A adoptions."""
        model = ComICModel(0.2, 0.9, 1.0, 1.0)
        graph = star_graph(50, probability=1.0)
        alone = estimate_comic_spread(
            graph, model, [0], [], item=0, num_samples=300,
            rng=np.random.default_rng(1),
        )
        boosted = estimate_comic_spread(
            graph, model, [0], [0], item=0, num_samples=300,
            rng=np.random.default_rng(1),
        )
        assert boosted > alone * 2.0

    def test_adopters_of(self, rng):
        model = ComICModel(1.0, 1.0, 1.0, 1.0)
        result = simulate_comic(line_graph(3, 1.0), model, [0], [2], rng)
        assert result.adopters_of(0) == {0, 1, 2}
        assert result.adopters_of(1) == {2}


class TestGAPCorrespondence:
    def test_config1_analytic_values(self):
        """Table 3 row 1: q_{i|∅}=0.5, q_{i|j}=0.84."""
        gap = gap_from_utility(two_item_config(1).model)
        assert gap.q_a_empty == pytest.approx(0.5, abs=1e-6)
        assert gap.q_b_empty == pytest.approx(0.5, abs=1e-6)
        assert gap.q_a_given_b == pytest.approx(0.8413, abs=1e-3)
        assert gap.q_b_given_a == pytest.approx(0.8413, abs=1e-3)

    def test_config3_analytic_values(self):
        """Table 3 row 3: 0.5 / 0.16 / 0.98 / 0.84."""
        gap = gap_from_utility(two_item_config(3).model)
        assert gap.q_a_empty == pytest.approx(0.5, abs=1e-6)
        assert gap.q_b_empty == pytest.approx(0.1587, abs=1e-3)
        assert gap.q_a_given_b == pytest.approx(0.9772, abs=1e-3)
        assert gap.q_b_given_a == pytest.approx(0.8413, abs=1e-3)

    def test_gap_requires_two_items(self):
        from repro.utility.learned import real_utility_model

        with pytest.raises(ValueError):
            gap_from_utility(real_utility_model())

    def test_gap_matches_monte_carlo_adoption(self):
        """Eq. 12 against the simulator: a single node desiring i1 adopts it
        with probability q_{i1|∅}."""
        model = two_item_config(1).model
        gap = gap_from_utility(model)
        rng = np.random.default_rng(3)
        adopted = 0
        trials = 4000
        for _ in range(trials):
            table = model.utility_table(model.sample_noise_world(rng))
            if table[0b01] >= 0:
                adopted += 1
        assert adopted / trials == pytest.approx(gap.q_a_empty, abs=0.02)

    def test_utility_from_gap_roundtrip(self):
        original = ComICModel(0.5, 0.84, 0.5, 0.84)
        model = utility_from_gap(original, prices=(3.0, 4.0), noise_std=1.0)
        recovered = gap_from_utility(model)
        assert recovered.q_a_empty == pytest.approx(0.5, abs=0.01)
        assert recovered.q_a_given_b == pytest.approx(0.84, abs=0.02)
        assert recovered.q_b_empty == pytest.approx(0.5, abs=0.01)
        assert recovered.q_b_given_a == pytest.approx(0.84, abs=0.02)

    def test_utility_from_gap_rejects_competition(self):
        with pytest.raises(ValueError):
            utility_from_gap(ComICModel(0.9, 0.1, 0.5, 0.5))
