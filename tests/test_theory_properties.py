"""Property-based tests of the paper's lemmas and theorems (hypothesis).

Covers: supermodularity of U = V − P + N (additive P, N), Lemma 1 (unions of
local maxima), Lemma 2 (adopted sets are local maxima), Lemma 3
(reachability), Theorem 1 (per-world welfare monotonicity), Properties 2 and
3 of the block partition, and Property 1 of the precedence order.
"""

from typing import List

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.adoption import adopt
from repro.diffusion.uic import simulate_uic
from repro.diffusion.worlds import LiveEdgeGraph, reachable_set
from repro.graph.digraph import InfluenceGraph
from repro.utility.blocks import generate_blocks, precedence_key
from repro.utility.itemsets import full_mask, iter_subsets, items_of
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation, is_supermodular


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def supermodular_tables(draw, num_items: int = 3):
    """A random monotone supermodular valuation minus additive prices,
    materialized as a utility table (zero noise).

    Built by accumulating non-negative marginals that grow with set size,
    which guarantees supermodularity by construction; prices are additive so
    the resulting utility table stays supermodular.
    """
    k = num_items
    # base marginal for each item, plus a synergy slope per extra item
    base = [draw(st.floats(0.0, 5.0)) for _ in range(k)]
    slope = [draw(st.floats(0.0, 3.0)) for _ in range(k)]
    prices = [draw(st.floats(0.0, 6.0)) for _ in range(k)]
    values = {}
    for mask in iter_subsets(full_mask(k)):
        total = 0.0
        members: List[int] = list(items_of(mask))
        for rank, item in enumerate(members):
            # marginal of `item` when added to `rank` earlier items
            total += base[item] + slope[item] * rank
        values[mask] = total
    table = np.zeros(1 << k)
    for mask, value in values.items():
        price = sum(prices[i] for i in items_of(mask))
        table[mask] = value - price
    return table


def _table_is_supermodular(table: np.ndarray, k: int) -> bool:
    valuation = TableValuation(
        k, {m: float(table[m]) for m in range(1, 1 << k)}, validate=None
    )
    return is_supermodular(valuation)


# ---------------------------------------------------------------------------
# Supermodularity of the utility
# ---------------------------------------------------------------------------
@given(supermodular_tables())
@settings(max_examples=60, deadline=None)
def test_generated_tables_are_supermodular(table):
    assert _table_is_supermodular(table, 3)


# ---------------------------------------------------------------------------
# Lemma 1: union of local maxima is a local maximum
# ---------------------------------------------------------------------------
@given(supermodular_tables())
@settings(max_examples=60, deadline=None)
def test_lemma1_union_of_local_maxima(table):
    k = 3
    local_maxima = [
        mask
        for mask in range(1 << k)
        if UtilityModel.is_local_maximum(table, mask)
    ]
    for a in local_maxima:
        for b in local_maxima:
            union = a | b
            assert UtilityModel.is_local_maximum(table, union), (
                f"union {union:#b} of local maxima {a:#b}, {b:#b} "
                "is not a local maximum"
            )


# ---------------------------------------------------------------------------
# Lemma 2: the adoption rule always returns a local maximum
# ---------------------------------------------------------------------------
@given(supermodular_tables(), st.integers(0, 7))
@settings(max_examples=60, deadline=None)
def test_lemma2_adopted_set_is_local_maximum(table, desire):
    adopted = adopt(table, desire, 0)
    assert UtilityModel.is_local_maximum(table, adopted)
    # and adopting more later preserves the property
    adopted2 = adopt(table, 0b111, adopted)
    assert UtilityModel.is_local_maximum(table, adopted2)


# ---------------------------------------------------------------------------
# Lemma 3: reachability — every node reachable from an adopter adopts too
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=16,
    ),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 1)), max_size=6),
    supermodular_tables(2),
)
@settings(max_examples=50, deadline=None)
def test_lemma3_reachability(arcs, allocation, table):
    graph = InfluenceGraph(8, ((u, v, 1.0) for u, v in arcs))
    model = UtilityModel(
        TableValuation(
            2, {m: float(table[m]) for m in range(1, 4)}, validate=None
        ),
        AdditivePrice([0.0, 0.0]),
        ZeroNoise(2),
    )
    rng = np.random.default_rng(0)
    result = simulate_uic(graph, model, allocation, rng)
    # deterministic edges: the live world is the full graph
    world = LiveEdgeGraph(
        8, [graph.out_neighbors(u) for u in range(8)]
    )
    for item in range(2):
        adopters = result.adopters_of(item)
        for u in list(adopters):
            for v in reachable_set(world, [u]):
                assert v in adopters, (
                    f"node {v} reachable from adopter {u} did not adopt "
                    f"item {item}"
                )


# ---------------------------------------------------------------------------
# Theorem 1: welfare is monotone w.r.t. allocations in every fixed world
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        min_size=1,
        max_size=14,
    ),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 2)), max_size=5),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 2)), max_size=4),
    supermodular_tables(3),
)
@settings(max_examples=40, deadline=None)
def test_theorem1_welfare_monotone_per_world(arcs, alloc_small, extra, table):
    graph = InfluenceGraph(8, ((u, v, 1.0) for u, v in arcs))
    model = UtilityModel(
        TableValuation(
            3, {m: float(table[m]) for m in range(1, 8)}, validate=None
        ),
        AdditivePrice([0.0, 0.0, 0.0]),
        ZeroNoise(3),
    )
    alloc_large = alloc_small + extra
    world = LiveEdgeGraph(8, [graph.out_neighbors(u) for u in range(8)])
    rng = np.random.default_rng(0)
    w_small = simulate_uic(graph, model, alloc_small, rng, edge_world=world)
    w_large = simulate_uic(graph, model, alloc_large, rng, edge_world=world)
    assert w_large.welfare >= w_small.welfare - 1e-9


# ---------------------------------------------------------------------------
# Properties 2 & 3 of the block partition
# ---------------------------------------------------------------------------
@given(supermodular_tables(3), st.permutations([3, 7, 12]))
@settings(max_examples=60, deadline=None)
def test_block_partition_properties(table, budgets):
    model_table = table
    # I* with union tie-break
    best = float(np.max(model_table))
    istar = 0
    for mask in range(8):
        if model_table[mask] >= best - 1e-12:
            istar |= mask
    if model_table[istar] < best - 1e-9:
        return  # non-supermodular corner from float ties; skip
    partition = generate_blocks(model_table, list(budgets), istar)
    # partition covers I* disjointly
    union = 0
    for block in partition.blocks:
        assert union & block == 0
        union |= block
    assert union == istar
    # Property 2
    assert all(d >= -1e-9 for d in partition.deltas)
    assert sum(partition.deltas) == pytest.approx(
        float(model_table[istar]) - float(model_table[0]), abs=1e-6
    )
    # Property 3 for every subset of I*
    for subset in iter_subsets(istar):
        deltas = partition.subset_deltas(subset, model_table)
        assert sum(deltas) == pytest.approx(
            float(model_table[subset]) - float(model_table[0]), abs=1e-6
        )
        for da, d in zip(deltas, partition.deltas):
            assert da <= d + 1e-6


# ---------------------------------------------------------------------------
# Property 1 of the precedence order
# ---------------------------------------------------------------------------
@given(st.integers(1, 255), st.integers(1, 255))
@settings(max_examples=200, deadline=None)
def test_property1_precedence(s, t):
    if t != s and t & s == t:  # t ⊂ s
        assert precedence_key(t) < precedence_key(s)
    if t.bit_length() < s.bit_length():  # max index strictly lower
        assert precedence_key(t) < precedence_key(s)
