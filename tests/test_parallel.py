"""The shared-memory parallel layer's contracts (DESIGN.md §6).

Four pinned behaviors:

1. **Determinism.** Sharded builds and forward estimates are pure
   functions of ``(seed, shard structure)`` — byte-identical across
   ``processes ∈ {0, 2, 4}``, because pooled and in-process dispatch run
   the same task functions on the same arrays.
2. **No /dev/shm leaks.** Every published segment is unlinked on pool
   shutdown AND after worker crashes (single and repeated).
3. **Crash recovery.** A killed worker breaks the executor; the pool
   retries once on a fresh one and keeps serving afterwards.
4. **Backend wiring.** ``parallel`` resolves as a first-class backend
   (explicit > ``$REPRO_RR_BACKEND``), and a lineage-less parallel
   context degrades to batched with the pinned warning.
"""

from __future__ import annotations

import glob
import warnings

import numpy as np
import pytest

from repro.diffusion.comic import ComICModel, estimate_comic_spread
from repro.diffusion.welfare import estimate_adoption, estimate_welfare
from repro.engine import BACKENDS, EngineContext
from repro.graph.generators import random_wc_graph
from repro.parallel import (
    FORWARD_SHARDS,
    LINEAGE_FALLBACK_MESSAGE,
    SEGMENT_PREFIX,
    forward_shard_counts,
    get_pool,
    pool_stats,
    publish_graph,
    attach_graph,
    shutdown_pool,
)
from repro.store import build_sharded


def _shm_blocks() -> set:
    """Names of this layer's live shared-memory blocks."""
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*"))


@pytest.fixture(autouse=True)
def fresh_pool():
    """Every test starts and ends with no pool and no segments."""
    shutdown_pool()
    before = _shm_blocks()
    yield
    shutdown_pool()
    assert _shm_blocks() <= before


@pytest.fixture
def graph():
    return random_wc_graph(200, avg_degree=5, seed=31)


class TestShardCounts:
    def test_counts_sum_and_cap(self):
        for n in (1, 3, FORWARD_SHARDS, 100, 1001):
            counts = forward_shard_counts(n)
            assert sum(counts) == n
            assert len(counts) == min(n, FORWARD_SHARDS)
            assert max(counts) - min(counts) <= 1

    def test_counts_do_not_depend_on_workers(self, monkeypatch):
        baseline = forward_shard_counts(100)
        monkeypatch.setenv("REPRO_PARALLEL_PROCESSES", "7")
        assert forward_shard_counts(100) == baseline


class TestSharedMemoryRoundTrip:
    def test_attach_reproduces_graph(self, graph):
        shm, spec = publish_graph(graph, None)
        try:
            attached, trigger_csr, worker_shm = attach_graph(spec)
            assert trigger_csr is None
            assert attached.num_nodes == graph.num_nodes
            for name in (
                "_out_indptr", "_out_probs", "_in_indptr", "_in_probs"
            ):
                assert np.array_equal(
                    getattr(attached, name), getattr(graph, name)
                )
        finally:
            shm.close()
            shm.unlink()


class TestDeterminism:
    """processes ∈ {0, 2, 4} — worker count never touches a byte."""

    @pytest.mark.parametrize("processes", [2, 4])
    def test_build_sharded_matches_in_process(self, graph, processes):
        kwargs = dict(
            num_shards=4,
            estimation_rr_sets=400,
            ctx=EngineContext.create(seed=17),
        )
        serial = build_sharded(graph, 4, processes=0, **kwargs)
        kwargs["ctx"] = EngineContext.create(seed=17)
        pooled = build_sharded(graph, 4, processes=processes, **kwargs)
        assert get_pool().tasks_dispatched > 0
        assert np.array_equal(serial.members, pooled.members)
        assert np.array_equal(serial.offsets, pooled.offsets)
        assert np.array_equal(serial.seed_order, pooled.seed_order)

    @pytest.mark.parametrize("processes", [2, 4])
    def test_forward_welfare_identical(
        self, graph, config1_model, processes
    ):
        def run():
            return estimate_welfare(
                graph,
                config1_model,
                [(0, 0), (1, 1)],
                num_samples=48,
                ctx=EngineContext.create(backend="parallel", seed=5),
            )

        get_pool(0)
        in_process = run()
        get_pool(processes)
        pooled = run()
        assert pooled.mean == in_process.mean
        assert pooled.stderr == in_process.stderr

    @pytest.mark.parametrize("processes", [2])
    def test_forward_spread_identical(self, graph, processes):
        model = ComICModel(0.2, 0.6, 0.2, 0.6)

        def run():
            return estimate_comic_spread(
                graph,
                model,
                [0, 1],
                [2, 3],
                item=0,
                num_samples=40,
                ctx=EngineContext.create(backend="parallel", seed=9),
            )

        get_pool(0)
        in_process = run()
        get_pool(processes)
        assert run() == in_process

    def test_adoption_parallel_matches_batched(self, graph, config1_model):
        get_pool(0)
        parallel = estimate_adoption(
            graph,
            config1_model,
            [(0, 0), (1, 1)],
            item=0,
            num_samples=32,
            ctx=EngineContext.create(backend="parallel", seed=3),
        )
        assert parallel.mean >= 0.0


class TestLeaks:
    def test_segments_unlinked_on_shutdown(self, graph):
        pool = get_pool(2)
        pool.map_shards(
            "rr_shard",
            graph,
            [(np.random.SeedSequence(0), 50, None, "batched")] * 2,
        )
        assert pool.segment_names  # published while live
        live = _shm_blocks()
        assert any(name.split("/")[-1] in str(live) for name in pool.segment_names)
        shutdown_pool()
        assert not _shm_blocks()

    def test_segments_unlinked_after_worker_crash(self, graph):
        pool = get_pool(2)
        jobs = [(np.random.SeedSequence(i), 1) for i in range(2)]
        with pytest.raises(Exception):
            pool.map_shards("_kill_worker", graph, jobs)
        assert not _shm_blocks()

    def test_reset_is_idempotent(self, graph):
        pool = get_pool(2)
        pool.map_shards(
            "rr_shard",
            graph,
            [(np.random.SeedSequence(0), 20, None, "batched")] * 2,
        )
        pool.reset()
        pool.reset()
        assert not _shm_blocks()
        assert pool.segment_names == []


class TestCrashRecovery:
    def test_pool_restarts_after_killed_worker(self, graph):
        pool = get_pool(2)
        assert pool.restarts == 0
        with pytest.raises(Exception):
            pool.map_shards(
                "_kill_worker",
                graph,
                [(np.random.SeedSequence(i), 1) for i in range(2)],
            )
        # The same pool object serves the next dispatch on a fresh
        # executor, and the results match the in-process truth.
        jobs = [(np.random.SeedSequence(4), 60, None, "batched")]
        jobs.append((np.random.SeedSequence(5), 60, None, "batched"))
        recovered = pool.map_shards("rr_shard", graph, jobs)
        # The crash is visible in the recovery counter and pool stats
        # (and from there in /v1/stats and the metrics registry).
        assert pool.restarts >= 1
        stats = pool.stats()
        assert stats["restarts"] == pool.restarts
        assert stats["tasks_dispatched"] == pool.tasks_dispatched
        assert pool_stats()["active"] == 1
        assert pool_stats()["restarts"] == pool.restarts
        pool.reconfigure(0)
        serial = pool.map_shards("rr_shard", graph, jobs)
        for (m1, w1), (m2, w2) in zip(recovered, serial):
            assert np.array_equal(m1, m2)
            assert np.array_equal(w1, w2)

    def test_pool_stats_inactive_shape(self):
        assert pool_stats() == {
            "active": 0,
            "processes": 0,
            "tasks_dispatched": 0,
            "restarts": 0,
            "segments": 0,
        }


class TestBackendWiring:
    def test_parallel_is_a_backend(self):
        assert "parallel" in BACKENDS
        ctx = EngineContext.create(backend="parallel", seed=0)
        assert ctx.backend == "parallel"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_RR_BACKEND", "sequential")
        ctx = EngineContext.create(backend="parallel", seed=0)
        assert ctx.backend == "parallel"
        assert EngineContext.create(seed=0).backend == "sequential"

    def test_environment_resolves_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_RR_BACKEND", "parallel")
        assert EngineContext.create(seed=0).backend == "parallel"

    def test_lineage_less_parallel_warns_and_degrades(
        self, graph, config1_model
    ):
        ctx = EngineContext.create(
            backend="parallel", rng=np.random.default_rng(0)
        )
        assert not ctx.has_lineage
        with pytest.warns(UserWarning, match="no integer-seed lineage"):
            est = estimate_welfare(
                graph,
                config1_model,
                [(0, 0)],
                num_samples=8,
                ctx=ctx,
            )
        assert np.isfinite(est.mean)
        assert LINEAGE_FALLBACK_MESSAGE.format(caller="x")  # template intact

    def test_seeded_parallel_does_not_warn(self, graph, config1_model):
        get_pool(0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            estimate_welfare(
                graph,
                config1_model,
                [(0, 0)],
                num_samples=8,
                ctx=EngineContext.create(backend="parallel", seed=1),
            )
