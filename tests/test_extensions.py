"""Tests for the §5 extensions: triggering models (LT), submodular prices,
and personalized noise."""

import numpy as np
import pytest

from repro.diffusion.personalized import (
    estimate_welfare_personalized,
    simulate_uic_personalized,
)
from repro.diffusion.triggering import (
    IndependentCascadeTriggering,
    LinearThresholdTriggering,
    resolve_triggering,
    sample_triggering_world,
)
from repro.diffusion.uic import simulate_uic
from repro.diffusion.welfare import estimate_welfare
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import line_graph, random_wc_graph
from repro.rrset.imm import imm
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice, DiscountedBundlePrice
from repro.utility.valuation import (
    TableValuation,
    is_supermodular,
)


class TestTriggeringModels:
    def test_resolve(self):
        assert isinstance(resolve_triggering("ic"), IndependentCascadeTriggering)
        assert isinstance(resolve_triggering("lt"), LinearThresholdTriggering)
        model = LinearThresholdTriggering()
        assert resolve_triggering(model) is model
        with pytest.raises(ValueError):
            resolve_triggering("bogus")

    def test_lt_trigger_set_at_most_one(self, rng):
        g = random_wc_graph(100, 6, seed=4)
        lt = LinearThresholdTriggering()
        for v in range(0, 100, 7):
            trigger = lt.sample_trigger_set(g, v, rng)
            assert trigger.shape[0] <= 1

    def test_lt_trigger_frequencies_match_weights(self):
        # node 2 has in-edges from 0 (w=0.3) and 1 (w=0.5); empty w.p. 0.2
        g = InfluenceGraph(3, [(0, 2, 0.3), (1, 2, 0.5)])
        lt = LinearThresholdTriggering()
        rng = np.random.default_rng(5)
        counts = {0: 0, 1: 0, None: 0}
        trials = 8000
        for _ in range(trials):
            t = lt.sample_trigger_set(g, 2, rng)
            if t.shape[0] == 0:
                counts[None] += 1
            else:
                counts[int(t[0])] += 1
        assert counts[0] / trials == pytest.approx(0.3, abs=0.02)
        assert counts[1] / trials == pytest.approx(0.5, abs=0.02)
        assert counts[None] / trials == pytest.approx(0.2, abs=0.02)

    def test_lt_validate_rejects_overweight(self):
        g = InfluenceGraph(3, [(0, 2, 0.8), (1, 2, 0.8)])
        with pytest.raises(ValueError):
            LinearThresholdTriggering().validate(g)

    def test_lt_validate_accepts_wc(self):
        g = random_wc_graph(50, 4, seed=1)
        LinearThresholdTriggering().validate(g)  # in-weights sum to 1

    def test_ic_triggering_matches_edge_probability(self):
        g = InfluenceGraph(2, [(0, 1, 0.25)])
        ic = IndependentCascadeTriggering()
        rng = np.random.default_rng(6)
        hits = sum(
            ic.sample_trigger_set(g, 1, rng).shape[0] for _ in range(8000)
        )
        assert hits / 8000 == pytest.approx(0.25, abs=0.02)

    def test_sample_triggering_world_edges(self, rng):
        g = line_graph(5, 1.0)
        world = sample_triggering_world(
            g, IndependentCascadeTriggering(), rng
        )
        # probability-1 line: all edges live
        assert world.num_live_edges == 4

    def test_lt_world_line_graph_deterministic(self, rng):
        # line graph under WC weighting: each node's single in-weight is 1,
        # so LT always picks it — full propagation.
        from repro.graph.weighting import weighted_cascade

        g = weighted_cascade(5, [(i, i + 1) for i in range(4)])
        world = sample_triggering_world(g, LinearThresholdTriggering(), rng)
        assert world.num_live_edges == 4

    def test_imm_under_lt_picks_star_hub(self):
        from repro.graph.weighting import weighted_cascade

        arcs = [(0, leaf) for leaf in range(1, 40)]
        g = weighted_cascade(40, arcs)
        result = imm(g, 1, rng=np.random.default_rng(0), triggering="lt")
        assert result.seeds == (0,)

    def test_estimate_welfare_under_lt(self, config1_model):
        g = random_wc_graph(300, 6, seed=9)
        alloc = [(v, i) for v in range(8) for i in (0, 1)]
        est = estimate_welfare(
            g, config1_model, alloc, num_samples=40,
            rng=np.random.default_rng(1), triggering="lt",
        )
        assert est.mean > 0.0

    def test_lt_welfare_rejects_overweight_graph(self, config1_model):
        g2 = InfluenceGraph(3, [(0, 2, 0.8), (1, 2, 0.8)])
        with pytest.raises(ValueError):
            estimate_welfare(
                g2, config1_model, [(0, 0)], num_samples=5, triggering="lt"
            )


class TestDiscountedBundlePrice:
    def test_price_values(self):
        p = DiscountedBundlePrice([3.0, 4.0, 5.0], discount=1.0)
        assert p.price(0) == 0.0
        assert p.price(0b001) == pytest.approx(3.0)
        assert p.price(0b011) == pytest.approx(6.0)  # 7 - 1
        assert p.price(0b111) == pytest.approx(10.0)  # 12 - 2

    def test_discount_validation(self):
        with pytest.raises(ValueError):
            DiscountedBundlePrice([3.0, 4.0], discount=-1.0)
        with pytest.raises(ValueError):
            DiscountedBundlePrice([3.0, 4.0], discount=3.5)
        with pytest.raises(ValueError):
            DiscountedBundlePrice([-1.0], discount=0.0)

    def test_utility_stays_supermodular(self):
        """§5: submodular prices keep U supermodular."""
        valuation = TableValuation(
            3,
            {
                0b001: 3.0, 0b010: 3.0, 0b100: 3.0,
                0b011: 7.0, 0b101: 7.0, 0b110: 7.0,
                0b111: 12.0,
            },
        )
        model = UtilityModel(
            valuation,
            DiscountedBundlePrice([2.0, 2.0, 2.0], discount=1.0),
            ZeroNoise(3),
        )
        expected = model.utility_table(None)
        as_valuation = TableValuation(
            3, {m: float(expected[m]) for m in range(1, 8)}, validate=None
        )
        assert is_supermodular(as_valuation)

    def test_discount_favors_bundles(self):
        """The discounted bundle has strictly higher utility than additive."""
        valuation = TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0})
        additive = UtilityModel(valuation, AdditivePrice([3.0, 4.0]))
        discounted = UtilityModel(
            valuation, DiscountedBundlePrice([3.0, 4.0], discount=1.5)
        )
        assert discounted.expected_utility(0b11) > additive.expected_utility(0b11)
        assert discounted.expected_utility(0b01) == additive.expected_utility(0b01)


class TestPersonalizedNoise:
    def test_zero_noise_matches_shared_model(self, rng):
        """With degenerate noise, personalized == shared semantics."""
        model = UtilityModel(
            TableValuation(2, {0b01: 4.0, 0b10: 2.0, 0b11: 9.0}),
            AdditivePrice([3.0, 3.0]),
            ZeroNoise(2),
        )
        graph = line_graph(5, 1.0)
        alloc = [(0, 0), (0, 1)]
        shared = simulate_uic(graph, model, alloc, np.random.default_rng(1))
        personal = simulate_uic_personalized(
            graph, model, alloc, np.random.default_rng(1)
        )
        assert shared.adopted == personal.adopted
        assert shared.welfare == pytest.approx(personal.welfare)

    def test_personalized_runs_with_noise(self, config1_model):
        graph = random_wc_graph(200, 6, seed=2)
        alloc = [(v, i) for v in range(5) for i in (0, 1)]
        welfare = estimate_welfare_personalized(
            graph, config1_model, alloc, num_samples=40,
            rng=np.random.default_rng(3),
        )
        assert welfare > 0.0

    def test_personalized_validation(self, config1_model):
        graph = line_graph(3, 1.0)
        with pytest.raises(IndexError):
            simulate_uic_personalized(
                graph, config1_model, [(99, 0)], np.random.default_rng(0)
            )
        with pytest.raises(IndexError):
            simulate_uic_personalized(
                graph, config1_model, [(0, 9)], np.random.default_rng(0)
            )
        with pytest.raises(ValueError):
            estimate_welfare_personalized(
                graph, config1_model, [], num_samples=0
            )

    def test_personalized_close_to_shared_in_expectation(self, config1_model):
        """Expected welfare under both noise regimes should be in the same
        ballpark (noise is zero-mean either way)."""
        graph = random_wc_graph(300, 6, seed=4)
        alloc = [(v, i) for v in range(10) for i in (0, 1)]
        shared = estimate_welfare(
            graph, config1_model, alloc, num_samples=150,
            rng=np.random.default_rng(5),
        ).mean
        personal = estimate_welfare_personalized(
            graph, config1_model, alloc, num_samples=150,
            rng=np.random.default_rng(5),
        )
        assert personal == pytest.approx(shared, rel=0.5)
