"""Edge-case tests for PRIMA: the LB=1 fallback branch, tiny graphs, and
search-phase bookkeeping."""

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import isolated_nodes, line_graph
from repro.rrset.prima import prima


class TestFallbackBranch:
    def test_isolated_graph_triggers_lb1_fallback(self):
        """On a graph with no edges, one seed covers only 1/n of the RR sets,
        so the coverage condition can never fire and PRIMA must fall back to
        LB = 1 — and still return a valid seed set."""
        graph = isolated_nodes(16)
        result = prima(graph, [1], rng=np.random.default_rng(0))
        assert len(result.seeds) == 1
        assert result.lower_bounds == (1.0,)
        assert result.num_rr_sets > 0

    def test_fallback_covers_all_remaining_budgets(self):
        graph = isolated_nodes(16)
        result = prima(graph, [2, 1], rng=np.random.default_rng(0))
        assert len(result.seeds) == 2
        # both budgets resolved through the fallback
        assert result.lower_bounds == (1.0, 1.0)

    def test_mixed_success_then_fallback_is_consistent(self):
        """A strongly connected tiny graph lets big budgets pass the
        coverage check; the result stays budget-consistent either way."""
        graph = line_graph(32, 1.0)
        result = prima(graph, [8, 2], rng=np.random.default_rng(1))
        assert len(result.seeds) == 8
        assert len(result.lower_bounds) == 2


class TestDegenerateGraphs:
    def test_two_node_graph(self):
        graph = InfluenceGraph(2, [(0, 1, 1.0)])
        result = prima(graph, [1], rng=np.random.default_rng(0))
        assert result.seeds == (0,)  # node 0 covers both RR-set roots

    def test_single_node_graph_selects_the_node(self):
        # Regression: this used to short-circuit to an empty seed set even
        # with budget >= 1; the only node must be selected.
        graph = InfluenceGraph(1, [])
        result = prima(graph, [1], rng=np.random.default_rng(0))
        assert result.seeds == (0,)
        assert result.num_rr_sets > 0
        assert result.coverage_fraction == 1.0

    def test_search_phase_count_recorded(self, small_graph):
        result = prima(small_graph, [10], rng=np.random.default_rng(2))
        assert result.num_rr_sets_search > 0
        # the final from-scratch collection is reported separately
        assert result.num_rr_sets > 0
