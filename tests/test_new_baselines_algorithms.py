"""Tests for marginal-greedy, MC greedy IM, SSA, and the competitive
(submodular) valuation extension."""

import numpy as np
import pytest

from repro.baselines.marginal_greedy import marginal_greedy
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.ic import estimate_spread
from repro.diffusion.uic import simulate_uic
from repro.diffusion.welfare import estimate_welfare
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import line_graph, random_wc_graph, star_graph
from repro.rrset.greedy_mc import greedy_mc
from repro.rrset.imm import imm
from repro.rrset.ssa import ssa
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import (
    ConcaveOverAdditiveValuation,
    TableValuation,
    is_monotone,
    is_submodular,
    is_supermodular,
)


class TestMarginalGreedy:
    @pytest.fixture
    def model(self) -> UtilityModel:
        return UtilityModel(
            TableValuation(2, {0b01: 4.0, 0b10: 5.0, 0b11: 10.0}),
            AdditivePrice([3.0, 4.0]),
            ZeroNoise(2),
        )

    def test_respects_budgets(self, model):
        graph = line_graph(6, 0.8)
        result = marginal_greedy(graph, model, [2, 1], num_samples=30)
        assert result.allocation.respects_budgets([2, 1])
        assert len(result.allocation.seeds_of_item(0)) == 2
        assert len(result.allocation.seeds_of_item(1)) == 1

    def test_picks_influential_node_on_star(self, model):
        graph = star_graph(10, probability=1.0)
        result = marginal_greedy(graph, model, [1, 1], num_samples=20)
        # the hub dominates every marginal: both items go there
        assert result.allocation.seeds_of_item(0) == {0}
        assert result.allocation.seeds_of_item(1) == {0}

    def test_budget_mismatch_rejected(self, model):
        with pytest.raises(ValueError):
            marginal_greedy(line_graph(3, 1.0), model, [1], num_samples=5)

    def test_candidate_shortlist(self, model):
        graph = line_graph(8, 1.0)
        result = marginal_greedy(
            graph, model, [1, 1], candidate_nodes=[3, 4], num_samples=20
        )
        assert result.allocation.seed_nodes() <= {3, 4}

    def test_evaluation_count_tracked(self, model):
        graph = line_graph(5, 0.5)
        result = marginal_greedy(graph, model, [1, 1], num_samples=10)
        # initial pass: 5 nodes x 2 items, plus lazy re-evals + final
        assert result.num_evaluations >= 11

    def test_comparable_to_bundlegrd_on_small_graph(self, model):
        """The expensive baseline should not beat bundleGRD meaningfully."""
        graph = random_wc_graph(120, 5, seed=6)
        shortlist = list(range(0, 120, 4))
        mg = marginal_greedy(
            graph, model, [3, 3], candidate_nodes=shortlist, num_samples=40
        )
        bg = bundle_grd(graph, [3, 3], rng=np.random.default_rng(0))
        bg_welfare = estimate_welfare(
            graph, model, bg.allocation, 200, np.random.default_rng(1)
        ).mean
        mg_welfare = estimate_welfare(
            graph, model, mg.allocation, 200, np.random.default_rng(1)
        ).mean
        assert bg_welfare >= 0.75 * mg_welfare


class TestGreedyMC:
    def test_star_hub_first(self):
        graph = star_graph(20, probability=0.7)
        result = greedy_mc(graph, 2, num_samples=50)
        assert result.seeds[0] == 0

    def test_seed_count_and_uniqueness(self, small_graph):
        result = greedy_mc(
            small_graph, 5, num_samples=30,
            candidate_nodes=list(range(0, 300, 10)),
        )
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_zero_budget(self, small_graph):
        result = greedy_mc(small_graph, 0)
        assert result.seeds == ()

    def test_negative_budget_rejected(self, small_graph):
        with pytest.raises(ValueError):
            greedy_mc(small_graph, -2)

    def test_quality_matches_imm(self):
        """Cross-validation: CELF MC greedy and IMM agree on seed quality.

        The greedy searches all nodes (degree shortlists mislead on this
        topology: influence flows new -> old, so high-spread nodes are not
        the high-out-degree ones).
        """
        graph = random_wc_graph(400, 6, seed=8)
        mc = greedy_mc(graph, 5, num_samples=40)
        ris = imm(graph, 5, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        spread_mc = estimate_spread(graph, mc.seeds, 300, rng)
        spread_ris = estimate_spread(graph, ris.seeds, 300, rng)
        assert spread_mc >= 0.8 * spread_ris


class TestSSA:
    def test_star_hub(self):
        graph = star_graph(30, probability=0.6)
        result = ssa(graph, 1, rng=np.random.default_rng(0))
        assert result.seeds == (0,)
        assert result.rounds >= 1

    def test_validation_close_to_estimate_on_stop(self, medium_graph):
        result = ssa(medium_graph, 10, rng=np.random.default_rng(1))
        assert result.validation_estimate >= (1 - 0.25) * result.influence_estimate

    def test_quality_comparable_to_imm(self, medium_graph):
        ssa_result = ssa(medium_graph, 10, rng=np.random.default_rng(2))
        imm_result = imm(medium_graph, 10, rng=np.random.default_rng(2))
        rng = np.random.default_rng(3)
        spread_ssa = estimate_spread(medium_graph, ssa_result.seeds, 250, rng)
        spread_imm = estimate_spread(medium_graph, imm_result.seeds, 250, rng)
        assert spread_ssa >= 0.8 * spread_imm

    def test_often_cheaper_than_imm(self, medium_graph):
        """SSA's selling point: early stopping below IMM's worst case."""
        ssa_result = ssa(medium_graph, 10, rng=np.random.default_rng(4))
        imm_result = imm(medium_graph, 10, rng=np.random.default_rng(4))
        assert ssa_result.num_rr_sets < imm_result.num_rr_sets

    def test_no_prefix_guarantee_machinery(self, medium_graph):
        """SSA certifies only its own budget: unlike PRIMA there is no
        budget-vector interface — the structural reason bundleGRD needs
        PRIMA.  (Prefixes may happen to be good; nothing certifies them.)"""
        result = ssa(medium_graph, 20, rng=np.random.default_rng(5))
        assert len(result.seeds) == 20
        assert not hasattr(result, "seeds_for_budget")

    def test_zero_budget(self, small_graph):
        assert ssa(small_graph, 0).seeds == ()


class TestCompetitiveValuation:
    def test_monotone_and_submodular(self):
        v = ConcaveOverAdditiveValuation([2.0, 3.0, 4.0], exponent=0.5)
        assert is_monotone(v)
        assert is_submodular(v)
        assert not is_supermodular(v)

    def test_exponent_one_is_additive(self):
        v = ConcaveOverAdditiveValuation([2.0, 3.0], exponent=1.0)
        assert v.value(0b11) == pytest.approx(5.0)
        assert is_supermodular(v)  # additive = modular

    def test_validation(self):
        with pytest.raises(ValueError):
            ConcaveOverAdditiveValuation([-1.0])
        with pytest.raises(ValueError):
            ConcaveOverAdditiveValuation([1.0], exponent=0.0)
        with pytest.raises(ValueError):
            ConcaveOverAdditiveValuation([1.0], scale=-1.0)

    def test_competition_adopts_single_item(self):
        """Substitutes: each item is worth its price alone, but the second
        item's marginal is below its price — the user adopts exactly one."""
        # V({i}) = 3, V({i,j}) = sqrt(18) ≈ 4.24; price 2 each.
        v = ConcaveOverAdditiveValuation([9.0, 9.0], exponent=0.5)
        model = UtilityModel(v, AdditivePrice([2.0, 2.0]), ZeroNoise(2))
        assert model.expected_utility(0b01) == pytest.approx(1.0)
        assert model.expected_utility(0b11) < model.expected_utility(0b01)
        graph = InfluenceGraph(1, [])
        result = simulate_uic(
            graph, model, [(0, 0), (0, 1)], np.random.default_rng(0)
        )
        adopted = result.adopted[0]
        assert adopted in (0b01, 0b10)  # exactly one of the substitutes

    def test_competitive_diffusion_runs_end_to_end(self):
        v = ConcaveOverAdditiveValuation([9.0, 9.0, 9.0], exponent=0.5)
        model = UtilityModel(
            v, AdditivePrice([2.0, 2.0, 2.0]), ZeroNoise(3)
        )
        graph = random_wc_graph(200, 6, seed=9)
        alloc = [(n, i) for n in range(6) for i in range(3)]
        est = estimate_welfare(
            graph, model, alloc, 50, np.random.default_rng(1)
        )
        assert est.mean > 0.0
