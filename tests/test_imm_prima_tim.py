"""Unit and statistical tests for IMM, PRIMA and TIM."""

import numpy as np
import pytest

from repro.diffusion.ic import estimate_spread
from repro.graph.generators import star_graph
from repro.rrset.bounds import adjusted_ell, ell_prime_for
from repro.rrset.imm import imm, imm_seed_pool
from repro.rrset.prima import prima
from repro.rrset.tim import tim


class TestIMM:
    def test_star_graph_hub_first(self):
        g = star_graph(50, probability=0.5, outward=True)
        result = imm(g, 1, rng=np.random.default_rng(0))
        assert result.seeds == (0,)

    def test_seed_count(self, medium_graph):
        result = imm(medium_graph, 15, rng=np.random.default_rng(1))
        assert len(result.seeds) == 15
        assert len(set(result.seeds)) == 15

    def test_quality_vs_random(self, medium_graph):
        result = imm(medium_graph, 10, rng=np.random.default_rng(2))
        rng = np.random.default_rng(3)
        spread_imm = estimate_spread(medium_graph, result.seeds, 300, rng)
        random_seeds = np.random.default_rng(4).choice(
            medium_graph.num_nodes, size=10, replace=False
        )
        spread_rand = estimate_spread(medium_graph, random_seeds, 300, rng)
        assert spread_imm > 1.5 * spread_rand

    def test_zero_budget(self, small_graph):
        result = imm(small_graph, 0, rng=np.random.default_rng(0))
        assert result.seeds == ()
        assert result.num_rr_sets == 0

    def test_seed_pool(self, small_graph):
        pool = imm_seed_pool(small_graph, 12, rng=np.random.default_rng(5))
        assert len(pool) == 12


class TestPRIMA:
    def test_budgets_sorted_non_increasing(self, small_graph):
        result = prima(small_graph, [5, 20, 10], rng=np.random.default_rng(0))
        assert result.budgets == (20, 10, 5)
        assert len(result.seeds) == 20

    def test_seeds_for_budget_prefix(self, small_graph):
        result = prima(small_graph, [5, 20, 10], rng=np.random.default_rng(0))
        assert result.seeds_for_budget(5) == result.seeds[:5]
        with pytest.raises(ValueError):
            result.seeds_for_budget(100)

    def test_empty_budget_vector_rejected(self, small_graph):
        with pytest.raises(ValueError):
            prima(small_graph, [])

    def test_negative_budget_rejected(self, small_graph):
        with pytest.raises(ValueError):
            prima(small_graph, [5, -1])

    def test_budget_exceeding_n_is_capped(self, small_graph):
        result = prima(
            small_graph, [small_graph.num_nodes + 50], rng=np.random.default_rng(0)
        )
        assert len(result.seeds) == small_graph.num_nodes

    def test_zero_budget_degenerate(self, small_graph):
        result = prima(small_graph, [0], rng=np.random.default_rng(0))
        assert result.seeds == ()

    def test_prefix_preserving_quality(self, medium_graph):
        """Definition 1, statistically: each prefix's spread is within a
        (1 - 1/e - eps) factor of a dedicated IMM run's spread."""
        budgets = [40, 15, 5]
        result = prima(
            medium_graph, budgets, epsilon=0.5, rng=np.random.default_rng(7)
        )
        rng = np.random.default_rng(8)
        for k in budgets:
            prefix_spread = estimate_spread(
                medium_graph, result.seeds_for_budget(k), 250, rng
            )
            dedicated = imm(
                medium_graph, k, epsilon=0.5, rng=np.random.default_rng(9)
            )
            dedicated_spread = estimate_spread(
                medium_graph, dedicated.seeds, 250, rng
            )
            # dedicated is itself only (1-1/e-eps)-approximate; allow the
            # prefix to be modestly below it, never catastrophically.
            assert prefix_spread >= 0.8 * dedicated_spread

    def test_single_budget_matches_imm_exactly(self, small_graph):
        """PRIMA with |b|=1 *is* IMM: same RNG stream => same seeds/counts."""
        ell_p = ell_prime_for(adjusted_ell(1.0, small_graph.num_nodes),
                              small_graph.num_nodes, 1)
        p = prima(small_graph, [10], epsilon=0.5, ell=1.0,
                  rng=np.random.default_rng(42))
        i = imm(small_graph, 10, epsilon=0.5, ell=1.0,
                rng=np.random.default_rng(42), ell_prime=ell_p)
        assert p.seeds == i.seeds
        assert p.num_rr_sets == i.num_rr_sets

    def test_duplicate_budgets(self, small_graph):
        result = prima(small_graph, [10, 10, 10], rng=np.random.default_rng(0))
        assert len(result.seeds) == 10

    def test_deterministic_given_rng(self, small_graph):
        a = prima(small_graph, [8, 4], rng=np.random.default_rng(3))
        b = prima(small_graph, [8, 4], rng=np.random.default_rng(3))
        assert a.seeds == b.seeds
        assert a.num_rr_sets == b.num_rr_sets

    def test_lower_bounds_recorded(self, small_graph):
        result = prima(small_graph, [10, 5], rng=np.random.default_rng(1))
        assert len(result.lower_bounds) == 2
        assert all(lb >= 1.0 for lb in result.lower_bounds)


class TestTIM:
    def test_seed_quality(self, medium_graph):
        result = tim(medium_graph, 10, rng=np.random.default_rng(0))
        imm_result = imm(medium_graph, 10, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        spread_tim = estimate_spread(medium_graph, result.seeds, 250, rng)
        spread_imm = estimate_spread(medium_graph, imm_result.seeds, 250, rng)
        assert spread_tim >= 0.85 * spread_imm

    def test_generates_more_rr_sets_than_imm(self, medium_graph):
        """The Fig. 6 phenomenon: TIM's sample size dwarfs IMM's."""
        t = tim(medium_graph, 10, rng=np.random.default_rng(2))
        i = imm(medium_graph, 10, rng=np.random.default_rng(2))
        assert t.num_rr_sets > 5 * i.num_rr_sets

    def test_zero_budget(self, small_graph):
        result = tim(small_graph, 0, rng=np.random.default_rng(0))
        assert result.seeds == ()

    def test_negative_budget_rejected(self, small_graph):
        with pytest.raises(ValueError):
            tim(small_graph, -1)

    def test_kpt_positive(self, small_graph):
        result = tim(small_graph, 5, rng=np.random.default_rng(3))
        assert result.kpt >= 1.0
