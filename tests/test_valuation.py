"""Unit tests for valuation functions, including Lemmas 10 and 11."""

import pytest

from repro.utility.itemsets import full_mask, iter_subsets
from repro.utility.valuation import (
    AdditiveValuation,
    ConeValuation,
    LevelwiseValuation,
    TableValuation,
    is_monotone,
    is_submodular,
    is_supermodular,
)


class TestAdditiveValuation:
    def test_values(self):
        v = AdditiveValuation([1.0, 2.0, 3.0])
        assert v.value(0) == 0.0
        assert v.value(0b101) == pytest.approx(4.0)
        assert v.value(0b111) == pytest.approx(6.0)

    def test_modular(self):
        v = AdditiveValuation([1.0, 2.0, 3.0])
        assert is_supermodular(v)
        assert is_submodular(v)
        assert is_monotone(v)

    def test_marginal(self):
        v = AdditiveValuation([1.0, 2.0])
        assert v.marginal(0b10, 0b01) == pytest.approx(2.0)


class TestTableValuation:
    def test_lookup(self):
        v = TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0})
        assert v.value(0) == 0.0
        assert v.value(0b11) == 8.0

    def test_iterable_keys(self):
        v = TableValuation(2, {(0,): 3.0, (1,): 4.0, (0, 1): 8.0})
        assert v.value(0b11) == 8.0

    def test_missing_mask_rejected(self):
        with pytest.raises(ValueError, match="incomplete"):
            TableValuation(2, {0b01: 3.0})

    def test_monotonicity_violation_rejected(self):
        with pytest.raises(ValueError, match="monotone"):
            TableValuation(2, {0b01: 5.0, 0b10: 4.0, 0b11: 4.5})

    def test_supermodularity_violation_rejected(self):
        # marginal of item 1 drops from 3 to 1 given item 2 — submodular.
        with pytest.raises(ValueError, match="supermodular"):
            TableValuation(2, {0b01: 3.0, 0b10: 3.0, 0b11: 4.0})

    def test_validation_can_be_relaxed(self):
        v = TableValuation(
            2, {0b01: 3.0, 0b10: 3.0, 0b11: 4.0}, validate="monotone"
        )
        assert v.value(0b11) == 4.0
        v2 = TableValuation(
            2, {0b01: 5.0, 0b10: 4.0, 0b11: 4.5}, validate=None
        )
        assert v2.value(0b11) == 4.5

    def test_unknown_validate_mode(self):
        with pytest.raises(ValueError):
            TableValuation(1, {0b1: 1.0}, validate="bogus")

    def test_table_materialization(self):
        v = TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0})
        table = v.table()
        assert len(table) == 4
        assert table[0b10] == 4.0


class TestConeValuation:
    def test_no_core_means_zero(self):
        v = ConeValuation([1.0, 1.0, 1.0], core_item=0)
        assert v.value(0b110) == 0.0

    def test_core_alone_utility(self):
        v = ConeValuation([2.0, 1.0, 1.0], core_item=0, core_utility=5.0)
        assert v.value(0b001) == pytest.approx(7.0)  # price 2 + utility 5

    def test_addon_utility(self):
        v = ConeValuation(
            [2.0, 1.0, 1.0], core_item=0, core_utility=5.0, addon_utility=2.0
        )
        # core + item1: 2+5 + 1+2 = 10
        assert v.value(0b011) == pytest.approx(10.0)

    def test_cone_shape_of_positive_utilities(self):
        prices = [2.0, 1.0, 1.5]
        v = ConeValuation(prices, core_item=1)
        for mask in iter_subsets(full_mask(3)):
            price = sum(prices[i] for i in range(3) if mask >> i & 1)
            utility = v.value(mask) - price
            if mask == 0:
                continue
            if mask >> 1 & 1:
                assert utility > 0
            else:
                assert utility < 0

    def test_monotone_and_supermodular(self):
        v = ConeValuation([2.0, 1.0, 1.0, 3.0], core_item=2)
        assert is_monotone(v)
        assert is_supermodular(v)

    def test_invalid_core(self):
        with pytest.raises(ValueError):
            ConeValuation([1.0], core_item=5)


class TestLevelwiseValuation:
    """Configuration 8's construction: Lemma 10 and Lemma 11."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lemma10_supermodular(self, seed):
        v = LevelwiseValuation([1.0, 2.0, 0.5, 3.0], seed=seed)
        assert is_supermodular(v)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_monotone(self, seed):
        v = LevelwiseValuation([1.0, 2.0, 0.5], seed=seed)
        assert is_monotone(v)

    def test_level1_values_respected(self):
        v = LevelwiseValuation([1.5, 2.5, 3.5], seed=7)
        assert v.value(0b001) == pytest.approx(1.5)
        assert v.value(0b010) == pytest.approx(2.5)
        assert v.value(0b100) == pytest.approx(3.5)

    def test_lemma11_well_defined(self):
        # V(A_t) must not depend on which element realizes the max: check
        # internal consistency by recomputing from the stored marginals —
        # supermodularity plus strict growth already imply values increase
        # with level; here we check strict monotone growth per added item.
        v = LevelwiseValuation([1.0, 1.0, 1.0, 1.0], seed=3)
        for mask in iter_subsets(full_mask(4)):
            for item in range(4):
                if mask >> item & 1:
                    continue
                bigger = mask | 1 << item
                if mask == 0:
                    continue
                # boosts are >= 1.0, so the marginal must be strictly positive
                assert v.value(bigger) > v.value(mask)

    def test_deterministic_given_seed(self):
        a = LevelwiseValuation([1.0, 2.0], seed=9)
        b = LevelwiseValuation([1.0, 2.0], seed=9)
        assert a.table() == b.table()

    def test_too_many_items_rejected(self):
        with pytest.raises(ValueError):
            LevelwiseValuation([1.0] * 17)

    def test_bad_boost_range(self):
        with pytest.raises(ValueError):
            LevelwiseValuation([1.0, 2.0], boost_range=(5.0, 1.0))


class TestPropertyCheckers:
    def test_supermodular_detects_violation(self):
        v = TableValuation(
            2, {0b01: 3.0, 0b10: 3.0, 0b11: 4.0}, validate=None
        )
        assert not is_supermodular(v)
        assert is_submodular(v)

    def test_monotone_detects_violation(self):
        v = TableValuation(
            2, {0b01: 5.0, 0b10: 4.0, 0b11: 4.5}, validate=None
        )
        assert not is_monotone(v)
