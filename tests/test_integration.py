"""Cross-module integration tests: the full pipeline at small scale."""

import numpy as np
import pytest

from repro import WelMaxInstance, bundle_grd, estimate_welfare
from repro.baselines import bundle_disjoint, item_disjoint
from repro.experiments.configs import multi_item_config, two_item_config
from repro.graph.generators import random_wc_graph
from repro.utility.learned import real_utility_model


class TestEndToEndTwoItems:
    @pytest.fixture(scope="class")
    def graph(self):
        return random_wc_graph(800, 8, seed=123)

    def test_bundlegrd_dominates_baselines_config1(self, graph):
        config = two_item_config(1)
        budgets = [15, 15]
        def rng_eval():
            return np.random.default_rng(9)

        bg = bundle_grd(graph, budgets, rng=np.random.default_rng(1))
        w_bg = estimate_welfare(
            graph, config.model, bg.allocation, 150, rng_eval()
        ).mean

        idj = item_disjoint(graph, budgets, rng=np.random.default_rng(1))
        w_id = estimate_welfare(
            graph, config.model, idj.allocation, 150, rng_eval()
        ).mean

        bd = bundle_disjoint(
            graph, config.model, budgets, rng=np.random.default_rng(1)
        )
        w_bd = estimate_welfare(
            graph, config.model, bd.allocation, 150, rng_eval()
        ).mean

        assert w_bg > w_id
        assert w_bg > w_bd

    def test_config3_bundle_disj_matches_bundlegrd(self, graph):
        """§4.3.2: in configs 3/4 bundleGRD and bundle-disj coincide
        (uniform budgets => identical nested allocations)."""
        config = two_item_config(3)
        budgets = [12, 12]
        bg = bundle_grd(graph, budgets, rng=np.random.default_rng(2))
        bd = bundle_disjoint(
            graph, config.model, budgets, rng=np.random.default_rng(2)
        )
        assert bd.allocation.seeds_of_item(1) == bd.allocation.seeds_of_item(0)
        w_bg = estimate_welfare(
            graph, config.model, bg.allocation, 150, np.random.default_rng(3)
        ).mean
        w_bd = estimate_welfare(
            graph, config.model, bd.allocation, 150, np.random.default_rng(3)
        ).mean
        assert w_bd == pytest.approx(w_bg, rel=0.25)

    def test_welfare_grows_with_budget(self, graph):
        """More budget, more welfare (Fig. 4's x-axis trend)."""
        config = two_item_config(1)
        welfares = []
        for k in (5, 20, 40):
            result = bundle_grd(graph, [k, k], rng=np.random.default_rng(4))
            welfares.append(
                estimate_welfare(
                    graph, config.model, result.allocation, 120,
                    np.random.default_rng(5),
                ).mean
            )
        assert welfares[0] < welfares[1] < welfares[2]


class TestEndToEndMultiItem:
    def test_cone_min_starves_welfare(self):
        """Fig. 7's config 6 vs 7 contrast: a min-budget core item caps
        welfare well below the max-budget-core variant."""
        graph = random_wc_graph(800, 8, seed=321)
        results = {}
        for config_id in (6, 7):
            config, budgets = multi_item_config(
                config_id, num_items=5, total_budget=60
            )
            alloc = bundle_grd(
                graph, budgets, rng=np.random.default_rng(1)
            ).allocation
            results[config_id] = estimate_welfare(
                graph, config.model, alloc, 100, np.random.default_rng(2)
            ).mean
        assert results[6] > 2.0 * results[7]

    def test_real_param_pipeline(self):
        """Learned Table 5 model through WelMaxInstance + bundleGRD."""
        graph = random_wc_graph(600, 8, seed=77)
        model = real_utility_model()
        instance = WelMaxInstance.create(graph, model, [30, 30, 20, 10, 10])
        result = bundle_grd(
            graph, instance.budgets, rng=np.random.default_rng(0)
        )
        instance.check(result.allocation)
        welfare = instance.welfare(
            result.allocation, num_samples=80, rng=np.random.default_rng(1)
        )
        assert welfare.mean > 0.0

    def test_item_disjoint_zero_welfare_on_real_params(self):
        """§4.3.4.1: with all singletons negative, item-disj earns nothing."""
        graph = random_wc_graph(400, 8, seed=88)
        model = real_utility_model()
        result = item_disjoint(
            graph, [10, 10, 8, 4, 4], rng=np.random.default_rng(0)
        )
        welfare = estimate_welfare(
            graph, model, result.allocation, 60, np.random.default_rng(1)
        )
        # One item per node can never assemble a positive bundle at seeds;
        # propagation can occasionally combine items downstream, so allow a
        # tiny positive residue.
        assert welfare.mean < 50.0

    def test_public_api_surface(self):
        """Everything advertised in repro.__all__ is importable and real."""
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
