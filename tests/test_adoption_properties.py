"""Property-based tests of the adoption rule and UIC simulator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.adoption import adopt
from repro.diffusion.uic import simulate_uic
from repro.graph.digraph import InfluenceGraph
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation

utilities = st.lists(
    st.floats(-5.0, 5.0, allow_nan=False), min_size=8, max_size=8
).map(lambda vals: np.array([0.0] + vals[1:], dtype=np.float64))


@given(utilities, st.integers(0, 7))
@settings(max_examples=150, deadline=None)
def test_adoption_is_idempotent(table, desire):
    """Adopting again with the same desire set changes nothing."""
    first = adopt(table, desire, 0)
    second = adopt(table, desire, first)
    assert second == first


@given(utilities, st.integers(0, 7), st.integers(0, 7))
@settings(max_examples=150, deadline=None)
def test_adoption_is_progressive(table, desire_small, extra):
    """Growing the desire set never removes adopted items."""
    desire_large = desire_small | extra
    first = adopt(table, desire_small, 0)
    second = adopt(table, desire_large, first)
    assert first & ~second == 0  # first ⊆ second


@given(utilities, st.integers(0, 7))
@settings(max_examples=150, deadline=None)
def test_adopted_utility_non_negative(table, desire):
    """The adopted set's utility is always ≥ 0 (U(∅) = 0 is feasible)."""
    adopted = adopt(table, desire, 0)
    assert table[adopted] >= -1e-12


@given(utilities, st.integers(0, 7))
@settings(max_examples=150, deadline=None)
def test_adopted_within_desire(table, desire):
    adopted = adopt(table, desire, 0)
    assert adopted & ~desire == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10
    ),
    st.lists(st.tuples(st.integers(0, 5), st.integers(0, 2)), max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_uic_deterministic_given_worlds(arcs, allocation):
    """With pinned noise and edge worlds, two runs agree exactly."""
    graph = InfluenceGraph(6, ((u, v, 0.5) for u, v in arcs))
    model = UtilityModel(
        TableValuation(
            3,
            {1: 1.0, 2: 1.0, 4: 1.0, 3: 2.5, 5: 2.5, 6: 2.5, 7: 4.5},
        ),
        AdditivePrice([1.2, 1.2, 1.2]),
        ZeroNoise(3),
    )
    from repro.diffusion.worlds import sample_live_edge_graph

    world = sample_live_edge_graph(graph, np.random.default_rng(42))
    a = simulate_uic(
        graph, model, allocation, np.random.default_rng(0), edge_world=world
    )
    b = simulate_uic(
        graph, model, allocation, np.random.default_rng(99), edge_world=world
    )
    assert a.adopted == b.adopted
    assert a.welfare == b.welfare


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 1)), max_size=8))
@settings(max_examples=60, deadline=None)
def test_uic_desire_superset_of_adoption(allocation):
    graph = InfluenceGraph(6, [(i, i + 1, 0.7) for i in range(5)])
    model = UtilityModel(
        TableValuation(2, {1: 2.0, 2: 0.5, 3: 4.0}),
        AdditivePrice([1.0, 1.0]),
        ZeroNoise(2),
    )
    result = simulate_uic(graph, model, allocation, np.random.default_rng(1))
    for node, adopted in result.adopted.items():
        assert adopted & ~result.desire.get(node, 0) == 0
