"""Per-world validation of Lemma 7: the arbitrary-allocation upper bound.

For any allocation 𝒮 and fixed noise world, the realized welfare in an edge
world ``W^E`` satisfies

    ρ_W(𝒮) ≤ Σ_i |Γ(S_{a_i}, W^E)| · Δ_i

where ``S_{a_i}`` is the seed set of block ``B_i``'s anchor item and ``Γ`` is
live-edge reachability.  The proof's relaxations (drop negative cumulative
marginals, cap partial-block gains at Δ_i over anchor adopters) all hold per
world, so the inequality must hold exactly in simulation — we check it for
randomized allocations, utility tables and graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import Allocation
from repro.diffusion.uic import simulate_uic
from repro.diffusion.worlds import reachable_set, sample_live_edge_graph
from repro.graph.generators import random_wc_graph
from repro.utility.blocks import generate_blocks
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


def _model_from_values(values: dict) -> UtilityModel:
    return UtilityModel(
        TableValuation(3, values, validate=None),
        AdditivePrice([0.0, 0.0, 0.0]),
        ZeroNoise(3),
    )


# A pool of supermodular-utility tables (as V - P baked into values); each is
# supermodular because marginals grow with set size.
TABLES = (
    {  # Example 2 of the paper
        0b001: -1.0, 0b010: -1.0, 0b100: -1.0,
        0b011: -1.0, 0b101: 1.0, 0b110: 1.0, 0b111: 4.0,
    },
    {  # one strong item, two weak complements
        0b001: 2.0, 0b010: -3.0, 0b100: -3.0,
        0b011: 1.0, 0b101: 0.5, 0b110: -2.0, 0b111: 5.0,
    },
    {  # all individually positive, synergistic
        0b001: 1.0, 0b010: 0.5, 0b100: 0.25,
        0b011: 2.5, 0b101: 2.25, 0b110: 1.75, 0b111: 5.0,
    },
)


@given(
    table_idx=st.integers(0, len(TABLES) - 1),
    graph_seed=st.integers(0, 5),
    world_seed=st.integers(0, 5),
    pairs=st.lists(
        st.tuples(st.integers(0, 79), st.integers(0, 2)),
        min_size=0,
        max_size=25,
    ),
)
@settings(max_examples=60, deadline=None)
def test_lemma7_upper_bound_per_world(table_idx, graph_seed, world_seed, pairs):
    model = _model_from_values(TABLES[table_idx])
    table = model.utility_table(None)
    istar = model.best_itemset(table)
    if istar == 0:
        return
    budgets = [30, 15, 6]
    partition = generate_blocks(table, budgets, istar)

    graph = random_wc_graph(80, 5, seed=graph_seed)
    allocation = Allocation(pairs, num_items=3)
    # enforce the budget constraint by truncating per item
    kept = []
    counts = [0, 0, 0]
    for node, item in sorted(allocation.pairs):
        if counts[item] < budgets[item]:
            counts[item] += 1
            kept.append((node, item))
    allocation = Allocation(kept, num_items=3)

    rng = np.random.default_rng(world_seed + 1000)
    world = sample_live_edge_graph(graph, rng)
    result = simulate_uic(graph, model, allocation, rng, edge_world=world)

    bound = 0.0
    for anchor_item, delta in zip(partition.anchor_items, partition.deltas):
        anchor_seeds = allocation.seeds_of_item(anchor_item)
        reached = reachable_set(world, anchor_seeds) if anchor_seeds else set()
        bound += len(reached) * delta
    assert result.welfare <= bound + 1e-9


def test_lemma7_bound_tight_for_greedy():
    """For the greedy (nested-prefix) allocation the bound is attained with
    equality when anchors' seed sets equal the effective seed sets."""
    model = _model_from_values(TABLES[0])
    table = model.utility_table(None)
    partition = generate_blocks(table, [30, 20, 10], 0b111)
    graph = random_wc_graph(100, 5, seed=3)
    order = list(range(40))
    pairs = [
        (node, item)
        for item, budget in enumerate([30, 20, 10])
        for node in order[:budget]
    ]
    allocation = Allocation(pairs, num_items=3)
    rng = np.random.default_rng(7)
    world = sample_live_edge_graph(graph, rng)
    result = simulate_uic(graph, model, allocation, rng, edge_world=world)
    bound = 0.0
    for anchor_item, delta in zip(partition.anchor_items, partition.deltas):
        anchor_seeds = allocation.seeds_of_item(anchor_item)
        bound += len(reachable_set(world, anchor_seeds)) * delta
    # both anchors are item i3 (budget 10): effective seeds = anchor seeds,
    # so Lemma 5's equality coincides with Lemma 7's bound here.
    assert result.welfare == pytest.approx(bound, abs=1e-9)
