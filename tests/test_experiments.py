"""Tests for the experiment runners (tiny scales) and their paper shapes."""

import pytest

from repro.experiments._two_item import run_two_item_experiment, runs_as_rows
from repro.experiments.fig4_welfare import run_fig4, welfare_series
from repro.experiments.fig5_runtime import run_fig5, runtime_series
from repro.experiments.fig6_rrsets import run_fig6, rrset_series
from repro.experiments.fig7_multi_item import run_fig7
from repro.experiments.fig8_real import (
    run_budget_skew,
    run_items_runtime,
    run_real_param_sweep,
)
from repro.experiments.fig9_bdhs import result_rows, run_fig9_bdhs
from repro.experiments.fig9_scalability import run_fig9_scalability
from repro.experiments.runner import format_table, stopwatch
from repro.experiments.table6_rrsets import run_table6
from repro.graph.generators import random_wc_graph


@pytest.fixture(scope="module")
def tiny_graph():
    return random_wc_graph(400, 7, seed=55)


class TestRunnerPlumbing:
    def test_stopwatch(self):
        sink = {}
        with stopwatch(sink):
            sum(range(1000))
        assert sink["seconds"] >= 0.0

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.0}]
        text = format_table(rows)
        assert "a" in text
        assert "b" in text
        assert "10" in text

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"


class TestTwoItemExperiment:
    def test_row_count_and_fields(self, tiny_graph):
        runs = run_two_item_experiment(
            1,
            graph=tiny_graph,
            budget_vectors=[(5, 5)],
            algorithms=("bundleGRD", "item-disj"),
            num_samples=20,
        )
        assert len(runs) == 2
        rows = runs_as_rows(runs)
        assert rows[0]["algorithm"] == "bundleGRD"
        assert rows[0]["b1"] == 5

    def test_unknown_algorithm_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            run_two_item_experiment(
                1, graph=tiny_graph, algorithms=("magic",)
            )

    def test_fig4_bundlegrd_beats_item_disj(self, tiny_graph):
        """The headline Fig. 4 shape at tiny scale."""
        runs = run_fig4(
            1,
            graph=tiny_graph,
            budget_vectors=[(10, 10)],
            algorithms=("bundleGRD", "item-disj"),
            num_samples=80,
        )
        series = welfare_series(runs)
        assert series["bundleGRD"][0] > series["item-disj"][0]

    def test_fig5_comic_only_on_allowed_networks(self):
        panels = run_fig5(
            networks=("flixster", "twitter"),
            scale=0.01,
            budget_vectors=[(4, 4)],
            num_samples=5,
            comic_networks=("flixster",),
        )
        flixster_algos = {r.algorithm for r in panels["flixster"]}
        twitter_algos = {r.algorithm for r in panels["twitter"]}
        assert "RR-SIM+" in flixster_algos
        assert "RR-SIM+" not in twitter_algos
        assert "bundleGRD" in twitter_algos

    def test_fig5_comic_algorithms_slower(self):
        panels = run_fig5(
            networks=("flixster",),
            scale=0.02,
            budget_vectors=[(5, 5)],
            num_samples=5,
        )
        series = runtime_series(panels["flixster"])
        assert series["RR-CIM"][0] > series["bundleGRD"][0]

    def test_fig6_comic_generates_more_rr_sets(self):
        panels = run_fig6(
            networks=("flixster",), scale=0.02, budget_vectors=[(5, 5)]
        )
        series = rrset_series(panels["flixster"])
        assert series["RR-SIM+"][0] > 3 * series["bundleGRD"][0]


class TestMultiItemExperiment:
    @pytest.mark.parametrize("config_id", [5, 6, 7, 8])
    def test_fig7_shapes(self, tiny_graph, config_id):
        runs = run_fig7(
            config_id,
            graph=tiny_graph,
            total_budgets=(50,),
            num_samples=40,
        )
        by_algo = {r.algorithm: r for r in runs}
        assert set(by_algo) == {"bundleGRD", "item-disj", "bundle-disj"}
        # bundleGRD is never (meaningfully) worse than item-disj
        assert by_algo["bundleGRD"].welfare >= 0.8 * by_algo["item-disj"].welfare

    def test_fig7_unknown_algorithm(self, tiny_graph):
        with pytest.raises(ValueError):
            run_fig7(5, graph=tiny_graph, algorithms=("nope",))


class TestFig8:
    def test_items_runtime_bundlegrd_flat(self, tiny_graph):
        runs = run_items_runtime(
            graph=tiny_graph, item_counts=(1, 4), per_item_budget=10
        )
        bg = [r.seconds for r in runs if r.algorithm == "bundleGRD"]
        bd = [r.seconds for r in runs if r.algorithm == "bundle-disj"]
        # bundle-disj at 4 items pays ~4 IMM calls; bundleGRD stays ~flat.
        assert bd[1] > 1.5 * bg[1]

    def test_real_param_sweep_fields(self, tiny_graph):
        runs = run_real_param_sweep(
            graph=tiny_graph, total_budgets=(50,), num_samples=20
        )
        algos = {r.algorithm for r in runs}
        assert algos == {"bundleGRD", "bundle-disj"}
        for r in runs:
            assert sum(r.budgets) == 50

    def test_budget_skew_rows(self, tiny_graph):
        runs = run_budget_skew(graph=tiny_graph, total_budget=50, num_samples=20)
        names = [r.distribution for r in runs]
        assert names == ["uniform", "large_skew", "moderate_skew"]


class TestFig9AndTable6:
    def test_bdhs_comparison_rows(self):
        result = run_fig9_bdhs(
            "orkut",
            scale=0.01,
            fractions=(0.2, 1.0),
            num_samples=10,
            num_step_worlds=5,
        )
        rows = result_rows(result)
        assert len(rows) == 2
        assert result.benchmark_step > 0
        assert result.benchmark_concave > 0
        # welfare grows with budget fraction (statistically, tiny slack)
        assert result.welfare[1] >= 0.5 * result.welfare[0]

    def test_fraction_to_match(self):
        result = run_fig9_bdhs(
            "orkut", scale=0.01, fractions=(0.5, 1.0),
            num_samples=10, num_step_worlds=5,
        )
        frac = result.fraction_to_match(0.0)
        assert frac == 0.5  # trivially matched by the first sweep point

    def test_scalability_runs(self):
        runs = run_fig9_scalability(
            scale=0.01, percentages=(0.5, 1.0), budget=5, num_samples=10
        )
        assert len(runs) == 4  # 2 settings x 2 percentages
        wc = [r for r in runs if r.setting == "wc"]
        assert wc[1].num_nodes > wc[0].num_nodes

    def test_table6_uniform_counts_equal(self, tiny_graph):
        rows = run_table6(graph=tiny_graph, total_budget=25)
        by_name = {r.distribution: r for r in rows}
        uniform = by_name["uniform"]
        assert uniform.bundle_grd == uniform.max_imm == uniform.imm_max
        # bundleGRD never needs more RR sets than the worst single-item IMM.
        for row in rows:
            assert row.bundle_grd <= max(row.max_imm, row.imm_max) * 1.05
