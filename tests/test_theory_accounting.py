"""Per-world validation of the block-accounting lemmas (Lemmas 4 and 5).

Lemma 4: under a greedy (nested-prefix) allocation, each seed adopts exactly
the prefix of full blocks before any partial block.

Lemma 5 (per edge world): the realized welfare of the greedy allocation in a
fixed possible world equals ``Σ_i |Γ(S^GrdE_{B_i}, W^E)| · Δ_i``, where
``S^GrdE_{B_i}`` are the top ``e_i`` seeds (``e_i`` the effective budget) and
``Γ`` is live-edge reachability.  We verify this exactly by simulating UIC on
pinned edge and noise worlds and evaluating the right-hand side directly.
"""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.diffusion.adoption import adopt
from repro.diffusion.uic import simulate_uic
from repro.diffusion.worlds import reachable_set, sample_live_edge_graph
from repro.graph.generators import random_wc_graph
from repro.utility.blocks import generate_blocks
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


def example2_model() -> UtilityModel:
    """A 3-item model realizing the paper's Example 2 utility table."""
    # U(i1)=U(i2)=U(i3)=U({i1,i2})=-1; U({i1,i3})=U({i2,i3})=1; U(all)=4.
    # Realize with zero prices and the values equal to the utilities...
    # but TableValuation requires V(∅)=0 and monotone is not needed here.
    values = {
        0b001: -1.0, 0b010: -1.0, 0b100: -1.0,
        0b011: -1.0, 0b101: 1.0, 0b110: 1.0,
        0b111: 4.0,
    }
    return UtilityModel(
        TableValuation(3, values, validate=None),
        AdditivePrice([0.0, 0.0, 0.0]),
        ZeroNoise(3),
    )


def greedy_allocation(order, budgets) -> Allocation:
    """bundleGRD's nested-prefix allocation for a given seed order."""
    pairs = [
        (node, item)
        for item, budget in enumerate(budgets)
        for node in order[:budget]
    ]
    return Allocation(pairs, num_items=len(budgets))


class TestLemma4SeedAdoption:
    def test_seed_with_all_blocks_adopts_istar(self):
        model = example2_model()
        table = model.utility_table(None)
        budgets = [30, 20, 10]
        generate_blocks(table, budgets, 0b111)
        # A seed holding every item adopts all full blocks = I*.
        adopted = adopt(table, 0b111, 0)
        assert adopted == 0b111

    def test_seed_with_partial_block_stops_at_prefix(self):
        model = example2_model()
        table = model.utility_table(None)
        # Blocks are ({i1,i3}, {i2}).  A seed holding {i1, i2} has a partial
        # first block (missing i3): it adopts nothing (Lemma 4 with i=1).
        adopted = adopt(table, 0b011, 0)
        assert adopted == 0

    def test_seed_with_first_block_only(self):
        model = example2_model()
        table = model.utility_table(None)
        # Holding exactly block B1 = {i1, i3}: adopts it (prefix of 1 block).
        adopted = adopt(table, 0b101, 0)
        assert adopted == 0b101


class TestLemma5WelfareAccounting:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_example2_accounting_random_worlds(self, seed):
        """ρ_W(greedy) == Σ |Γ(top e_i seeds)| · Δ_i, exactly, per world."""
        model = example2_model()
        table = model.utility_table(None)
        budgets = [30, 20, 10]
        graph = random_wc_graph(150, 5, seed=seed)
        partition = generate_blocks(table, budgets, 0b111)

        order = list(range(40))  # arbitrary seed order works for the lemma
        allocation = greedy_allocation(order, budgets)

        rng = np.random.default_rng(seed + 100)
        world = sample_live_edge_graph(graph, rng)
        result = simulate_uic(
            graph, model, allocation, rng, edge_world=world
        )

        expected = 0.0
        for eff_budget, delta in zip(
            partition.effective_budgets, partition.deltas
        ):
            effective_seeds = order[:eff_budget]
            expected += len(reachable_set(world, effective_seeds)) * delta
        assert result.welfare == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_accounting_with_nonuniform_blocks(self, seed):
        """Same identity on a different utility table and budget vector."""
        values = {
            0b001: 2.0, 0b010: -3.0, 0b100: -3.0,
            0b011: 1.0, 0b101: 0.5, 0b110: -2.0,
            0b111: 5.0,
        }
        model = UtilityModel(
            TableValuation(3, values, validate=None),
            AdditivePrice([0.0, 0.0, 0.0]),
            ZeroNoise(3),
        )
        table = model.utility_table(None)
        istar = model.best_itemset(table)
        assert istar == 0b111
        budgets = [25, 12, 6]
        partition = generate_blocks(table, budgets, istar)
        graph = random_wc_graph(120, 5, seed=seed + 50)
        order = list(range(30))
        allocation = greedy_allocation(order, budgets)
        rng = np.random.default_rng(seed + 7)
        world = sample_live_edge_graph(graph, rng)
        result = simulate_uic(graph, model, allocation, rng, edge_world=world)
        expected = sum(
            len(reachable_set(world, order[:eff])) * delta
            for eff, delta in zip(
                partition.effective_budgets, partition.deltas
            )
        )
        assert result.welfare == pytest.approx(expected, abs=1e-9)

    def test_items_outside_istar_never_adopted(self):
        """Fixing W^N prunes I \\ I* (§4.2.2's observation)."""
        values = {
            0b01: 2.0,
            0b10: -5.0,
            0b11: 1.0,  # adding item 2 always hurts
        }
        model = UtilityModel(
            TableValuation(2, values, validate=None),
            AdditivePrice([0.0, 0.0]),
            ZeroNoise(2),
        )
        table = model.utility_table(None)
        assert model.best_itemset(table) == 0b01
        graph = random_wc_graph(100, 5, seed=3)
        allocation = [(v, i) for v in range(10) for i in (0, 1)]
        rng = np.random.default_rng(4)
        result = simulate_uic(graph, model, allocation, rng)
        assert result.adopters_of(1) == set()
