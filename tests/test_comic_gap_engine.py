"""Tests for the batched width-aware KPT estimation + GAP-aware engine.

Covers the layers added on top of the PR-1 batched RR engine:

* vectorized per-set widths (``rr_set_widths``) against the per-set
  reference sum, including empty GAP sets;
* the batched GAP-aware sampler: determinism, root-coin empties, and
  statistical equivalence with the sequential ``_gap_rr_set`` BFS;
* the ``_GapSampler`` forward-world cursor: monotone across calls (the
  θ phase continues from the KPT phase's offset — bugfix pinned here);
* the coverage-fraction convention: empty RR sets stay in the θ
  denominator (unbiased adoption estimator);
* golden sequential RR-SIM+/RR-CIM runs (seed tuples + ``num_rr_sets``),
  mirroring the PRIMA goldens of ``test_rrset_engine.py``;
* batched KPT estimation for TIM agreeing with the sequential estimate;
* singleton-graph regressions: ``tim``/``imm``/``prima``/``ssa`` on a
  1-node graph with ``k >= 1`` must return ``(0,)``.
"""

import numpy as np
import pytest

from repro.baselines._comic_common import (
    _GapSampler,
    _gap_rr_set,
    comic_rr_selection,
)
from repro.baselines.rr_cim import rr_cim
from repro.baselines.rr_sim import rr_sim_plus
from repro.diffusion.comic import ComICModel
from repro.engine import EngineContext
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import (
    random_wc_graph,
    star_graph,
    watts_strogatz_wc_graph,
)
from repro.rrset.batch import (
    batch_generate_gap_rr_sets,
    batch_generate_rr_sets,
    rr_set_widths,
)
from repro.rrset.imm import imm
from repro.rrset.prima import prima
from repro.rrset.ssa import ssa
from repro.rrset.tim import tim
from repro.rrset.tim import _kpt_estimation

GAP = ComICModel(0.5, 0.84, 0.5, 0.84)

# Golden outputs of the *sequential* GAP path (per-set Python BFS) after the
# world-pairing continuation fix, captured on random_wc_graph(120,
# avg_degree=5, seed=7) with rng seed 11 and num_forward_worlds=3: the
# sequential backend is the equivalence oracle the batched sampler is
# validated against, so its streams must stay byte-identical.
GOLDEN_RRSIM_SELECTED = (99, 118, 62, 114)
GOLDEN_RRSIM_FIXED = (99, 62, 118)
GOLDEN_RRSIM_NUM_RR_SETS = 94960
GOLDEN_RRCIM_SELECTED = (99, 62, 118)
GOLDEN_RRCIM_FIXED = (99, 62, 118, 63)
GOLDEN_RRCIM_NUM_RR_SETS = 80377


def _golden_graph():
    return random_wc_graph(120, avg_degree=5, seed=7)


class TestRRSetWidths:
    def test_matches_per_set_reference(self):
        g = random_wc_graph(200, avg_degree=6, seed=1)
        members, lengths = batch_generate_rr_sets(
            g, np.random.default_rng(0), 150
        )
        widths = rr_set_widths(g, members, lengths)
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        for i in range(150):
            rr = members[offsets[i] : offsets[i + 1]]
            assert widths[i] == sum(g.in_degree(int(v)) for v in rr)

    def test_empty_sets_have_zero_width(self):
        # np.add.reduceat would return the *next* segment's first element
        # for an empty set; the cumsum formulation must return 0.
        g = star_graph(10, probability=1.0, outward=True)
        members = np.array([0, 3, 0], dtype=np.int64)
        lengths = np.array([2, 0, 1, 0], dtype=np.int64)
        widths = rr_set_widths(g, members, lengths)
        hub_in_degree = g.in_degree(0)
        assert widths.tolist() == [
            hub_in_degree + g.in_degree(3),
            0,
            hub_in_degree,
            0,
        ]

    def test_no_sets(self):
        g = star_graph(5, probability=1.0)
        widths = rr_set_widths(
            g, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert widths.shape == (0,)


class TestBatchedGapSampler:
    def test_lengths_and_determinism(self):
        g = random_wc_graph(300, avg_degree=6, seed=3)
        boosted = np.zeros((2, 300), dtype=bool)
        boosted[1, ::3] = True
        world_ids = np.arange(400, dtype=np.int64) % 2
        m1, l1 = batch_generate_gap_rr_sets(
            g, np.random.default_rng(4), 400, 0.5, 0.9, boosted, world_ids
        )
        m2, l2 = batch_generate_gap_rr_sets(
            g, np.random.default_rng(4), 400, 0.5, 0.9, boosted, world_ids
        )
        assert np.array_equal(m1, m2)
        assert np.array_equal(l1, l2)
        assert l1.shape[0] == 400
        assert int(l1.sum()) == m1.shape[0]
        # Root coins fail with probability >= 0.1: some sets must be empty,
        # and with q_plain=0.5 roughly half of the plain-world roots die.
        assert (l1 == 0).any()

    def test_zero_q_all_empty_and_one_q_no_empty(self):
        g = random_wc_graph(100, avg_degree=4, seed=2)
        boosted = np.zeros((1, 100), dtype=bool)
        ids = np.zeros(50, dtype=np.int64)
        _, l_zero = batch_generate_gap_rr_sets(
            g, np.random.default_rng(0), 50, 0.0, 0.0, boosted, ids
        )
        assert (l_zero == 0).all()
        _, l_one = batch_generate_gap_rr_sets(
            g, np.random.default_rng(0), 50, 1.0, 1.0, boosted, ids
        )
        assert (l_one >= 1).all()

    def test_world_bitmap_selects_adoption_probability(self):
        # 1-node graph, q_plain=0, q_boosted=1: set j is nonempty iff the
        # paired world boosts node 0 — the bitmap fully determines output.
        g = InfluenceGraph(1, [])
        boosted = np.array([[True], [False]])
        world_ids = np.array([0, 1, 0, 1, 1, 0], dtype=np.int64)
        members, lengths = batch_generate_gap_rr_sets(
            g, np.random.default_rng(0), 6, 0.0, 1.0, boosted, world_ids
        )
        assert lengths.tolist() == [1, 0, 1, 0, 0, 1]
        assert members.tolist() == [0, 0, 0]

    def test_statistical_equivalence_with_sequential(self):
        """Batched and sequential GAP samplers draw the same distribution."""
        g = watts_strogatz_wc_graph(
            600, nearest_neighbors=6, rewire_probability=0.15, seed=9
        )
        world_rng = np.random.default_rng(77)
        worlds = [
            set(world_rng.choice(600, size=120, replace=False).tolist())
            for _ in range(4)
        ]
        count = 4000
        stats = {}
        for backend in ("sequential", "batched"):
            sampler = _GapSampler(
                g, np.random.default_rng(13), 0.55, 0.9, backend
            )
            sampler.set_worlds(worlds)
            members, lengths = sampler.sample(count)
            probe = np.arange(0, 600, 30)
            hit = np.zeros(count, dtype=bool)
            in_probe = np.isin(members, probe)
            set_ids = np.repeat(np.arange(count), lengths)
            hit[set_ids[in_probe]] = True
            stats[backend] = {
                "mean_len": lengths.mean(),
                "empty": (lengths == 0).mean(),
                "probe_cov": hit.mean(),
            }
        seq, bat = stats["sequential"], stats["batched"]
        assert bat["mean_len"] == pytest.approx(seq["mean_len"], rel=0.07)
        assert bat["empty"] == pytest.approx(seq["empty"], abs=0.025)
        assert bat["probe_cov"] == pytest.approx(
            seq["probe_cov"], rel=0.1, abs=0.01
        )


class TestWorldCursor:
    """The forward-world pairing cursor is monotone across phases."""

    @pytest.mark.parametrize("backend", ["sequential", "batched"])
    def test_cursor_continues_across_sample_calls(self, backend):
        # 1-node graph, q_plain=0 / q_boosted=1, worlds [{0}, {}]: set j is
        # nonempty iff world (cursor + j) % 2 == 0.  A second sample() call
        # must continue the alternation, not restart at world 0.
        g = InfluenceGraph(1, [])
        sampler = _GapSampler(g, np.random.default_rng(0), 0.0, 1.0, backend)
        sampler.set_worlds([{0}, set()])
        _, first = sampler.sample(3)
        assert first.tolist() == [1, 0, 1]
        assert sampler.used == 3
        _, second = sampler.sample(4)  # cursor 3 -> worlds 1,0,1,0
        assert second.tolist() == [0, 1, 0, 1]
        assert sampler.used == 7

    @pytest.mark.parametrize("backend", ["sequential", "batched"])
    def test_set_worlds_preserves_cursor(self, backend):
        # RR-CIM refreshes the world list between the KPT and θ phases; the
        # cursor must survive the refresh.
        g = InfluenceGraph(1, [])
        sampler = _GapSampler(g, np.random.default_rng(0), 0.0, 1.0, backend)
        sampler.set_worlds([{0}, set()])
        sampler.sample(3)
        sampler.set_worlds([{0}, set(), set()])  # now period 3, cursor 3
        _, lengths = sampler.sample(3)
        assert lengths.tolist() == [1, 0, 0]

    def test_sequential_sampler_matches_gap_rr_set_stream(self):
        """_GapSampler's sequential path is the historical loop, bit for bit."""
        g = random_wc_graph(150, avg_degree=5, seed=4)
        worlds = [set(range(0, 150, 4)), set(range(1, 150, 7))]
        sampler = _GapSampler(
            g, np.random.default_rng(21), 0.6, 0.9, "sequential"
        )
        sampler.set_worlds(worlds)
        members, lengths = sampler.sample(40)
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        rng = np.random.default_rng(21)
        for j in range(40):
            expected = _gap_rr_set(g, rng, 0.6, 0.9, worlds[j % 2])
            got = members[offsets[j] : offsets[j + 1]]
            assert np.array_equal(got, expected)


class TestCoverageFractionConvention:
    """Empty RR sets stay in the θ denominator (unbiased σ̂)."""

    @pytest.mark.parametrize("backend", ["sequential", "batched"])
    def test_all_roots_willing_gives_full_coverage(self, backend):
        g = InfluenceGraph(1, [])
        sel = comic_rr_selection(
            g, ComICModel(1.0, 1.0, 1.0, 1.0), 0, (), 1, 0.5, 1.0,
            num_forward_worlds=2,
            ctx=EngineContext.create(
                backend=backend, rng=np.random.default_rng(0)
            ),
        )
        assert sel.seeds == (0,)
        assert sel.coverage_fraction == 1.0

    @pytest.mark.parametrize("backend", ["sequential", "batched"])
    def test_all_roots_unwilling_gives_zero_coverage(self, backend):
        # q_plain = 0 and no boosted adopters (empty fixed seeds): every RR
        # set is empty.  Under the θ-denominator convention the fraction is
        # exactly 0.0 (a nonempty-denominator convention would be 0/0).
        g = InfluenceGraph(1, [])
        sel = comic_rr_selection(
            g, ComICModel(0.0, 1.0, 0.0, 1.0), 0, (), 1, 0.5, 1.0,
            num_forward_worlds=2,
            ctx=EngineContext.create(
                backend=backend, rng=np.random.default_rng(0)
            ),
        )
        assert sel.seeds == (0,)
        assert sel.coverage_fraction == 0.0

    @pytest.mark.parametrize("backend", ["sequential", "batched"])
    def test_failed_roots_dilute_coverage(self, backend):
        # Star with certain edges and q = 0.3 everywhere: the hub covers a
        # ~q * (1/n + q (n-1)/n) ≈ 0.096 fraction of all θ sets.  Under the
        # (rejected) nonempty-denominator convention this would be ≈ 0.32.
        g = star_graph(41, probability=1.0, outward=True)
        sel = comic_rr_selection(
            g, ComICModel(0.3, 0.3, 0.3, 0.3), 0, (), 1, 0.5, 1.0,
            num_forward_worlds=3,
            ctx=EngineContext.create(
                backend=backend, rng=np.random.default_rng(5)
            ),
        )
        assert sel.seeds == (0,)
        assert 0.05 < sel.coverage_fraction < 0.2


class TestSequentialGoldens:
    """Sequential RR-SIM+/RR-CIM are pinned byte-for-byte (oracle contract)."""

    def test_rr_sim_plus_golden(self):
        result = rr_sim_plus(
            _golden_graph(), GAP, (4, 3), num_forward_worlds=3,
            ctx=EngineContext.create(
                backend="sequential", rng=np.random.default_rng(11)
            ),
        )
        assert result.seeds_selected_item == GOLDEN_RRSIM_SELECTED
        assert result.seeds_fixed_item == GOLDEN_RRSIM_FIXED
        assert result.num_rr_sets == GOLDEN_RRSIM_NUM_RR_SETS

    def test_rr_cim_golden(self):
        result = rr_cim(
            _golden_graph(), GAP, (4, 3), num_forward_worlds=3,
            ctx=EngineContext.create(
                backend="sequential", rng=np.random.default_rng(11)
            ),
        )
        assert result.seeds_selected_item == GOLDEN_RRCIM_SELECTED
        assert result.seeds_fixed_item == GOLDEN_RRCIM_FIXED
        assert result.num_rr_sets == GOLDEN_RRCIM_NUM_RR_SETS

    # (Cross-backend scale/quality parity for RR-SIM+/RR-CIM moved to
    # tests/test_engine_context.py.)


class TestBatchedKPT:
    def test_tim_kpt_agrees_across_backends(self):
        g = random_wc_graph(800, avg_degree=6, seed=31)
        kpt_seq, used_seq = _kpt_estimation(
            g, 10, 1.0, np.random.default_rng(3), backend="sequential"
        )
        kpt_bat, used_bat = _kpt_estimation(
            g, 10, 1.0, np.random.default_rng(3), backend="batched"
        )
        # Same geometric schedule, independent streams: the estimates target
        # the same KPT and typically stop at the same round.
        assert kpt_bat == pytest.approx(kpt_seq, rel=0.5)
        assert used_bat == used_seq

    def test_tim_backend_knob_covers_kpt_phase(self, monkeypatch):
        import sys

        # ``repro.rrset.tim`` the attribute is the function (rebound by the
        # package __init__); fetch the module itself for monkeypatching.
        tim_module = sys.modules["repro.rrset.tim"]

        calls = []
        original = tim_module.batch_generate_rr_sets

        def spy(graph, rng, count, **kwargs):
            calls.append(count)
            return original(graph, rng, count, **kwargs)

        monkeypatch.setattr(tim_module, "batch_generate_rr_sets", spy)
        g = random_wc_graph(200, avg_degree=5, seed=8)
        tim(
            g, 5,
            ctx=EngineContext.create(
                backend="batched", rng=np.random.default_rng(1)
            ),
        )
        assert calls  # KPT rounds went through the batched sampler
        tim_calls = len(calls)
        tim(
            g, 5,
            ctx=EngineContext.create(
                backend="sequential", rng=np.random.default_rng(1)
            ),
        )
        assert len(calls) == tim_calls  # sequential KPT stayed per-set


class TestSingletonGraphs:
    """Regression: 1-node graphs with k >= 1 must select node 0."""

    def test_tim_singleton(self):
        result = tim(InfluenceGraph(1, []), 1)
        assert result.seeds == (0,)
        assert result.coverage_fraction == 1.0
        result3 = tim(InfluenceGraph(1, []), 3)  # k clamped to n
        assert result3.seeds == (0,)

    def test_imm_singleton(self):
        assert imm(InfluenceGraph(1, []), 1).seeds == (0,)

    def test_prima_singleton(self):
        result = prima(InfluenceGraph(1, []), [2, 1])
        assert result.seeds == (0,)
        assert result.coverage_fraction == 1.0

    def test_ssa_singleton(self):
        result = ssa(InfluenceGraph(1, []), 1)
        assert result.seeds == (0,)
        assert result.influence_estimate == pytest.approx(1.0)

    def test_empty_graph_still_returns_no_seeds(self):
        g = InfluenceGraph(0, [])
        assert tim(g, 1).seeds == ()
        assert imm(g, 1).seeds == ()
        assert ssa(g, 1).seeds == ()
        assert prima(g, [1]).seeds == ()

    def test_zero_budget_singleton(self):
        g = InfluenceGraph(1, [])
        assert tim(g, 0).seeds == ()
        assert prima(g, [0]).seeds == ()
