"""Unit tests for the experimental configurations (Tables 3 and 4)."""

import pytest

from repro.experiments.configs import (
    multi_item_config,
    real_param_budgets,
    real_param_skews,
    split_total_budget,
    two_item_config,
)
from repro.utility.valuation import is_monotone, is_supermodular


class TestTwoItemConfigs:
    def test_config1_values(self):
        config = two_item_config(1)
        model = config.model
        assert model.expected_utility(0b01) == pytest.approx(0.0)
        assert model.expected_utility(0b10) == pytest.approx(0.0)
        assert model.expected_utility(0b11) == pytest.approx(1.0)
        assert config.uniform_budgets

    def test_config3_negative_item(self):
        config = two_item_config(3)
        model = config.model
        assert model.expected_utility(0b01) == pytest.approx(0.0)
        assert model.expected_utility(0b10) == pytest.approx(-1.0)
        assert model.expected_utility(0b11) == pytest.approx(1.0)

    def test_gap_parameters_match_table3(self):
        gap1 = two_item_config(1).gap
        assert gap1.q_a_empty == 0.5
        assert gap1.q_a_given_b == 0.84
        gap3 = two_item_config(3).gap
        assert gap3.q_b_empty == 0.16
        assert gap3.q_a_given_b == 0.98

    def test_budget_vectors_uniform(self):
        vectors = two_item_config(1).budget_vectors()
        assert vectors == [(10, 10), (30, 30), (50, 50)]

    def test_budget_vectors_nonuniform(self):
        vectors = two_item_config(2).budget_vectors()
        assert vectors == [(70, 30), (70, 50), (70, 70), (70, 90), (70, 110)]

    def test_invalid_config_id(self):
        with pytest.raises(ValueError):
            two_item_config(5)


class TestSplitTotalBudget:
    def test_uniform_split(self):
        assert split_total_budget(100, 5, uniform=True) == [20] * 5

    def test_uniform_split_remainder(self):
        budgets = split_total_budget(103, 5, uniform=True)
        assert sum(budgets) == 103
        assert max(budgets) - min(budgets) <= 1

    def test_skewed_split_sums(self):
        budgets = split_total_budget(500, 5, uniform=False)
        assert sum(budgets) == 500
        assert budgets == sorted(budgets, reverse=True)

    def test_skewed_min_is_two_percent(self):
        budgets = split_total_budget(500, 5, uniform=False)
        assert budgets[-1] == 10  # 2% of 500

    def test_validation(self):
        with pytest.raises(ValueError):
            split_total_budget(10, 0, uniform=True)
        with pytest.raises(ValueError):
            split_total_budget(-1, 3, uniform=True)

    def test_single_item(self):
        assert split_total_budget(50, 1, uniform=False) == [50]


class TestMultiItemConfigs:
    @pytest.mark.parametrize("config_id", [5, 6, 7, 8])
    def test_valuations_monotone_supermodular(self, config_id):
        config, _ = multi_item_config(config_id, num_items=4, total_budget=100)
        assert is_monotone(config.model.valuation)
        assert is_supermodular(config.model.valuation)

    def test_config5_unit_utilities(self):
        config, budgets = multi_item_config(5, num_items=5, total_budget=100)
        model = config.model
        for i in range(5):
            assert model.expected_utility(1 << i) == pytest.approx(1.0)
        # additive: the bundle utility is the sum
        assert model.expected_utility(0b11111) == pytest.approx(5.0)
        assert budgets == [20] * 5

    def test_config6_core_is_max_budget(self):
        config, budgets = multi_item_config(6, num_items=5, total_budget=100)
        core = config.model.valuation.core_item
        assert budgets[core] == max(budgets)

    def test_config7_core_is_min_budget(self):
        config, budgets = multi_item_config(7, num_items=5, total_budget=100)
        core = config.model.valuation.core_item
        assert budgets[core] == min(budgets)

    def test_config6_cone_structure(self):
        config, _ = multi_item_config(6, num_items=4, total_budget=100)
        model = config.model
        core = model.valuation.core_item
        core_mask = 1 << core
        assert model.expected_utility(core_mask) == pytest.approx(5.0)
        for i in range(4):
            if i != core:
                assert model.expected_utility(1 << i) < 0
                assert model.expected_utility(core_mask | 1 << i) == pytest.approx(7.0)

    def test_config8_deterministic(self):
        a, _ = multi_item_config(8, num_items=4, total_budget=100, seed=5)
        b, _ = multi_item_config(8, num_items=4, total_budget=100, seed=5)
        top = (1 << 4) - 1
        assert a.model.valuation.value(top) == b.model.valuation.value(top)

    def test_invalid_config_id(self):
        with pytest.raises(ValueError):
            multi_item_config(9)


class TestRealParamBudgets:
    def test_split_fractions(self):
        assert real_param_budgets(500) == [150, 150, 100, 50, 50]

    def test_sum_exact_under_rounding(self):
        for total in (100, 333, 457):
            assert sum(real_param_budgets(total)) == total

    def test_validation(self):
        with pytest.raises(ValueError):
            real_param_budgets(-5)

    def test_skews(self):
        skews = real_param_skews(500)
        assert set(skews) == {"uniform", "large_skew", "moderate_skew"}
        assert skews["uniform"] == [100] * 5
        assert skews["moderate_skew"] == [150, 150, 100, 50, 50]
        assert skews["large_skew"][0] >= 400  # ~82%
        for budgets in skews.values():
            assert sum(budgets) == 500
