"""Unit tests for RR-set generation, NodeSelection and the sample bounds."""

import math

import numpy as np
import pytest

from repro.diffusion.ic import estimate_spread
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import line_graph, star_graph
from repro.rrset.bounds import (
    SampleBounds,
    adjusted_ell,
    ell_prime_for,
    log_binomial,
)
from repro.rrset.node_selection import node_selection
from repro.rrset.rrgen import RRCollection, generate_rr_set


class TestGenerateRRSet:
    def test_line_graph_rr_set_is_ancestor_chain(self, rng):
        g = line_graph(6, 1.0)
        rr = generate_rr_set(g, rng, root=4)
        assert sorted(rr.tolist()) == [0, 1, 2, 3, 4]

    def test_zero_probability_rr_set_is_root(self, rng):
        g = line_graph(6, 0.0)
        rr = generate_rr_set(g, rng, root=4)
        assert rr.tolist() == [4]

    def test_empty_graph_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_rr_set(InfluenceGraph(0, []), rng)

    def test_rr_set_hit_probability_estimates_spread(self):
        """σ(S) = n · Pr[S ∩ R ≠ ∅] — the defining RR-set property."""
        g = star_graph(30, probability=0.4, outward=True)
        n = g.num_nodes
        rng = np.random.default_rng(11)
        hits = 0
        trials = 6000
        for _ in range(trials):
            rr = set(generate_rr_set(g, rng).tolist())
            if 0 in rr:  # seed set {hub}
                hits += 1
        estimated = n * hits / trials
        truth = estimate_spread(g, [0], 3000, np.random.default_rng(12))
        assert estimated == pytest.approx(truth, rel=0.1)


class TestRRCollection:
    def test_generate_and_counts(self, rng):
        g = line_graph(5, 1.0)
        coll = RRCollection(g, rng)
        coll.generate(10)
        assert coll.num_sets == 10
        assert coll.total_width >= 10
        # node 0 is an ancestor of every root, so it covers everything.
        assert coll.cover_counts[0] == 10

    def test_extend_to(self, rng):
        g = line_graph(5, 1.0)
        coll = RRCollection(g, rng)
        coll.extend_to(7)
        assert coll.num_sets == 7
        coll.extend_to(3)  # no shrink
        assert coll.num_sets == 7

    def test_coverage_fraction(self, rng):
        g = line_graph(5, 1.0)
        coll = RRCollection(g, rng)
        coll.generate(20)
        assert coll.coverage_fraction([0]) == 1.0
        assert coll.coverage_fraction([]) == 0.0

    def test_reset(self, rng):
        g = line_graph(5, 1.0)
        coll = RRCollection(g, rng)
        coll.generate(5)
        coll.reset()
        assert coll.num_sets == 0
        assert coll.total_width == 0
        assert coll.cover_counts.sum() == 0

    def test_cover_counts_read_only(self, rng):
        g = line_graph(5, 1.0)
        coll = RRCollection(g, rng)
        coll.generate(2)
        with pytest.raises(ValueError):
            coll.cover_counts[0] = 99

    def test_incremental_index_matches_full_rebuild(self):
        """Querying between growth rounds exercises the incremental merge
        path; the final index must equal a from-scratch bulk build."""
        from repro.graph.generators import random_wc_graph
        from repro.rrset.rrgen import build_inverted_index

        g = random_wc_graph(60, 4, seed=8)
        coll = RRCollection(g, np.random.default_rng(3))
        for round_size in (30, 1, 25, 40):
            coll.generate(round_size)
            coll.containing(0)  # force an index build/merge per round
        members, offsets, idx_sets, idx_indptr = coll.selection_arrays()
        full_sets, full_indptr = build_inverted_index(
            members, offsets, g.num_nodes
        )
        assert np.array_equal(idx_sets, full_sets)
        assert np.array_equal(idx_indptr, full_indptr)

    def test_incremental_index_after_reset(self):
        from repro.graph.generators import random_wc_graph

        g = random_wc_graph(40, 4, seed=2)
        coll = RRCollection(g, np.random.default_rng(1))
        coll.generate(10)
        coll.containing(0)
        coll.reset()
        coll.generate(5)
        # Ids must restart at 0 after the reset (no stale merge base).
        assert all(
            0 <= rr_id < 5 for rr_id in coll.containing(0)
        )


class TestNodeSelection:
    def _collection_with_sets(self, n, sets):
        """Build a collection then fill it with hand-made RR sets."""
        g = line_graph(n, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        coll.add_sets([sorted(s) for s in sets])
        return coll

    def test_greedy_max_cover(self):
        coll = self._collection_with_sets(
            5, [{0, 1}, {0, 2}, {0, 3}, {4}, {4}]
        )
        seeds, frac = node_selection(coll, 2)
        assert seeds == [0, 4]
        assert frac == 1.0

    def test_deterministic_tie_break_lowest_id(self):
        coll = self._collection_with_sets(4, [{1}, {2}])
        seeds, _ = node_selection(coll, 1)
        assert seeds == [1]

    def test_k_capped_at_n(self):
        coll = self._collection_with_sets(3, [{0}, {1}, {2}])
        seeds, frac = node_selection(coll, 10)
        assert len(seeds) == 3
        assert frac == 1.0

    def test_no_duplicate_seeds(self):
        coll = self._collection_with_sets(4, [{0}, {0}, {0}])
        seeds, _ = node_selection(coll, 3)
        assert len(set(seeds)) == 3

    def test_empty_collection(self):
        g = line_graph(4, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        seeds, frac = node_selection(coll, 2)
        assert len(seeds) == 2
        assert frac == 0.0

    def test_negative_k_rejected(self):
        g = line_graph(4, 0.0)
        coll = RRCollection(g, np.random.default_rng(0))
        with pytest.raises(ValueError):
            node_selection(coll, -1)


class TestSampleBounds:
    def test_log_binomial_matches_comb(self):
        for n, k in [(10, 3), (100, 50), (1000, 1)]:
            assert log_binomial(n, k) == pytest.approx(
                math.log(math.comb(n, k)), rel=1e-9
            )

    def test_log_binomial_degenerate(self):
        assert log_binomial(5, 7) == 0.0
        assert log_binomial(5, -1) == 0.0

    def test_lambdas_monotone_in_k(self):
        b = SampleBounds(n=10000, epsilon=0.5, ell_prime=1.0)
        ks = [1, 5, 20, 100, 500]
        lp = [b.lambda_prime(k) for k in ks]
        ls = [b.lambda_star(k) for k in ks]
        assert lp == sorted(lp)
        assert ls == sorted(ls)

    def test_epsilon_prime(self):
        b = SampleBounds(n=100, epsilon=0.5, ell_prime=1.0)
        assert b.epsilon_prime == pytest.approx(math.sqrt(2) * 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleBounds(n=0, epsilon=0.5, ell_prime=1.0)
        with pytest.raises(ValueError):
            SampleBounds(n=100, epsilon=0.0, ell_prime=1.0)
        # n == 1 is valid (singleton-graph support): all log n terms are 0.
        b = SampleBounds(n=1, epsilon=0.5, ell_prime=1.0)
        assert b.lambda_star(1) > 0.0
        assert b.max_search_level == 1

    def test_ell_adjustments(self):
        n = 1000
        lifted = adjusted_ell(1.0, n)
        assert lifted == pytest.approx(1.0 + math.log(2) / math.log(n))
        lp = ell_prime_for(lifted, n, 5)
        assert lp == pytest.approx(lifted + math.log(5) / math.log(n))
        with pytest.raises(ValueError):
            ell_prime_for(1.0, n, 0)

    def test_max_search_level(self):
        b = SampleBounds(n=1024, epsilon=0.5, ell_prime=1.0)
        assert b.max_search_level == 9  # log2(1024) - 1
