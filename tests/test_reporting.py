"""Tests for the benchmark-artifact reporting aggregator."""

from pathlib import Path

import pytest

from repro.experiments.reporting import (
    EXPERIMENT_ORDER,
    build_report,
    collect_artifacts,
    main,
)


@pytest.fixture
def results_dir(tmp_path) -> Path:
    d = tmp_path / "results"
    d.mkdir()
    (d / "table2_networks.txt").write_text("== table2 ==\nrow1\n")
    (d / "fig4_config1.txt").write_text("== fig4 ==\nrow2\n")
    (d / "custom_extra.txt").write_text("== custom ==\nrow3\n")
    return d


class TestCollect:
    def test_collects_all_artifacts(self, results_dir):
        artifacts = collect_artifacts(results_dir)
        assert set(artifacts) == {
            "table2_networks",
            "fig4_config1",
            "custom_extra",
        }

    def test_missing_directory(self, tmp_path):
        assert collect_artifacts(tmp_path / "nope") == {}


class TestBuildReport:
    def test_order_and_content(self, results_dir):
        report = build_report(results_dir)
        assert "Table 2 — network statistics" in report
        assert "row1" in report
        assert "row2" in report
        # unindexed artifacts are appended
        assert "(unindexed) custom_extra" in report
        # missing experiments are flagged
        assert "Missing artifacts" in report
        assert "fig9d_scalability" in report

    def test_every_indexed_experiment_has_section(self, results_dir):
        report = build_report(results_dir)
        for _, title in EXPERIMENT_ORDER:
            assert title in report

    def test_complete_results_have_no_missing_banner(self, tmp_path):
        d = tmp_path / "full"
        d.mkdir()
        for stem, _ in EXPERIMENT_ORDER:
            (d / f"{stem}.txt").write_text(f"== {stem} ==\ndata\n")
        report = build_report(d)
        assert "Missing artifacts" not in report


class TestMain:
    def test_writes_output_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([str(results_dir), str(out)]) == 0
        assert out.exists()
        assert "Regenerated experiments" in out.read_text()

    def test_prints_to_stdout(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "Regenerated experiments" in capsys.readouterr().out
