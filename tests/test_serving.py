"""Tests for repro.serving — router, coalescing, HTTP app, CLI.

Contract under test (DESIGN.md §8):

* **Router lifecycle** — lazy open pins the fingerprint; LRU eviction
  never closes a store under an in-flight reader; hot-swap flips
  atomically (old readers finish on the old snapshot, new acquires see
  the new one); a well-formed store from the *wrong graph* swapped under
  a served key is refused and the old snapshot keeps serving.
* **Coalescing** — concurrent spread queries merge into one vectorized
  ``coverage_fractions`` call, and the batched answers equal the
  sequential per-query answers byte for byte.
* **Serving** — the HTTP endpoints return the stored oracle's exact
  numbers; shutdown drains to ``leaked=0`` and unmaps every store page.
* **CLI** — ``repro serve`` in a fresh process serves golden queries and
  exits 0 on SIGINT with a clean-shutdown line.

No ``time.sleep`` anywhere (RL007): readiness uses the app's own
``wait_started`` hook, concurrency uses barriers and events.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.serving import (
    RouterClosedError,
    ServingApp,
    ServingClient,
    ServingError,
    SpreadBatcher,
    StoreRouter,
)
from repro.store import (
    SketchStore,
    SketchStoreError,
    StaleStoreError,
    build_store,
    extend_store,
)
from repro.store.service import OracleService

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

GRAPH_SPECS = {"alpha": (150, 5, 7), "beta": (110, 4, 11), "gamma": (90, 4, 13)}


@pytest.fixture(scope="module")
def graphs():
    return {
        key: random_wc_graph(n, deg, seed=seed)
        for key, (n, deg, seed) in GRAPH_SPECS.items()
    }


@pytest.fixture(scope="module")
def store_root(graphs, tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    for index, key in enumerate(sorted(graphs)):
        store = build_store(
            graphs[key],
            6,
            ctx=EngineContext.create(seed=3 + index),
            estimation_rr_sets=700,
        )
        store.save(root / f"{key}.sketch")
    return root


def serve_in_thread(app):
    """Run ``app`` on a worker thread; returns (stop, summary holder)."""
    summary = {}
    thread = threading.Thread(target=lambda: summary.update(app.run()))
    thread.start()
    assert app.wait_started(10)

    def stop():
        app.request_stop()
        thread.join(10)
        assert not thread.is_alive()
        return summary

    return stop


class TestStoreRouterBasics:
    def test_add_root_registers_stems_lazily(self, store_root):
        router = StoreRouter()
        assert router.add_root(store_root) == ["alpha", "beta", "gamma"]
        assert router.keys() == ("alpha", "beta", "gamma")
        assert router.open_keys == ()  # nothing mmap'd yet
        router.seeds("beta", 3)
        assert router.open_keys == ("beta",)
        router.close()

    def test_register_rejects_duplicates_and_path_keys(self, store_root):
        router = StoreRouter()
        router.register("alpha", store_root / "alpha.sketch")
        with pytest.raises(ValueError, match="already registered"):
            router.register("alpha", store_root / "beta.sketch")
        with pytest.raises(ValueError, match="without '/'"):
            router.register("a/b", store_root / "beta.sketch")
        router.close()

    def test_unknown_key_is_keyerror(self, store_root):
        router = StoreRouter()
        router.add_root(store_root)
        with pytest.raises(KeyError, match="nope"):
            router.seeds("nope", 2)
        router.close()

    def test_closed_router_refuses_queries(self, store_root):
        router = StoreRouter()
        router.add_root(store_root)
        router.close()
        with pytest.raises(RouterClosedError):
            router.seeds("alpha", 2)

    def test_release_without_acquire_rejected(self, store_root):
        router = StoreRouter()
        router.add_root(store_root)
        with router.lease("alpha") as handle:
            pass
        with pytest.raises(RuntimeError, match="without matching acquire"):
            router.release(handle)
        router.close()


class TestLruEviction:
    def test_eviction_defers_close_until_reader_releases(self, store_root):
        router = StoreRouter(max_open=1)
        router.add_root(store_root)
        held = router.acquire("alpha")
        # Opening beta overflows max_open=1 and retires alpha — but a
        # reader still holds it, so its pages must stay mapped.
        router.seeds("beta", 2)
        assert router.open_keys == ("beta",)
        assert held.retired
        assert not held.store.closed
        seeds = held.service.seeds(3)
        assert len(seeds) == 3  # still answers from the retired snapshot
        router.release(held)
        assert held.store.closed
        assert router.draining == ()
        assert router.stats()["evictions"] == 1
        router.close()

    def test_eviction_without_readers_closes_immediately(self, store_root):
        router = StoreRouter(max_open=1)
        router.add_root(store_root)
        with router.lease("alpha") as handle:
            pass
        router.seeds("beta", 2)
        assert handle.store.closed
        router.close()

    def test_recency_refresh_protects_hot_store(self, store_root):
        router = StoreRouter(max_open=2)
        router.add_root(store_root)
        router.seeds("alpha", 2)
        router.seeds("beta", 2)
        router.seeds("alpha", 2)  # refresh alpha's recency
        router.seeds("gamma", 2)  # evicts beta, the LRU entry
        assert router.open_keys == ("alpha", "gamma")
        router.close()

    def test_reopen_after_eviction_pins_same_fingerprint(self, store_root):
        router = StoreRouter(max_open=1)
        router.add_root(store_root)
        before = router.seeds("alpha", 4)
        pin = router.pinned_fingerprint("alpha")
        router.seeds("beta", 2)  # evict alpha
        after = router.seeds("alpha", 4)  # re-open against the pin
        assert before == after
        assert router.pinned_fingerprint("alpha") == pin
        assert router.stats()["opens"] == 3
        router.close()


class TestFingerprintPinning:
    def test_stale_fingerprint_refused_at_open(self, store_root):
        router = StoreRouter()
        wrong = OracleService.open(store_root / "beta.sketch", mmap=False)
        router.register(
            "alpha",
            store_root / "alpha.sketch",
            fingerprint=wrong.store.fingerprint,
        )
        with pytest.raises(StaleStoreError, match="pinned"):
            router.seeds("alpha", 2)
        assert router.open_keys == ()  # the refused store was closed
        router.close()

    def test_service_expect_fingerprint_without_graph(self, store_root):
        """Fingerprint is verified even when no graph is supplied."""
        path = store_root / "alpha.sketch"
        good = OracleService.open(path, mmap=False).store.fingerprint
        svc = OracleService.open(path, mmap=False, expect_fingerprint=good)
        assert svc.store.fingerprint == good
        with pytest.raises(StaleStoreError):
            OracleService.open(
                path, mmap=False, expect_fingerprint="0" * 64
            )


class TestHotSwap:
    def test_swap_drains_old_snapshot_under_reader(
        self, graphs, store_root, tmp_path
    ):
        path = tmp_path / "alpha.sketch"
        shutil.copy(store_root / "alpha.sketch", path)
        router = StoreRouter()
        router.register("alpha", path)
        held = router.acquire("alpha")
        old_sets = held.store.num_sets

        grown = extend_store(
            SketchStore.load(path, mmap=False), graphs["alpha"], 300
        )
        grown.save(path)
        swapped = router.swap("alpha")

        # The in-flight reader still answers from the old snapshot...
        assert held.store.num_sets == old_sets
        assert not held.store.closed
        # ...while new acquires see the grown one, same pinned graph.
        assert swapped.store.num_sets == old_sets + 300
        assert swapped.generation > held.generation
        with router.lease("alpha") as fresh:
            assert fresh is swapped
        router.release(held)
        assert held.store.closed  # last old reader drained -> unmapped
        assert router.stats()["swaps"] == 1
        router.close()

    def test_swap_wrong_graph_refused_and_old_kept(
        self, store_root, tmp_path
    ):
        path = tmp_path / "alpha.sketch"
        shutil.copy(store_root / "alpha.sketch", path)
        router = StoreRouter()
        router.register("alpha", path)
        before = router.seeds("alpha", 4)

        # A well-formed store from a *different graph* lands on the path
        # (atomic rename, the way every real writer replaces a store —
        # an in-place overwrite would corrupt mmap'd readers instead).
        evil = tmp_path / "evil.sketch"
        shutil.copy(store_root / "beta.sketch", evil)
        os.replace(evil, path)
        with pytest.raises(StaleStoreError, match="refusing"):
            router.swap("alpha")
        # The old snapshot is still served, untouched.
        assert router.seeds("alpha", 4) == before
        assert router.stats()["swaps"] == 0
        router.close()

    def test_swap_missing_file_keeps_old(self, store_root, tmp_path):
        path = tmp_path / "alpha.sketch"
        shutil.copy(store_root / "alpha.sketch", path)
        router = StoreRouter()
        router.register("alpha", path)
        before = router.seeds("alpha", 4)
        path.unlink()
        with pytest.raises(SketchStoreError, match="cannot read"):
            router.swap("alpha")
        assert router.seeds("alpha", 4) == before
        router.close()


class TestBatchedKernel:
    def test_coalesced_batch_matches_sequential_bytes(self, store_root):
        router = StoreRouter()
        router.add_root(store_root)
        seed_sets = [list(router.seeds("alpha", b)) for b in (1, 2, 4, 6)]
        seed_sets.append([])  # empty set rides along
        batched = router.coverage_fractions("alpha", seed_sets)
        sequential = [
            router.coverage_fractions("alpha", [s])[0] for s in seed_sets
        ]
        assert batched == sequential
        router.close()

    def test_batched_matches_single_query_service(self, store_root):
        service = OracleService.open(store_root / "beta.sketch", mmap=False)
        sets = [list(service.seeds(b)) for b in (1, 3, 6)]
        assert service.coverage_fractions(sets) == [
            service.coverage_fraction(s) for s in sets
        ]

    def test_batched_range_check(self, store_root):
        service = OracleService.open(store_root / "beta.sketch", mmap=False)
        n = service.store.num_nodes
        with pytest.raises(IndexError):
            service.coverage_fractions([[0], [n]])
        assert service.coverage_fractions([]) == []


class TestSpreadBatcher:
    def test_concurrent_submissions_coalesce_into_one_call(self):
        import asyncio

        calls = []

        def compute(batch):
            calls.append([list(s) for s in batch])
            return [float(len(s)) for s in batch]

        async def scenario():
            batcher = SpreadBatcher(compute, window=0.05, max_batch=64)
            results = await asyncio.gather(
                *(batcher.submit([0] * (i + 1)) for i in range(8))
            )
            return results

        results = asyncio.run(scenario())
        assert results == [float(i + 1) for i in range(8)]
        assert len(calls) == 1  # one vectorized call for all 8
        assert len(calls[0]) == 8

    def test_max_batch_flushes_immediately(self):
        import asyncio

        calls = []

        def compute(batch):
            calls.append(len(batch))
            return [0.0] * len(batch)

        async def scenario():
            batcher = SpreadBatcher(compute, window=60.0, max_batch=4)
            await asyncio.gather(*(batcher.submit([i]) for i in range(8)))
            assert batcher.stats()["largest_batch"] == 4

        # A 60 s window can only terminate via the max_batch trigger.
        asyncio.run(scenario())
        assert calls == [4, 4]

    def test_disabled_batcher_computes_inline(self):
        import asyncio

        calls = []

        def compute(batch):
            calls.append(len(batch))
            return [1.0] * len(batch)

        async def scenario():
            batcher = SpreadBatcher(compute, window=0.05, enabled=False)
            assert not batcher.enabled
            await asyncio.gather(*(batcher.submit([i]) for i in range(3)))

        asyncio.run(scenario())
        assert calls == [1, 1, 1]
        # window <= 0 also disables (the CLI's --coalesce-window 0 path)
        assert not SpreadBatcher(compute, window=0.0).enabled

    def test_compute_failure_propagates_to_every_waiter(self):
        import asyncio

        def compute(batch):
            raise IndexError("seed out of range")

        async def scenario():
            batcher = SpreadBatcher(compute, window=0.01, max_batch=4)
            results = await asyncio.gather(
                *(batcher.submit([i]) for i in range(4)),
                return_exceptions=True,
            )
            assert all(isinstance(r, IndexError) for r in results)

        asyncio.run(scenario())


class TestDescribe:
    def test_describe_never_forces_opens(self, store_root):
        router = StoreRouter(max_open=1)
        router.add_root(store_root)
        router.seeds("beta", 2)  # one open handle, pin set
        rows = router.describe()
        # Listing must not have opened alpha/gamma or evicted beta.
        assert router.open_keys == ("beta",)
        assert router.stats()["opens"] == 1
        assert [row["key"] for row in rows] == ["alpha", "beta", "gamma"]
        by_key = {row["key"]: row for row in rows}
        assert by_key["beta"]["open"]
        assert by_key["beta"]["fingerprint"] == (
            router.pinned_fingerprint("beta")
        )
        assert by_key["beta"]["num_sets"] > 0
        assert not by_key["alpha"]["open"]
        assert by_key["alpha"]["fingerprint"] is None  # never opened
        assert "num_sets" not in by_key["alpha"]
        router.close()

    def test_describe_survives_unreadable_artifact(self, store_root, tmp_path):
        root = tmp_path / "fleet"
        root.mkdir()
        for key in ("alpha", "beta"):
            shutil.copy(store_root / f"{key}.sketch", root / f"{key}.sketch")
        router = StoreRouter()
        router.add_root(root)
        router.seeds("alpha", 2)
        (root / "beta.sketch").write_bytes(b"not a sketch store")
        rows = router.describe()  # the broken key must not fail the list
        assert [row["key"] for row in rows] == ["alpha", "beta"]
        assert not {row["key"]: row for row in rows}["beta"]["open"]
        router.close()


class TestServingApp:
    def test_golden_queries_match_store_service(self, store_root):
        router = StoreRouter(max_open=2)
        router.add_root(store_root)
        app = ServingApp(router, port=0, window=0.002)
        stop = serve_in_thread(app)
        try:
            with ServingClient("127.0.0.1", app.port) as client:
                assert client.health() == {"status": "ok"}
                rows = client.stores()
                assert [row["key"] for row in rows] == [
                    "alpha",
                    "beta",
                    "gamma",
                ]
                for key in ("alpha", "beta"):
                    service = OracleService.open(
                        store_root / f"{key}.sketch", mmap=False
                    )
                    seeds = client.seeds(key, 5)
                    assert tuple(seeds) == service.seeds(5)
                    assert client.spread(key, seeds) == (
                        service.estimate_spread(seeds)
                    )
                    meta = client.store(key)
                    assert meta["fingerprint"] == service.store.fingerprint
                    assert meta["num_sets"] == service.store.num_sets
        finally:
            summary = stop()
        assert summary["leaked"] == 0
        assert summary["requests"] == 8  # health + stores + 3 per key

    def test_error_mapping(self, store_root):
        router = StoreRouter()
        router.add_root(store_root)
        app = ServingApp(router, port=0)
        stop = serve_in_thread(app)
        try:
            with ServingClient("127.0.0.1", app.port) as client:
                with pytest.raises(ServingError) as excinfo:
                    client.seeds("nope", 2)
                assert excinfo.value.status == 404
                with pytest.raises(ServingError) as excinfo:
                    client.seeds("alpha", 999)  # beyond max_budget
                assert excinfo.value.status == 400
                with pytest.raises(ServingError) as excinfo:
                    client.spread("alpha", [10**9])  # node out of range
                assert excinfo.value.status == 400
                with pytest.raises(ServingError) as excinfo:
                    client._request("GET", "/v1/stores/alpha/spread?seeds=x")
                assert excinfo.value.status == 400
                with pytest.raises(ServingError) as excinfo:
                    client._request("GET", "/no/such/route")
                assert excinfo.value.status == 404
                with pytest.raises(ServingError) as excinfo:
                    client._request("POST", "/v1/stores/alpha")
                assert excinfo.value.status == 405
        finally:
            stop()

    def test_reload_bumps_generation(self, graphs, store_root, tmp_path):
        root = tmp_path / "fleet"
        root.mkdir()
        shutil.copy(store_root / "alpha.sketch", root / "alpha.sketch")
        router = StoreRouter()
        router.add_root(root)
        app = ServingApp(router, port=0)
        stop = serve_in_thread(app)
        try:
            with ServingClient("127.0.0.1", app.port) as client:
                first = client.store("alpha")
                grown = extend_store(
                    SketchStore.load(root / "alpha.sketch", mmap=False),
                    graphs["alpha"],
                    200,
                )
                grown.save(root / "alpha.sketch")
                reloaded = client.reload("alpha")
                assert reloaded["generation"] > first["generation"]
                assert reloaded["num_sets"] == first["num_sets"] + 200
                # Spread queries keep working against the new snapshot.
                seeds = client.seeds("alpha", 4)
                fresh = OracleService.open(root / "alpha.sketch", mmap=False)
                assert client.spread("alpha", seeds) == (
                    fresh.estimate_spread(seeds)
                )
        finally:
            summary = stop()
        assert summary["swaps"] == 1
        assert summary["leaked"] == 0

    def test_concurrent_spreads_coalesce(self, store_root):
        router = StoreRouter()
        router.add_root(store_root)
        app = ServingApp(router, port=0, window=0.2, max_batch=64)
        stop = serve_in_thread(app)
        workers = 8
        barrier = threading.Barrier(workers)
        expected = None
        results = []
        lock = threading.Lock()

        def worker():
            with ServingClient("127.0.0.1", app.port) as client:
                barrier.wait(timeout=10)
                value = client.spread("gamma", list(range(10)))
                with lock:
                    results.append(value)

        try:
            with ServingClient("127.0.0.1", app.port) as client:
                seeds = list(range(10))
                expected = client.spread("gamma", seeds)
                threads = [
                    threading.Thread(target=worker) for _ in range(workers)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(30)
                stats = client.stats()["coalescing"]["gamma"]
        finally:
            stop()
        assert results == [expected] * workers
        assert stats["queries"] == workers + 1
        # The barrier packs all 8 into one 200 ms window: they must have
        # shared batches rather than each paying its own kernel call.
        assert stats["coalesced"] >= 2
        assert stats["largest_batch"] >= 2

    def test_shutdown_unmaps_every_store_page(self, store_root, tmp_path):
        root = tmp_path / "fleet"
        root.mkdir()
        for key in ("alpha", "beta"):
            shutil.copy(store_root / f"{key}.sketch", root / f"{key}.sketch")
        router = StoreRouter(max_open=1)  # force eviction traffic too
        router.add_root(root)
        app = ServingApp(router, port=0)
        stop = serve_in_thread(app)
        try:
            with ServingClient("127.0.0.1", app.port) as client:
                for key in ("alpha", "beta", "alpha"):
                    client.seeds(key, 3)
            maps = Path("/proc/self/maps").read_text()
            assert str(root) in maps  # served stores really are mmap'd
        finally:
            summary = stop()
        assert summary["leaked"] == 0
        maps = Path("/proc/self/maps").read_text()
        assert str(root) not in maps  # every page unmapped at shutdown


class TestObservabilityEndpoints:
    def test_stats_golden_shape(self, store_root):
        router = StoreRouter()
        router.add_root(store_root)
        app = ServingApp(router, port=0)
        stop = serve_in_thread(app)
        try:
            with ServingClient("127.0.0.1", app.port) as client:
                client.seeds("alpha", 3)
                client.spread("alpha", [0, 1])
                stats = client.stats()
        finally:
            stop()
        assert set(stats) == {
            "router", "requests", "coalescing", "pool", "metrics",
        }
        assert stats["router"]["hits"] + stats["router"]["misses"] >= 1
        assert set(stats["pool"]) >= {
            "active", "processes", "tasks_dispatched", "restarts", "segments",
        }
        # The registry snapshot is folded in: the responses counter has
        # at least this session's seeds/spread/stats requests.
        responses = stats["metrics"]["repro_serving_responses_total"]
        assert any(key.startswith("endpoint=") for key in responses)

    def test_metrics_text_parses_and_counts_requests(self, store_root):
        from repro import obs

        router = StoreRouter()
        router.add_root(store_root)
        app = ServingApp(router, port=0)
        stop = serve_in_thread(app)
        try:
            with ServingClient("127.0.0.1", app.port) as client:
                client.seeds("beta", 2)
                first = obs.parse_prometheus(client.metrics_text())
                client.spread("beta", [0, 1, 2])
                client.spread("beta", [0])
                second = obs.parse_prometheus(client.metrics_text())
        finally:
            stop()
        seconds = second["repro_serving_request_seconds_count"]
        assert seconds['{"endpoint": "seeds"}'] >= 1
        assert seconds['{"endpoint": "spread"}'] >= 2
        assert second["repro_serving_batch_size_count"][""] >= 2
        # Counters are monotone between scrapes, per series.
        for series, value in first["repro_serving_responses_total"].items():
            assert second["repro_serving_responses_total"][series] >= value
        key = '{"class": "2xx", "endpoint": "spread"}'
        assert (
            second["repro_serving_responses_total"][key]
            >= first["repro_serving_responses_total"].get(key, 0) + 2
        )

    def test_batcher_stats_survive_hot_swap(self, graphs, store_root, tmp_path):
        from repro import obs

        root = tmp_path / "fleet"
        root.mkdir()
        shutil.copy(store_root / "alpha.sketch", root / "alpha.sketch")
        router = StoreRouter()
        router.add_root(root)
        app = ServingApp(router, port=0)
        stop = serve_in_thread(app)
        swaps = obs.REGISTRY.get("repro_serving_hot_swaps_total")
        swaps_before = swaps.value()
        try:
            with ServingClient("127.0.0.1", app.port) as client:
                client.spread("alpha", [0, 1])
                before = client.stats()["coalescing"]["alpha"]["queries"]
                extend_store(
                    SketchStore.load(root / "alpha.sketch", mmap=False),
                    graphs["alpha"],
                    150,
                ).save(root / "alpha.sketch")
                client.reload("alpha")
                client.spread("alpha", [0, 1])
                after = client.stats()["coalescing"]["alpha"]["queries"]
        finally:
            stop()
        assert after == before + 1  # the batcher outlives the swap
        assert swaps.value() == swaps_before + 1


def raw_exchange(port, payload):
    """Send raw bytes to the server, return everything it writes back."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


class TestHttpEdgeCases:
    @pytest.fixture()
    def served_app(self, store_root):
        router = StoreRouter()
        router.add_root(store_root)
        app = ServingApp(router, port=0)
        stop = serve_in_thread(app)
        try:
            yield app
        finally:
            stop()

    def test_stop_with_connected_keepalive_client(self, store_root):
        """Shutdown must not hang while a keep-alive client is parked.

        On Python 3.12.1+ ``wait_closed()`` blocks until every handler
        coroutine ends; an idle client sitting in the server's
        ``readline()`` would deadlock shutdown unless connection tasks
        are cancelled first.  ``stop`` asserts the serve thread died.
        """
        router = StoreRouter()
        router.add_root(store_root)
        app = ServingApp(router, port=0)
        stop = serve_in_thread(app)
        with ServingClient("127.0.0.1", app.port) as client:
            assert client.health() == {"status": "ok"}
            summary = stop()  # client still connected, idle
        assert summary["leaked"] == 0

    def test_bad_content_length_is_400(self, served_app):
        reply = raw_exchange(
            served_app.port,
            b"GET /healthz HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
        )
        assert reply.startswith(b"HTTP/1.1 400 ")
        assert b"bad content-length" in reply

    def test_header_flood_is_400(self, served_app):
        flood = b"".join(
            b"x-filler-%d: %s\r\n" % (i, b"v" * 120) for i in range(200)
        )
        reply = raw_exchange(
            served_app.port, b"GET /healthz HTTP/1.1\r\n" + flood + b"\r\n"
        )
        assert reply.startswith(b"HTTP/1.1 400 ")
        assert b"headers too large" in reply

    def test_eof_mid_headers_is_not_dispatched(self, served_app):
        before = served_app._server.requests_served
        reply = raw_exchange(
            served_app.port, b"GET /healthz HTTP/1.1\r\nhost: x\r\n"
        )
        assert reply == b""  # aborted request: no response, no dispatch
        assert served_app._server.requests_served == before

    def test_client_retries_get_but_not_post(self):
        class FlakyConn:
            def __init__(self):
                self.attempts = 0

            def request(self, method, path, body=None):
                self.attempts += 1
                if self.attempts == 1:
                    raise ConnectionResetError("keep-alive socket dropped")

            def getresponse(self):
                class Response:
                    status = 200

                    def read(self):
                        return json.dumps({"ok": True}).encode()

                return Response()

            def close(self):
                pass

        client = ServingClient("127.0.0.1", 1)
        client._conn = FlakyConn()
        # Idempotent GET: one transparent retry on a fresh connection.
        assert client._request("GET", "/healthz") == {"ok": True}
        assert client._conn.attempts == 2
        # Non-idempotent POST (reload): the error must surface — the
        # first attempt may already have swapped the store server-side.
        client._conn = FlakyConn()
        with pytest.raises(ConnectionResetError):
            client._request("POST", "/v1/stores/alpha/reload")
        assert client._conn.attempts == 1


class TestServeCli:
    def test_subprocess_serve_golden_and_clean_sigint(self, store_root):
        expected = OracleService.open(store_root / "alpha.sketch", mmap=False)
        seeds = list(expected.seeds(4))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--store-root",
                str(store_root),
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving 3 stores on ")
            host, port = banner.rsplit(" ", 1)[-1].split(":")
            assert proc.stdout.readline().strip() == (
                "keys: alpha beta gamma"
            )
            with ServingClient(host, int(port)) as client:
                assert client.seeds("alpha", 4) == seeds
                assert client.spread("alpha", seeds) == (
                    expected.estimate_spread(seeds)
                )
        finally:
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "clean shutdown:" in out
        assert "leaked=0" in out

    def test_serve_rejects_empty_root(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--store-root",
                str(empty),
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode != 0
        assert "sketch stores found" in proc.stderr


class TestStoreClose:
    def test_close_is_idempotent_and_marks_closed(self, store_root):
        store = SketchStore.load(store_root / "gamma.sketch")
        assert not store.closed
        store.close()
        assert store.closed
        store.close()  # second close is a no-op
        assert store.idx_sets is None

    def test_materialized_store_close(self, store_root):
        store = SketchStore.load(store_root / "gamma.sketch", mmap=False)
        store.close()
        assert store.closed
