"""The on-disk RR-sketch format: header + memory-mappable flat arrays.

Layout (all integers little-endian)::

    bytes 0..7     magic  b"REPROSKT"
    bytes 8..15    uint64 header length H
    bytes 16..16+H JSON header (utf-8)
    ...            zero padding to the next 64-byte boundary
    data section   the arrays, each starting on a 64-byte boundary

The JSON header carries ``format_version``, a ``meta`` object (graph
fingerprint, engine parameters, backend, world cursor, RNG bit-generator
state) and an ``arrays`` table mapping each array name to its dtype, shape
and byte offset *relative to the data section*.  Relative offsets keep the
array table independent of the header's own serialized length; the data
section starts at the first 64-byte boundary past the header.

Format v2 adds a ``model`` discriminator (``prima`` — the only v1 model —
or ``comic``) and, for Com-IC/GAP sketches, a ``comic`` metadata block
(GAP parameters, derived adoption coins, select item, fixed seeds, KPT
bookkeeping) plus one extra aligned array: the ``(num_worlds, n)``
boolean forward-adopter bitmap the GAP walks are paired against.  V1
files still load (``SUPPORTED_VERSIONS``); v1 refuses to serialize comic
sketches.

Because every array is a contiguous typed block at a known offset,
:meth:`SketchStore.load` can hand back ``np.memmap`` views — the serving
layer answers queries without ever materializing the (potentially
multi-gigabyte) member log in RAM, and the OS page cache is shared across
serving processes.

Failure modes are explicit:

* :class:`SketchStoreError` — malformed file: bad magic, unparseable or
  truncated header, arrays pointing past EOF, internally inconsistent CSR
  invariants, unsupported ``format_version``.
* :class:`StaleStoreError` — a well-formed store whose graph fingerprint
  does not match the graph it is being served against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro import obs
from repro.graph.digraph import InfluenceGraph
from repro.graph.io import graph_fingerprint
from repro.store import blockfile
from repro.store.format import (
    ARRAY_NAMES,
    FORMAT_VERSION,
    INDEX_DTYPE,
    MAGIC,
    MODELS,
    SUPPORTED_VERSIONS,
    WORLDS_DTYPE,
    canonical_index_array,
)

PathLike = Union[str, Path]

_STORE_IO_SECONDS = obs.histogram(
    "repro_store_io_seconds",
    "Wall-clock of store serialization operations",
    labels=("op",),
)
_STORE_MMAP_BYTES = obs.counter(
    "repro_store_mmap_bytes_total",
    "Bytes memory-mapped (or materialized) by store loads",
    labels=("mode",),
)
_STORE_FPRINT_CHECKS = obs.counter(
    "repro_store_fingerprint_checks_total",
    "Graph-fingerprint verifications against loaded stores",
    labels=("result",),
)


class SketchStoreError(RuntimeError):
    """A sketch-store file is malformed, truncated, or unsupported."""


class StaleStoreError(SketchStoreError):
    """A store's graph fingerprint does not match the serving graph."""


def _jsonable_rng_state(state: Optional[dict]) -> Optional[dict]:
    """Make a bit-generator state dict JSON-serializable.

    PCG64 (the `default_rng` family) states are plain ints already;
    MT19937-style states carry a numpy ``key`` array, which round-trips
    through a list.  Applied recursively so nested ``state`` dicts are
    covered.
    """
    if state is None:
        return None
    out = {}
    for name, value in state.items():
        if isinstance(value, dict):
            out[name] = _jsonable_rng_state(value)
        elif isinstance(value, np.ndarray):
            out[name] = {"__ndarray__": value.dtype.str,
                         "data": value.tolist()}
        elif isinstance(value, np.integer):
            out[name] = int(value)
        else:
            out[name] = value
    return out


def _restore_rng_state(state: dict) -> dict:
    """Inverse of :func:`_jsonable_rng_state`."""
    out = {}
    for name, value in state.items():
        if isinstance(value, dict):
            if "__ndarray__" in value:
                out[name] = np.asarray(
                    value["data"], dtype=np.dtype(value["__ndarray__"])
                )
            else:
                out[name] = _restore_rng_state(value)
        else:
            out[name] = value
    return out


@dataclass
class SketchStore:
    """A persisted influence-oracle sketch: metadata + flat arrays.

    ``members``/``offsets`` are the RR collection's CSR over sets,
    ``idx_sets``/``idx_indptr`` its node -> set-ids inverted index,
    ``widths[i]`` the width ``w(R_i)`` (total in-degree of set ``i``'s
    members, the paper's running-time accounting unit) and ``cover_counts``
    the per-node set counts.  ``seed_order`` is PRIMA's prefix-preserving
    ordering for budgets up to ``max_budget``.  ``world_cursor`` records how
    many forward worlds a world-paired sampler (the GAP-aware Com-IC RIS
    phase) has consumed, so cross-phase pairing survives a round trip;
    plain IC/LT oracle stores keep it at 0.  ``rng_state`` is the sampling
    generator's bit-generator state — restoring it makes θ-extension of a
    loaded store byte-identical to never having saved at all.

    Arrays returned by :meth:`load` may be read-only ``np.memmap`` views;
    treat every field as immutable and build modified copies via
    :func:`dataclasses.replace`.
    """

    fingerprint: str
    num_nodes: int
    num_edges: int
    max_budget: int
    epsilon: float
    ell: float
    backend: str
    triggering: Optional[str]
    world_cursor: int
    rng_state: Optional[dict]
    seed_order: np.ndarray
    members: np.ndarray
    offsets: np.ndarray
    widths: np.ndarray
    idx_sets: np.ndarray
    idx_indptr: np.ndarray
    cover_counts: np.ndarray
    #: Sketch model: ``"prima"`` (plain influence oracle, the only v1
    #: model) or ``"comic"`` (GAP-aware Com-IC RIS sketches, v2+).
    model: str = "prima"
    #: Com-IC metadata (GAP parameters, select item, fixed seeds, forward
    #: world count, KPT bookkeeping); ``None`` for prima stores.
    comic: Optional[dict] = None
    #: ``(num_worlds, n)`` boolean forward-adopter bitmap the GAP walks are
    #: paired against (comic stores only; ``None`` for prima stores).
    worlds: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        """Number of persisted RR sets θ."""
        return int(self.offsets.shape[0] - 1)

    @property
    def closed(self) -> bool:
        """Has :meth:`close` released this store's arrays?"""
        return getattr(self, "_closed", False)

    def close(self) -> None:
        """Release the array references (and unmap memory-mapped pages).

        The serving router swaps stores hot: the replacement mmap goes
        live first, and the *old* store is closed only once its last
        reader drains.  Closing drops every array field (reads afterwards
        raise — a closed store must never serve) and then closes the
        underlying ``mmap`` objects so the pages disappear from the
        process immediately instead of lingering until a GC pass.  A
        still-exported buffer (an outstanding numpy view some caller
        kept) makes ``mmap.close`` raise ``BufferError``; that view keeps
        the pages alive and the mapping is released when it dies — the
        refcounted drain in :mod:`repro.serving.router` exists to make
        that case not happen.  Idempotent.
        """
        if self.closed:
            return
        mmaps = []
        for name in (*ARRAY_NAMES, "worlds"):
            arr = getattr(self, name, None)
            if isinstance(arr, np.memmap):
                mm = getattr(arr, "_mmap", None)
                if mm is not None:
                    mmaps.append(mm)
            setattr(self, name, None)
        self._closed = True
        for mm in mmaps:
            try:
                mm.close()
            except BufferError:  # pragma: no cover - leaked external view
                pass

    @property
    def total_width(self) -> int:
        """Total member count Σ|R| (the stored footprint metric)."""
        return int(self.offsets[-1])

    def verify_graph(self, graph: InfluenceGraph) -> None:
        """Raise :class:`StaleStoreError` unless built from ``graph``."""
        actual = graph_fingerprint(graph)
        _STORE_FPRINT_CHECKS.inc(
            result="ok" if actual == self.fingerprint else "stale"
        )
        if actual != self.fingerprint:
            raise StaleStoreError(
                f"store was built from a graph with fingerprint "
                f"{self.fingerprint[:16]}… but is being served against "
                f"{actual[:16]}… (n={graph.num_nodes}); rebuild the store"
            )

    def replace_arrays(self, **updates) -> "SketchStore":
        """A copy with some fields replaced (save-side convenience)."""
        return replace(self, **updates)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(
        self, path: PathLike, *, format_version: int = FORMAT_VERSION
    ) -> None:
        """Write the store; the file is self-describing and mmap-ready.

        The write goes to a temp file in the target directory and is
        renamed into place, so (a) saving over the file this store was
        memory-mapped from is safe — the source pages stay valid until the
        atomic replace — and (b) readers never observe a half-written
        store.

        ``format_version`` defaults to the current version (3 — index
        arrays narrowed to int32 wherever every value fits); versions 1
        and 2 can still be *written* (the forward-compat tests pin that
        old files keep loading), always with wide int64 index arrays,
        and version 1 cannot carry a comic sketch.
        """
        if format_version not in SUPPORTED_VERSIONS:
            raise SketchStoreError(
                f"cannot write format version {format_version!r} "
                f"(supported: {SUPPORTED_VERSIONS})"
            )
        if format_version < 2 and self.model != "prima":
            raise SketchStoreError(
                f"format version 1 cannot persist a {self.model!r} sketch; "
                "write version 2"
            )
        arrays: Dict[str, np.ndarray] = {
            name: canonical_index_array(
                getattr(self, name), format_version
            )
            for name in ARRAY_NAMES
        }
        if format_version >= 2 and self.worlds is not None:
            arrays["worlds"] = np.ascontiguousarray(
                np.asarray(self.worlds, dtype=WORLDS_DTYPE)
            )
        table = blockfile.array_table(arrays)
        meta = {
            "fingerprint": self.fingerprint,
            "num_nodes": int(self.num_nodes),
            "num_edges": int(self.num_edges),
            "max_budget": int(self.max_budget),
            "epsilon": float(self.epsilon),
            "ell": float(self.ell),
            "backend": self.backend,
            "triggering": self.triggering,
            "world_cursor": int(self.world_cursor),
            "num_sets": self.num_sets,
            "rng_state": _jsonable_rng_state(self.rng_state),
        }
        if format_version >= 2:
            meta["model"] = self.model
            meta["comic"] = self.comic
        header = {
            "format_version": format_version,
            "meta": meta,
            "arrays": table,
        }
        with _STORE_IO_SECONDS.timer(op="save"), obs.span(
            "store.save", num_sets=self.num_sets
        ):
            blockfile.write_block_file(path, MAGIC, header, arrays)

    @classmethod
    def load(cls, path: PathLike, mmap: bool = True) -> "SketchStore":
        """Read a store; with ``mmap`` the arrays are read-only memmaps.

        Raises :class:`SketchStoreError` on any malformed input — wrong
        magic, unsupported version, truncated header or data section, or
        violated CSR invariants — never silently returns partial data.
        """
        path = Path(path)
        header, data_start, file_size = blockfile.read_header(
            path, MAGIC, SketchStoreError, "sketch store"
        )
        version = header.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise SketchStoreError(
                f"{path}: format version {version!r} unsupported "
                f"(this build reads versions {SUPPORTED_VERSIONS})"
            )
        meta = header.get("meta")
        table = header.get("arrays")
        if not isinstance(meta, dict) or not isinstance(table, dict):
            raise SketchStoreError(f"{path}: corrupted header")
        missing = [name for name in ARRAY_NAMES if name not in table]
        if missing:
            raise SketchStoreError(f"{path}: missing arrays {missing}")
        model = str(meta.get("model", "prima"))
        if model not in MODELS:
            raise SketchStoreError(
                f"{path}: unknown sketch model {model!r} "
                f"(supported: {MODELS})"
            )
        wanted = list(ARRAY_NAMES)
        if "worlds" in table:
            wanted.append("worlds")
        elif model == "comic":
            raise SketchStoreError(
                f"{path}: comic store is missing its worlds bitmap"
            )

        with _STORE_IO_SECONDS.timer(op="load"), obs.span(
            "store.load", mmap=bool(mmap)
        ):
            arrays, mapped_bytes = blockfile.read_arrays(
                path, table, wanted, data_start, file_size,
                SketchStoreError, mmap=mmap,
            )
        _STORE_MMAP_BYTES.inc(
            mapped_bytes, mode="mmap" if mmap else "ram"
        )

        store = cls(
            fingerprint=str(meta.get("fingerprint", "")),
            num_nodes=int(meta.get("num_nodes", 0)),
            num_edges=int(meta.get("num_edges", 0)),
            max_budget=int(meta.get("max_budget", 0)),
            epsilon=float(meta.get("epsilon", 0.0)),
            ell=float(meta.get("ell", 0.0)),
            backend=str(meta.get("backend", "batched")),
            triggering=meta.get("triggering"),
            world_cursor=int(meta.get("world_cursor", 0)),
            rng_state=meta.get("rng_state"),
            model=model,
            comic=meta.get("comic"),
            **arrays,
        )
        store._validate(path)
        if store.num_sets != int(meta.get("num_sets", store.num_sets)):
            raise SketchStoreError(
                f"{path}: header num_sets disagrees with offsets array"
            )
        return store

    def _validate(self, path: PathLike) -> None:
        """Integrity checks: CSR invariants plus value-range scans.

        The range scans (min/max over members, idx_sets, seed_order) are
        O(total width) and page the data section in once at load time —
        the price of the "never silently serve garbage" contract: a
        bit-flipped member or index entry would otherwise wrap into a
        wrong-but-plausible coverage answer instead of an error.
        """
        n = self.num_nodes
        offsets = self.offsets
        if offsets.shape[0] < 1 or offsets[0] != 0:
            raise SketchStoreError(f"{path}: offsets must start at 0")
        if np.any(np.diff(offsets) < 0):
            raise SketchStoreError(f"{path}: offsets not monotone")
        if int(offsets[-1]) != self.members.shape[0]:
            raise SketchStoreError(
                f"{path}: members length {self.members.shape[0]} != "
                f"offsets[-1] == {int(offsets[-1])}"
            )
        if self.widths.shape[0] != self.num_sets:
            raise SketchStoreError(f"{path}: widths/offsets length mismatch")
        if self.idx_indptr.shape[0] != n + 1:
            raise SketchStoreError(f"{path}: inverted index not over n nodes")
        if int(self.idx_indptr[0]) != 0 or np.any(np.diff(self.idx_indptr) < 0):
            raise SketchStoreError(f"{path}: inverted indptr not monotone")
        if int(self.idx_indptr[-1]) != self.idx_sets.shape[0]:
            raise SketchStoreError(f"{path}: inverted index truncated")
        if self.idx_sets.shape[0] != self.members.shape[0]:
            raise SketchStoreError(
                f"{path}: inverted index disagrees with member log"
            )
        if self.cover_counts.shape[0] != n:
            raise SketchStoreError(f"{path}: cover_counts not over n nodes")
        for name, arr, bound in (
            ("members", self.members, n),
            ("idx_sets", self.idx_sets, self.num_sets),
            ("seed_order", self.seed_order, n),
        ):
            if arr.shape[0] and (
                int(arr.min()) < 0 or int(arr.max()) >= bound
            ):
                raise SketchStoreError(
                    f"{path}: {name} contains ids outside [0, {bound})"
                )
        if self.worlds is not None:
            if self.worlds.ndim != 2 or self.worlds.shape[1] != n:
                raise SketchStoreError(
                    f"{path}: worlds bitmap must be (num_worlds, {n}), "
                    f"got {self.worlds.shape}"
                )
        if self.model == "comic":
            required = ("q_plain", "q_boosted", "select_item")
            if not isinstance(self.comic, dict) or any(
                key not in self.comic for key in required
            ):
                raise SketchStoreError(
                    f"{path}: comic store header lacks the GAP metadata "
                    f"{required}"
                )

    # ------------------------------------------------------------------
    # Construction from live objects
    # ------------------------------------------------------------------
    @classmethod
    def from_collection(
        cls,
        graph: InfluenceGraph,
        collection,
        seed_order,
        max_budget: int,
        epsilon: float,
        ell: float,
        triggering: Optional[str] = None,
        world_cursor: int = 0,
        model: str = "prima",
        comic: Optional[dict] = None,
        worlds: Optional[np.ndarray] = None,
    ) -> "SketchStore":
        """Snapshot a live :class:`~repro.rrset.rrgen.RRCollection`.

        ``collection`` supplies the CSR arrays, inverted index and RNG
        state (via ``export_state``); widths are recomputed in one
        vectorized pass.  ``seed_order`` is the prefix-preserving ordering
        the oracle serves.
        """
        from repro.rrset.batch import rr_set_widths

        state = collection.export_state()
        members = state["members"]
        offsets = state["offsets"]
        widths = rr_set_widths(graph, members, np.diff(offsets))
        return cls(
            fingerprint=graph_fingerprint(graph),
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            max_budget=int(max_budget),
            epsilon=float(epsilon),
            ell=float(ell),
            backend=collection.backend,
            triggering=triggering,
            world_cursor=int(world_cursor),
            rng_state=state["rng_state"],
            seed_order=np.asarray(seed_order, dtype=INDEX_DTYPE),
            members=members,
            offsets=offsets,
            widths=widths,
            idx_sets=state["idx_sets"],
            idx_indptr=state["idx_indptr"],
            cover_counts=state["cover_counts"],
            model=model,
            comic=comic,
            worlds=worlds,
        )

    def restore_rng(self) -> np.random.Generator:
        """Reconstruct the sampling generator from the persisted state."""
        if self.rng_state is None:
            raise SketchStoreError(
                "store carries no RNG state (merged or legacy store); "
                "extension would break the reproducibility contract"
            )
        state = _restore_rng_state(self.rng_state)
        bit_generator = getattr(np.random, state["bit_generator"])()
        bit_generator.state = state
        return np.random.Generator(bit_generator)

    def __repr__(self) -> str:
        return (
            f"SketchStore(n={self.num_nodes}, num_sets={self.num_sets}, "
            f"max_budget={self.max_budget}, backend={self.backend!r}, "
            f"fingerprint={self.fingerprint[:12]}…)"
        )
