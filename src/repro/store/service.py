"""The online query layer over a loaded sketch store.

:class:`OracleService` answers the three §2.1 oracle query families from a
:class:`~repro.store.sketch_store.SketchStore` without any resampling:

* **seed-prefix** — ``seeds(b)`` returns the stored prefix-preserving
  ordering's first ``b`` nodes, O(b) per query;
* **spread estimation** — ``estimate_spread(S)`` computes ``n · F_R(S)``
  over the persisted estimation collection via its inverted index; with a
  memory-mapped store only the index pages the queried seeds touch are
  faulted in;
* **bundleGRD allocation** — ``allocate(b)`` runs Algorithm 1 against the
  stored seed order (no PRIMA re-run), mirroring
  :meth:`repro.rrset.oracle.InfluenceOracle.allocate`.

Answers are *identical* to the in-memory oracle the store was built from:
the seed order is persisted verbatim and the spread estimator operates on
the same RR collection, so ``OracleService.open(path, graph)`` in a fresh
process is indistinguishable — query for query — from the
``InfluenceOracle`` that produced the store (the golden contract in
``tests/test_store.py``).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.store.format import INDEX_DTYPE, WORLDS_DTYPE
from repro.store.sketch_store import SketchStore

PathLike = Union[str, Path]


class OracleService:
    """Serve influence-oracle queries from a (memory-mapped) sketch store.

    Parameters
    ----------
    store:
        A loaded :class:`SketchStore`.
    graph:
        The social network the store was built from.  Required for
        allocation queries; when given, the store's fingerprint is checked
        up front (``StaleStoreError`` on mismatch) unless ``verify=False``.
    verify:
        Disable the fingerprint check (callers that already verified).
    expect_fingerprint:
        The fingerprint the store *must* carry.  Graph-less serving paths
        (the :class:`~repro.serving.router.StoreRouter`) have no CSR to
        re-hash, but they do know which fingerprint a key was first
        opened with — passing it here closes the hole where swapping a
        well-formed store file built from a *different* graph under the
        same key would serve silently wrong answers.
    """

    def __init__(
        self,
        store: SketchStore,
        graph: Optional[InfluenceGraph] = None,
        verify: bool = True,
        expect_fingerprint: Optional[str] = None,
    ):
        if expect_fingerprint is not None and store.fingerprint != expect_fingerprint:
            from repro.store.sketch_store import StaleStoreError

            raise StaleStoreError(
                f"store carries fingerprint {store.fingerprint[:16]}… but "
                f"{expect_fingerprint[:16]}… was expected for this key; "
                "refusing to serve a swapped artifact"
            )
        if graph is not None and verify:
            store.verify_graph(graph)
        self._store = store
        self._graph = graph

    @classmethod
    def open(
        cls,
        path: PathLike,
        graph: Optional[InfluenceGraph] = None,
        mmap: bool = True,
        expect_fingerprint: Optional[str] = None,
    ) -> "OracleService":
        """Load a store file and wrap it (the one-call warm start)."""
        return cls(
            SketchStore.load(path, mmap=mmap),
            graph,
            expect_fingerprint=expect_fingerprint,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def store(self) -> SketchStore:
        """The underlying sketch store."""
        return self._store

    @property
    def model(self) -> str:
        """The sketch model served: ``"prima"`` or ``"comic"``."""
        return self._store.model

    @property
    def max_budget(self) -> int:
        """Largest budget the stored ordering serves."""
        return self._store.max_budget

    @property
    def num_sets(self) -> int:
        """Size θ of the persisted estimation collection."""
        return self._store.num_sets

    @property
    def seed_order(self) -> Tuple[int, ...]:
        """The full prefix-preserving ordering."""
        return tuple(int(v) for v in self._store.seed_order)

    def verify_graph(self, graph: InfluenceGraph) -> None:
        """Fingerprint-check the store against ``graph`` (delegates)."""
        self._store.verify_graph(graph)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def seeds(self, budget: int) -> Tuple[int, ...]:
        """Seed set for any budget ``<= max_budget`` — O(budget) per query."""
        if not 0 <= budget <= self.max_budget:
            raise ValueError(
                f"budget {budget} outside the store's range "
                f"[0, {self.max_budget}]"
            )
        return tuple(int(v) for v in self._store.seed_order[:budget])

    def coverage_fraction(self, seeds: Sequence[int]) -> float:
        """``F_R(S)`` over the persisted estimation collection."""
        store = self._store
        num_sets = store.num_sets
        if num_sets == 0:
            return 0.0
        covered = np.zeros(num_sets, dtype=WORLDS_DTYPE)
        idx_sets = store.idx_sets
        idx_indptr = store.idx_indptr
        for s in seeds:
            s = int(s)
            if not 0 <= s < store.num_nodes:
                raise IndexError(
                    f"node {s} out of range [0, {store.num_nodes})"
                )
            covered[idx_sets[idx_indptr[s] : idx_indptr[s + 1]]] = True
        return float(covered.sum()) / num_sets

    def coverage_fractions(
        self, seed_sets: Sequence[Sequence[int]]
    ) -> List[float]:
        """``F_R`` for a *batch* of queries in one vectorized scatter.

        The serving layer's coalescing path: B concurrent spread queries
        against the same store become one ``(B, θ)`` boolean scatter —
        the per-query python loop over seeds collapses into a single
        segmented gather over the inverted index.  Answers are
        byte-for-byte what B sequential :meth:`coverage_fraction` calls
        return (both sum the same boolean matrix and divide by the same
        θ), which the serving tests pin.

        Memory is ``B × θ`` bytes of scratch; the router's batcher caps
        B (``max_batch``), so a serving deployment bounds this at
        ``max_batch × θ``.
        """
        store = self._store
        num_sets = store.num_sets
        num_queries = len(seed_sets)
        if num_queries == 0:
            return []
        if num_sets == 0:
            return [0.0] * num_queries
        set_lengths = np.fromiter(
            (len(s) for s in seed_sets), count=num_queries, dtype=INDEX_DTYPE
        )
        total = int(set_lengths.sum())
        if total == 0:
            return [0.0] * num_queries
        flat_seeds = np.fromiter(
            (int(s) for seeds in seed_sets for s in seeds),
            count=total,
            dtype=INDEX_DTYPE,
        )
        if flat_seeds.size and (
            int(flat_seeds.min()) < 0 or int(flat_seeds.max()) >= store.num_nodes
        ):
            bad = flat_seeds[
                (flat_seeds < 0) | (flat_seeds >= store.num_nodes)
            ][0]
            raise IndexError(
                f"node {int(bad)} out of range [0, {store.num_nodes})"
            )
        idx_indptr = np.asarray(store.idx_indptr)
        starts = idx_indptr[flat_seeds]
        counts = idx_indptr[flat_seeds + 1] - starts
        expanded = int(counts.sum())
        covered = np.zeros((num_queries, num_sets), dtype=WORLDS_DTYPE)
        if expanded:
            # Segmented gather: positions of every (seed -> set id) pair in
            # idx_sets, all slices at once (the node_selection idiom).
            shifts = np.cumsum(counts) - counts
            flat_pos = np.repeat(starts - shifts, counts) + np.arange(expanded)
            rows = np.repeat(
                np.repeat(np.arange(num_queries), set_lengths), counts
            )
            covered[rows, np.asarray(store.idx_sets)[flat_pos]] = True
        hits = covered.sum(axis=1)
        return [float(h) / num_sets for h in hits]

    def estimate_spread(self, seeds: Sequence[int]) -> float:
        """Unbiased spread estimate ``σ(S) ≈ n · F_R(S)``."""
        return self._store.num_nodes * self.coverage_fraction(seeds)

    def spread_curve(
        self, budgets: Sequence[int]
    ) -> List[Tuple[int, float]]:
        """(budget, estimated spread) along the stored prefix ordering."""
        return [
            (int(k), self.estimate_spread(self.seeds(int(k))))
            for k in budgets
        ]

    def allocate(self, budgets: Sequence[int]):
        """Run bundleGRD against the stored ordering — no new sampling.

        Requires the service to hold the graph.  Returns a
        :class:`repro.core.bundlegrd.BundleGRDResult`.
        """
        if self._graph is None:
            raise ValueError(
                "allocation queries need the graph; construct the service "
                "with OracleService(store, graph) or open(path, graph)"
            )
        if self._store.model != "prima":
            raise ValueError(
                "bundleGRD allocation needs a PRIMA prefix-preserving "
                f"order; this is a {self._store.model!r} store (its seeds "
                "answer seed/spread queries only)"
            )
        from repro.core.bundlegrd import bundle_grd

        budgets = [int(b) for b in budgets]
        if budgets and max(budgets) > self.max_budget:
            raise ValueError(
                f"budget {max(budgets)} exceeds the store's max "
                f"{self.max_budget}"
            )
        # Pass the raw order: the store/graph pairing was fingerprint-
        # checked at construction, and re-hashing the whole CSR per
        # allocation query would defeat the cheap online phase.
        return bundle_grd(self._graph, budgets, seed_order=self.seed_order)

    def __repr__(self) -> str:
        return (
            f"OracleService(n={self._store.num_nodes}, "
            f"max_budget={self.max_budget}, num_sets={self.num_sets})"
        )
