"""The online query layer over a loaded sketch store.

:class:`OracleService` answers the three §2.1 oracle query families from a
:class:`~repro.store.sketch_store.SketchStore` without any resampling:

* **seed-prefix** — ``seeds(b)`` returns the stored prefix-preserving
  ordering's first ``b`` nodes, O(b) per query;
* **spread estimation** — ``estimate_spread(S)`` computes ``n · F_R(S)``
  over the persisted estimation collection via its inverted index; with a
  memory-mapped store only the index pages the queried seeds touch are
  faulted in;
* **bundleGRD allocation** — ``allocate(b)`` runs Algorithm 1 against the
  stored seed order (no PRIMA re-run), mirroring
  :meth:`repro.rrset.oracle.InfluenceOracle.allocate`.

Answers are *identical* to the in-memory oracle the store was built from:
the seed order is persisted verbatim and the spread estimator operates on
the same RR collection, so ``OracleService.open(path, graph)`` in a fresh
process is indistinguishable — query for query — from the
``InfluenceOracle`` that produced the store (the golden contract in
``tests/test_store.py``).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.store.format import WORLDS_DTYPE
from repro.store.sketch_store import SketchStore

PathLike = Union[str, Path]


class OracleService:
    """Serve influence-oracle queries from a (memory-mapped) sketch store.

    Parameters
    ----------
    store:
        A loaded :class:`SketchStore`.
    graph:
        The social network the store was built from.  Required for
        allocation queries; when given, the store's fingerprint is checked
        up front (``StaleStoreError`` on mismatch) unless ``verify=False``.
    verify:
        Disable the fingerprint check (callers that already verified).
    """

    def __init__(
        self,
        store: SketchStore,
        graph: Optional[InfluenceGraph] = None,
        verify: bool = True,
    ):
        if graph is not None and verify:
            store.verify_graph(graph)
        self._store = store
        self._graph = graph

    @classmethod
    def open(
        cls,
        path: PathLike,
        graph: Optional[InfluenceGraph] = None,
        mmap: bool = True,
    ) -> "OracleService":
        """Load a store file and wrap it (the one-call warm start)."""
        return cls(SketchStore.load(path, mmap=mmap), graph)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def store(self) -> SketchStore:
        """The underlying sketch store."""
        return self._store

    @property
    def model(self) -> str:
        """The sketch model served: ``"prima"`` or ``"comic"``."""
        return self._store.model

    @property
    def max_budget(self) -> int:
        """Largest budget the stored ordering serves."""
        return self._store.max_budget

    @property
    def num_sets(self) -> int:
        """Size θ of the persisted estimation collection."""
        return self._store.num_sets

    @property
    def seed_order(self) -> Tuple[int, ...]:
        """The full prefix-preserving ordering."""
        return tuple(int(v) for v in self._store.seed_order)

    def verify_graph(self, graph: InfluenceGraph) -> None:
        """Fingerprint-check the store against ``graph`` (delegates)."""
        self._store.verify_graph(graph)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def seeds(self, budget: int) -> Tuple[int, ...]:
        """Seed set for any budget ``<= max_budget`` — O(budget) per query."""
        if not 0 <= budget <= self.max_budget:
            raise ValueError(
                f"budget {budget} outside the store's range "
                f"[0, {self.max_budget}]"
            )
        return tuple(int(v) for v in self._store.seed_order[:budget])

    def coverage_fraction(self, seeds: Sequence[int]) -> float:
        """``F_R(S)`` over the persisted estimation collection."""
        store = self._store
        num_sets = store.num_sets
        if num_sets == 0:
            return 0.0
        covered = np.zeros(num_sets, dtype=WORLDS_DTYPE)
        idx_sets = store.idx_sets
        idx_indptr = store.idx_indptr
        for s in seeds:
            s = int(s)
            if not 0 <= s < store.num_nodes:
                raise IndexError(
                    f"node {s} out of range [0, {store.num_nodes})"
                )
            covered[idx_sets[idx_indptr[s] : idx_indptr[s + 1]]] = True
        return float(covered.sum()) / num_sets

    def estimate_spread(self, seeds: Sequence[int]) -> float:
        """Unbiased spread estimate ``σ(S) ≈ n · F_R(S)``."""
        return self._store.num_nodes * self.coverage_fraction(seeds)

    def spread_curve(
        self, budgets: Sequence[int]
    ) -> List[Tuple[int, float]]:
        """(budget, estimated spread) along the stored prefix ordering."""
        return [
            (int(k), self.estimate_spread(self.seeds(int(k))))
            for k in budgets
        ]

    def allocate(self, budgets: Sequence[int]):
        """Run bundleGRD against the stored ordering — no new sampling.

        Requires the service to hold the graph.  Returns a
        :class:`repro.core.bundlegrd.BundleGRDResult`.
        """
        if self._graph is None:
            raise ValueError(
                "allocation queries need the graph; construct the service "
                "with OracleService(store, graph) or open(path, graph)"
            )
        if self._store.model != "prima":
            raise ValueError(
                "bundleGRD allocation needs a PRIMA prefix-preserving "
                f"order; this is a {self._store.model!r} store (its seeds "
                "answer seed/spread queries only)"
            )
        from repro.core.bundlegrd import bundle_grd

        budgets = [int(b) for b in budgets]
        if budgets and max(budgets) > self.max_budget:
            raise ValueError(
                f"budget {max(budgets)} exceeds the store's max "
                f"{self.max_budget}"
            )
        # Pass the raw order: the store/graph pairing was fingerprint-
        # checked at construction, and re-hashing the whole CSR per
        # allocation query would defeat the cheap online phase.
        return bundle_grd(self._graph, budgets, seed_order=self.seed_order)

    def __repr__(self) -> str:
        return (
            f"OracleService(n={self._store.num_nodes}, "
            f"max_budget={self.max_budget}, num_sets={self.num_sets})"
        )
