"""Offline store construction: single-stream, sharded-parallel, incremental.

Entry points, one output type:

* :func:`build_store` — the reference PRIMA path: run the same
  preprocessing an in-memory :class:`~repro.rrset.oracle.InfluenceOracle`
  performs (PRIMA with the full budget vector, then an independent
  estimation collection) and snapshot it.  For a fixed seed the persisted
  seed order and estimator arrays are byte-identical to the in-memory
  oracle's — the golden contract the serving tests pin.
* :func:`build_sharded` — index construction on all cores: the estimation
  collection is split into shards, each sampled by a process-pool worker
  from its own ``SeedSequence`` child, then merged into one flat CSR with a
  single bulk inverted-index build.  Shard results depend only on
  ``(seed, shard_id)``, so the merged store is bit-identical whatever the
  process count (including in-process execution with ``processes=0``).
  PRIMA itself stays sequential — its geometric search is adaptive — so the
  parallel win is on the θ-sized estimator, which dominates at serving
  scale.
* :func:`build_comic_store` — the GAP-aware Com-IC path (format v2): run
  the RR-SIM+/RR-CIM pipeline (IMM for the fixed item, forward adopter
  worlds, GAP KPT + θ phases) through one
  :class:`~repro.engine.EngineContext` and persist the θ-phase sketch
  together with the forward-world bitmap, the post-θ world cursor and the
  GAP coin parameters — everything a later process needs to serve the
  selection warm or extend the θ phase transparently.
* :func:`extend_store` — incremental θ-extension, dispatching on the
  store's model: restore the persisted RNG state, rebuild the live
  sampling state *around* the stored arrays (``RRCollection.from_flat``
  for PRIMA; a :class:`~repro.baselines._comic_common._GapSampler` with
  the restored world cursor and bitmap for Com-IC), generate the extra
  sets, and merge the delta into the inverted index incrementally.  The
  save/load round trip is transparent: the extension is byte-identical to
  growing the original live state by the same amount.

Every builder accepts a :class:`~repro.engine.EngineContext` (``ctx=``);
the removed legacy ``seed=``/``backend=`` kwargs raise ``TypeError``
naming the ``ctx=`` replacement.
"""

from __future__ import annotations

import functools
from typing import List, Optional

import numpy as np

from repro import obs
from repro.engine import EngineContext
from repro.engine.context import reject_legacy_kwarg
from repro.graph.digraph import InfluenceGraph
from repro.rrset.batch import rr_set_widths
from repro.rrset.oracle import InfluenceOracle
from repro.rrset.prima import prima
from repro.rrset.rrgen import (
    RRCollection,
    build_inverted_index,
    merge_inverted_index,
)
from repro.store.format import INDEX_DTYPE, WORLDS_DTYPE
from repro.store.sketch_store import SketchStore, SketchStoreError


_BUILD_SECONDS = obs.histogram(
    "repro_store_build_seconds",
    "Wall-clock of store construction and extension entry points",
    labels=("builder",),
)


def _timed_builder(name: str):
    """Bracket a builder entry point with its phase timer and span."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _BUILD_SECONDS.timer(builder=name), obs.span(
                "store.build", builder=name
            ):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def _triggering_name(triggering) -> Optional[str]:
    """Validate that a triggering argument is persistable (None/'ic'/'lt').

    Resolved :class:`~repro.diffusion.triggering.TriggeringModel`
    instances of the IC/LT families map back to their names (the engine
    context carries instances, the store header carries names).
    """
    if triggering is None or triggering in ("ic", "lt"):
        return triggering
    from repro.diffusion.triggering import (
        IndependentCascadeTriggering,
        LinearThresholdTriggering,
    )

    if isinstance(triggering, IndependentCascadeTriggering):
        return "ic"
    if isinstance(triggering, LinearThresholdTriggering):
        return "lt"
    raise SketchStoreError(
        f"sketch stores persist triggering by name ('ic' / 'lt'); got "
        f"{triggering!r} — arbitrary TriggeringModel instances cannot be "
        "reconstructed at load time"
    )


def _builder_context(
    ctx: Optional[EngineContext],
    seed: Optional[int],
    backend: Optional[str],
    triggering,
    caller: str,
) -> EngineContext:
    """The builders' context normalizer.

    Builders historically took an integer ``seed`` (default 0) and a
    ``backend`` string; both were removed with the EngineContext
    migration and now raise ``TypeError`` naming the replacement
    (``EngineContext.create(seed=..., backend=...)`` passed as ``ctx=``).
    """
    if seed is not None:
        reject_legacy_kwarg(caller, "seed=")
    if backend is not None:
        reject_legacy_kwarg(caller, "backend=")
    if ctx is not None:
        if triggering is not None:
            if ctx.triggering is not None:
                raise TypeError(
                    f"{caller}: the context already carries a triggering "
                    "model; pass either ctx= or triggering=, not both"
                )
            return ctx.with_triggering(triggering)
        return ctx
    return EngineContext.create(seed=0, triggering=triggering)


@_timed_builder("build_store")
def build_store(
    graph: InfluenceGraph,
    max_budget: int,
    *,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: Optional[int] = None,
    estimation_rr_sets: int = 10_000,
    triggering: Optional[str] = None,
    backend: Optional[str] = None,
    ctx: Optional[EngineContext] = None,
) -> SketchStore:
    """Build a store by running the in-memory oracle's preprocessing.

    Equivalent to ``InfluenceOracle(graph, max_budget, ..., ctx=ctx)``
    followed by a snapshot: same PRIMA run, same estimation collection,
    same RNG stream — so a loaded store answers every query with the
    in-memory oracle's exact numbers.  Without ``ctx`` the builder uses
    the seed-0 lineage (the historical default).
    """
    ctx = _builder_context(ctx, seed, backend, triggering, "build_store")
    # Fail fast on unpersistable triggering models (before the PRIMA run).
    _triggering_name(
        triggering if triggering is not None else ctx.triggering
    )
    oracle = InfluenceOracle(
        graph,
        max_budget,
        epsilon=epsilon,
        ell=ell,
        estimation_rr_sets=estimation_rr_sets,
        ctx=ctx,
    )
    return oracle.to_store()


@_timed_builder("build_sharded")
def build_sharded(
    graph: InfluenceGraph,
    max_budget: int,
    *,
    num_shards: int = 4,
    processes: Optional[int] = None,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: Optional[int] = None,
    estimation_rr_sets: int = 10_000,
    triggering: Optional[str] = None,
    backend: Optional[str] = None,
    ctx: Optional[EngineContext] = None,
) -> SketchStore:
    """Build a store with the estimation collection sampled in parallel.

    ``estimation_rr_sets`` is split near-evenly over ``num_shards`` shards;
    each shard samples from its own ``SeedSequence`` child (streams are
    independent by construction), so the result is deterministic in
    ``(seed, num_shards)`` and independent of ``processes`` — ``0`` runs
    the shards in-process (useful for tests and as a fallback where
    process pools are unavailable), ``k > 1`` fans them over the
    persistent shared-memory pool (:mod:`repro.parallel`: the graph's CSR
    arrays are published into shared memory once and workers attach
    zero-copy, so repeated builds against the same graph pay neither
    worker spawn nor graph transfer).  ``None`` uses the pool's current
    configuration (``$REPRO_PARALLEL_PROCESSES`` > effective cores).

    The context must carry a ``SeedSequence`` lineage (construct it from an
    integer seed): shard streams are its spawned children.  The sharded
    estimator necessarily consumes different randomness than
    :func:`build_store`'s single stream: stores from the two builders are
    *statistically* equivalent, not byte-identical.  The persisted RNG
    state is a dedicated extension child, so :func:`extend_store` remains
    deterministic on sharded stores too.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if estimation_rr_sets < 0:
        raise ValueError(
            f"estimation_rr_sets must be non-negative, got {estimation_rr_sets}"
        )
    ctx = _builder_context(ctx, seed, backend, triggering, "build_sharded")
    if not ctx.has_lineage:
        raise ValueError(
            "build_sharded needs a seed-rooted EngineContext (integer "
            "seed): shard streams are SeedSequence children of the root"
        )
    name = _triggering_name(
        triggering if triggering is not None else ctx.triggering
    )
    backend = ctx.backend
    # children[0]: PRIMA; [1..num_shards]: shards; [-1]: extension stream.
    children = ctx.seed_seq.spawn(num_shards + 2)

    n = graph.num_nodes
    capped = min(int(max_budget), n)
    if capped <= 0:
        raise ValueError(f"max_budget must be positive, got {max_budget}")
    prima_result = prima(
        graph,
        list(range(capped, 0, -1)),
        epsilon=epsilon,
        ell=ell,
        ctx=EngineContext.create(
            backend=backend,
            rng=np.random.default_rng(children[0]),
            triggering=name,
        ),
    )

    base, extra = divmod(int(estimation_rr_sets), num_shards)
    counts = [base + (1 if i < extra else 0) for i in range(num_shards)]
    jobs = [
        (children[1 + i], counts[i], name, backend)
        for i in range(num_shards)
        if counts[i] > 0
    ]
    from repro.parallel import get_pool

    parts = get_pool(processes).map_shards(
        "rr_shard", graph, jobs, triggering=ctx.triggering
    )

    member_parts: List[np.ndarray] = [p[0] for p in parts]
    length_parts: List[np.ndarray] = [p[1] for p in parts]
    members = (
        np.concatenate(member_parts)
        if member_parts
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    lengths = (
        np.concatenate(length_parts)
        if length_parts
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    offsets = np.zeros(lengths.shape[0] + 1, dtype=INDEX_DTYPE)
    np.cumsum(lengths, out=offsets[1:])
    idx_sets, idx_indptr = build_inverted_index(members, offsets, n)

    from repro.graph.io import graph_fingerprint

    return SketchStore(
        fingerprint=graph_fingerprint(graph),
        num_nodes=n,
        num_edges=graph.num_edges,
        max_budget=capped,
        epsilon=float(epsilon),
        ell=float(ell),
        backend=backend,
        triggering=name,
        world_cursor=0,
        rng_state=np.random.default_rng(children[-1]).bit_generator.state,
        seed_order=np.asarray(prima_result.seeds, dtype=INDEX_DTYPE),
        members=members,
        offsets=offsets,
        widths=rr_set_widths(graph, members, lengths),
        idx_sets=idx_sets,
        idx_indptr=idx_indptr,
        cover_counts=np.bincount(members, minlength=n),
    )


# ----------------------------------------------------------------------
# Com-IC (GAP-aware) sketch stores — format v2
# ----------------------------------------------------------------------
def _comic_meta(model, state, select_item, fixed_seeds, extra) -> dict:
    """The ``comic`` header block: GAP params + run bookkeeping."""
    meta = {
        "q_a_empty": float(model.q_a_empty),
        "q_a_given_b": float(model.q_a_given_b),
        "q_b_empty": float(model.q_b_empty),
        "q_b_given_a": float(model.q_b_given_a),
        "q_plain": float(state.q_plain),
        "q_boosted": float(state.q_boosted),
        "select_item": int(select_item),
        "fixed_seeds": [int(v) for v in fixed_seeds],
        "kpt": float(state.kpt),
        "kpt_sets": int(state.kpt_sets),
        "covered": int(state.covered),
    }
    meta.update(extra)
    return meta


@_timed_builder("build_comic_store")
def build_comic_store(
    graph: InfluenceGraph,
    model,
    budget: int,
    *,
    select_item: int = 0,
    fixed_seeds=None,
    fixed_budget: Optional[int] = None,
    epsilon: float = 0.5,
    ell: float = 1.0,
    num_forward_worlds: int = 20,
    extra_forward_pass: bool = False,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    ctx: Optional[EngineContext] = None,
) -> SketchStore:
    """Build a GAP-aware Com-IC sketch store (RR-SIM+ / RR-CIM pipeline).

    Runs exactly the pipeline :func:`repro.baselines.rr_sim.rr_sim_plus`
    (``extra_forward_pass=False``) or :func:`repro.baselines.rr_cim.rr_cim`
    (``True``) runs for ``select_item``: when ``fixed_seeds`` is ``None``
    the other item's seeds come from an IMM call on the same context
    stream (budget ``fixed_budget``, default ``budget``), then the forward
    worlds, the GAP KPT phase and the θ phase all consume the one context.
    For a fixed seed the persisted seeds are byte-identical to the
    in-memory baseline's ``seeds_selected_item`` — the golden serving
    contract for Com-IC stores.

    The snapshot keeps the θ-phase GAP collection, the forward-world
    bitmap, the post-θ world cursor and the RNG state, so
    :func:`extend_store` continues the θ phase exactly where the build
    stopped.
    """
    from repro.baselines._comic_common import comic_rr_sketch
    from repro.rrset.imm import imm

    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    ctx = _builder_context(ctx, seed, backend, None, "build_comic_store")
    if ctx.triggering is not None:
        raise SketchStoreError(
            "comic stores sample under the Com-IC GAP model; a context "
            "carrying a triggering model is not supported (its effect on "
            "the IMM phase could not be recorded in the store header)"
        )
    if fixed_seeds is None:
        want = fixed_budget if fixed_budget is not None else budget
        fixed_seeds = imm(
            graph, int(want), epsilon=epsilon, ell=ell, ctx=ctx
        ).seeds
    state = comic_rr_sketch(
        graph,
        model,
        select_item,
        fixed_seeds,
        int(budget),
        epsilon,
        ell,
        ctx,
        num_forward_worlds,
        extra_forward_pass,
    )
    n = graph.num_nodes
    idx_sets, idx_indptr = build_inverted_index(
        state.members, state.offsets, n
    )
    lengths = np.diff(state.offsets)

    from repro.graph.io import graph_fingerprint

    return SketchStore(
        fingerprint=graph_fingerprint(graph),
        num_nodes=n,
        num_edges=graph.num_edges,
        max_budget=min(int(budget), n),
        epsilon=float(epsilon),
        ell=float(ell),
        backend=ctx.backend,
        triggering=None,
        world_cursor=int(state.world_cursor),
        rng_state=ctx.rng.bit_generator.state,
        seed_order=np.asarray(state.seeds, dtype=INDEX_DTYPE),
        members=np.asarray(state.members, dtype=INDEX_DTYPE),
        offsets=np.asarray(state.offsets, dtype=INDEX_DTYPE),
        widths=rr_set_widths(graph, state.members, lengths),
        idx_sets=idx_sets,
        idx_indptr=idx_indptr,
        cover_counts=np.bincount(
            state.members, minlength=n
        ).astype(INDEX_DTYPE),
        model="comic",
        comic=_comic_meta(
            model,
            state,
            select_item,
            fixed_seeds,
            {
                "num_forward_worlds": int(num_forward_worlds),
                "extra_forward_pass": bool(extra_forward_pass),
                "theta": int(state.theta),
            },
        ),
        worlds=np.asarray(state.worlds_bitmap, dtype=WORLDS_DTYPE),
    )


def _extend_comic(
    store: SketchStore,
    graph: InfluenceGraph,
    add: int,
    backend: Optional[str],
) -> SketchStore:
    """Com-IC θ-extension: restore sampler state, sample, re-select.

    Rebuilds the :class:`~repro.baselines._comic_common._GapSampler`
    around the persisted RNG state, world cursor and forward-world bitmap,
    draws ``add`` more GAP RR sets (byte-identical to uninterrupted
    growth), merges the delta into the inverted index incrementally, and
    re-runs greedy max coverage on the grown collection so the stored
    seeds stay the selection the full sketch implies.
    """
    from repro.baselines._comic_common import (
        _GapSampler,
        bitmap_to_worlds,
    )
    from repro.rrset.node_selection import greedy_max_coverage

    comic = store.comic or {}
    rng = store.restore_rng()
    # create() validates the backend (legacy overrides and persisted
    # headers alike) and seeds the cursor at the persisted position.
    ctx = EngineContext.create(
        backend=backend if backend is not None else store.backend,
        rng=rng,
        world_cursor=int(store.world_cursor),
    )
    sampler = _GapSampler(
        graph,
        q_plain=float(comic["q_plain"]),
        q_boosted=float(comic["q_boosted"]),
        ctx=ctx,
    )
    bitmap = np.asarray(store.worlds, dtype=WORLDS_DTYPE)
    if ctx.is_batched:
        sampler.set_worlds(bitmap)
    else:
        sampler.set_worlds(bitmap_to_worlds(bitmap))

    delta_members, delta_lengths = sampler.sample(int(add))
    old_members = np.asarray(store.members, dtype=INDEX_DTYPE)
    members = np.concatenate([old_members, delta_members])
    lengths = np.concatenate(
        [np.diff(store.offsets), delta_lengths]
    ).astype(INDEX_DTYPE)
    offsets = np.zeros(lengths.shape[0] + 1, dtype=INDEX_DTYPE)
    np.cumsum(lengths, out=offsets[1:])

    n = graph.num_nodes
    # Delta-only bookkeeping: widths and cover counts append/add the new
    # sets instead of re-scanning the whole grown collection.
    widths = np.concatenate(
        [
            np.asarray(store.widths, dtype=INDEX_DTYPE),
            rr_set_widths(graph, delta_members, delta_lengths),
        ]
    )
    cover_counts = np.asarray(
        store.cover_counts, dtype=INDEX_DTYPE
    ) + np.bincount(delta_members, minlength=n)
    delta_offsets = np.zeros(delta_lengths.shape[0] + 1, dtype=INDEX_DTYPE)
    np.cumsum(delta_lengths, out=delta_offsets[1:])
    delta_idx, delta_indptr = build_inverted_index(
        delta_members, delta_offsets, n
    )
    delta_idx += store.num_sets
    idx_sets, idx_indptr = merge_inverted_index(
        np.asarray(store.idx_sets, dtype=INDEX_DTYPE),
        np.asarray(store.idx_indptr, dtype=INDEX_DTYPE),
        delta_idx,
        delta_indptr,
    )

    seeds, covered = greedy_max_coverage(
        n, members, offsets, min(store.max_budget, n)
    )
    comic = dict(comic)
    comic["covered"] = int(covered)
    # θ is the size of the (now grown) θ-phase collection; keep the
    # header consistent with the arrays so covered/θ stays a fraction.
    comic["theta"] = int(lengths.shape[0])
    return store.replace_arrays(
        world_cursor=sampler.used,
        rng_state=ctx.rng.bit_generator.state,
        seed_order=np.asarray(seeds, dtype=INDEX_DTYPE),
        members=members,
        offsets=offsets,
        widths=widths,
        idx_sets=idx_sets,
        idx_indptr=idx_indptr,
        cover_counts=cover_counts,
        comic=comic,
        worlds=bitmap,
        backend=ctx.backend,
    )


@_timed_builder("extend_store")
def extend_store(
    store: SketchStore,
    graph: InfluenceGraph,
    add: int,
    *,
    # repro-lint: disable=RL002 documented persisted-state override, see docstring
    backend: Optional[str] = None,
) -> SketchStore:
    """Grow a loaded store by ``add`` RR sets without regenerating.

    Restores the persisted RNG state, wraps the stored arrays in live
    sampling state (an :class:`~repro.rrset.rrgen.RRCollection` for PRIMA
    stores, a GAP sampler with the persisted world cursor and bitmap for
    Com-IC stores; copy-on-load — the source store/file is untouched),
    samples the extra sets, and merges the delta into the inverted index
    incrementally.  Returns a new :class:`SketchStore`; callers persist it
    with ``save``.

    Continuing the persisted stream (and, for Com-IC, the persisted world
    cursor) makes the round trip *transparent*: save → load →
    ``extend_store(Δ)`` produces byte-for-byte the arrays that growing the
    live state by Δ (no save/load) would have.  (It is not byte-identical
    to building with θ+Δ up front — the batched sampler consumes
    randomness per generation call — only statistically equivalent, like
    any two growth schedules.)

    Unlike the builders, this function takes no ``ctx``: the execution
    state an extension must use — RNG stream, world cursor, and by
    default the backend — *is the persisted state*, so accepting a
    context would only invite silently ignoring most of it.  ``backend``
    remains a first-class explicit override of the persisted backend
    (e.g. to continue a sequential store batched; doing so trades the
    byte-identity guarantee for speed, deliberately and visibly).
    """
    if add < 0:
        raise ValueError(f"add must be non-negative, got {add}")
    store.verify_graph(graph)
    if store.model == "comic":
        return _extend_comic(store, graph, add, backend)
    from repro.diffusion.triggering import resolve_triggering

    trig = (
        resolve_triggering(store.triggering)
        if store.triggering is not None
        else None
    )
    rng = store.restore_rng()
    collection = RRCollection.from_flat(
        graph,
        rng,
        store.members,
        store.offsets,
        index=(store.idx_sets, store.idx_indptr),
        triggering=trig,
        backend=backend if backend is not None else store.backend,
    )
    collection.generate(int(add))
    return SketchStore.from_collection(
        graph,
        collection,
        store.seed_order,
        max_budget=store.max_budget,
        epsilon=store.epsilon,
        ell=store.ell,
        triggering=store.triggering,
        world_cursor=store.world_cursor,
    )
