"""Offline store construction: single-stream, sharded-parallel, incremental.

Three entry points, one output type:

* :func:`build_store` — the reference path: run the same preprocessing an
  in-memory :class:`~repro.rrset.oracle.InfluenceOracle` performs (PRIMA
  with the full budget vector, then an independent estimation collection)
  and snapshot it.  For a fixed seed the persisted seed order and estimator
  arrays are byte-identical to the in-memory oracle's — the golden contract
  the serving tests pin.
* :func:`build_sharded` — index construction on all cores: the estimation
  collection is split into shards, each sampled by a process-pool worker
  from its own ``SeedSequence`` child, then merged into one flat CSR with a
  single bulk inverted-index build.  Shard results depend only on
  ``(seed, shard_id)``, so the merged store is bit-identical whatever the
  process count (including in-process execution with ``processes=0``).
  PRIMA itself stays sequential — its geometric search is adaptive — so the
  parallel win is on the θ-sized estimator, which dominates at serving
  scale.
* :func:`extend_store` — incremental θ-extension: restore the persisted
  RNG state, rebuild a live collection *around* the stored arrays
  (:meth:`~repro.rrset.rrgen.RRCollection.from_flat`), generate the extra
  sets with the batched sampler, and merge the delta into the inverted
  index incrementally.  The save/load round trip is transparent: the
  extension is byte-identical to growing the original live collection by
  the same amount.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.rrset.batch import resolve_backend, rr_set_widths
from repro.rrset.oracle import InfluenceOracle
from repro.rrset.prima import prima
from repro.rrset.rrgen import RRCollection, build_inverted_index
from repro.store.sketch_store import SketchStore, SketchStoreError


def _triggering_name(triggering) -> Optional[str]:
    """Validate that a triggering argument is persistable (None/'ic'/'lt')."""
    if triggering is None or triggering in ("ic", "lt"):
        return triggering
    raise SketchStoreError(
        f"sketch stores persist triggering by name ('ic' / 'lt'); got "
        f"{triggering!r} — arbitrary TriggeringModel instances cannot be "
        "reconstructed at load time"
    )


def build_store(
    graph: InfluenceGraph,
    max_budget: int,
    *,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    estimation_rr_sets: int = 10_000,
    triggering: Optional[str] = None,
    backend: Optional[str] = None,
) -> SketchStore:
    """Build a store by running the in-memory oracle's preprocessing.

    Equivalent to ``InfluenceOracle(graph, max_budget, ...,
    rng=default_rng(seed))`` followed by a snapshot: same PRIMA run, same
    estimation collection, same RNG stream — so a loaded store answers
    every query with the in-memory oracle's exact numbers.
    """
    name = _triggering_name(triggering)
    oracle = InfluenceOracle(
        graph,
        max_budget,
        epsilon=epsilon,
        ell=ell,
        rng=np.random.default_rng(seed),
        estimation_rr_sets=estimation_rr_sets,
        triggering=name,
        backend=backend,
    )
    return oracle.to_store()


#: Per-worker graph, installed once by the pool initializer so the CSR
#: arrays are pickled once per *worker* instead of once per shard job.
_worker_graph: Optional[InfluenceGraph] = None


def _init_worker(graph: InfluenceGraph) -> None:
    global _worker_graph
    _worker_graph = graph


def _sample_shard(
    graph: InfluenceGraph,
    seed_seq: np.random.SeedSequence,
    count: int,
    triggering: Optional[str],
    backend: Optional[str],
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample one shard's RR sets; returns flat ``(members, lengths)``."""
    from repro.diffusion.triggering import resolve_triggering

    trig = resolve_triggering(triggering) if triggering is not None else None
    collection = RRCollection(
        graph,
        np.random.default_rng(seed_seq),
        triggering=trig,
        backend=backend,
    )
    collection.extend_to(count)
    members, offsets = collection.flat_arrays()
    return members.copy(), np.diff(offsets)


def _sample_shard_pooled(
    args: Tuple[np.random.SeedSequence, int, Optional[str], Optional[str]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Pool entry point: one tuple for ``map``, graph from the initializer.

    Module-level for pickling.
    """
    return _sample_shard(_worker_graph, *args)


def build_sharded(
    graph: InfluenceGraph,
    max_budget: int,
    *,
    num_shards: int = 4,
    processes: Optional[int] = None,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    estimation_rr_sets: int = 10_000,
    triggering: Optional[str] = None,
    backend: Optional[str] = None,
) -> SketchStore:
    """Build a store with the estimation collection sampled in parallel.

    ``estimation_rr_sets`` is split near-evenly over ``num_shards`` shards;
    each shard samples from its own ``SeedSequence`` child (streams are
    independent by construction), so the result is deterministic in
    ``(seed, num_shards)`` and independent of ``processes`` — ``0``/``None``
    runs the shards in-process (useful for tests and as a fallback where
    process pools are unavailable), ``k > 1`` fans them over a pool.

    The sharded estimator necessarily consumes different randomness than
    :func:`build_store`'s single stream: stores from the two builders are
    *statistically* equivalent, not byte-identical.  The persisted RNG
    state is a dedicated extension child, so :func:`extend_store` remains
    deterministic on sharded stores too.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if estimation_rr_sets < 0:
        raise ValueError(
            f"estimation_rr_sets must be non-negative, got {estimation_rr_sets}"
        )
    name = _triggering_name(triggering)
    backend = resolve_backend(backend)
    root = np.random.SeedSequence(seed)
    # children[0]: PRIMA; [1..num_shards]: shards; [-1]: extension stream.
    children = root.spawn(num_shards + 2)

    n = graph.num_nodes
    capped = min(int(max_budget), n)
    if capped <= 0:
        raise ValueError(f"max_budget must be positive, got {max_budget}")
    prima_result = prima(
        graph,
        list(range(capped, 0, -1)),
        epsilon=epsilon,
        ell=ell,
        rng=np.random.default_rng(children[0]),
        triggering=name,
        backend=backend,
    )

    base, extra = divmod(int(estimation_rr_sets), num_shards)
    counts = [base + (1 if i < extra else 0) for i in range(num_shards)]
    jobs = [
        (children[1 + i], counts[i], name, backend)
        for i in range(num_shards)
        if counts[i] > 0
    ]
    if processes and processes > 1 and len(jobs) > 1:
        with ProcessPoolExecutor(
            max_workers=min(int(processes), len(jobs)),
            initializer=_init_worker,
            initargs=(graph,),
        ) as pool:
            parts = list(pool.map(_sample_shard_pooled, jobs))
    else:
        parts = [_sample_shard(graph, *job) for job in jobs]

    member_parts: List[np.ndarray] = [p[0] for p in parts]
    length_parts: List[np.ndarray] = [p[1] for p in parts]
    members = (
        np.concatenate(member_parts)
        if member_parts
        else np.empty(0, dtype=np.int64)
    )
    lengths = (
        np.concatenate(length_parts)
        if length_parts
        else np.empty(0, dtype=np.int64)
    )
    offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    idx_sets, idx_indptr = build_inverted_index(members, offsets, n)

    from repro.graph.io import graph_fingerprint

    return SketchStore(
        fingerprint=graph_fingerprint(graph),
        num_nodes=n,
        num_edges=graph.num_edges,
        max_budget=capped,
        epsilon=float(epsilon),
        ell=float(ell),
        backend=backend,
        triggering=name,
        world_cursor=0,
        rng_state=np.random.default_rng(children[-1]).bit_generator.state,
        seed_order=np.asarray(prima_result.seeds, dtype=np.int64),
        members=members,
        offsets=offsets,
        widths=rr_set_widths(graph, members, lengths),
        idx_sets=idx_sets,
        idx_indptr=idx_indptr,
        cover_counts=np.bincount(members, minlength=n),
    )


def extend_store(
    store: SketchStore,
    graph: InfluenceGraph,
    add: int,
    *,
    backend: Optional[str] = None,
) -> SketchStore:
    """Grow a loaded store by ``add`` RR sets without regenerating.

    Restores the persisted RNG state, wraps the stored arrays in a live
    :class:`~repro.rrset.rrgen.RRCollection` (copy-on-load; the source
    store/file is untouched), samples the extra sets with the batched
    engine, and merges the delta into the inverted index incrementally.
    Returns a new :class:`SketchStore`; callers persist it with ``save``.

    Continuing the persisted stream makes the round trip *transparent*:
    save → load → ``extend_store(Δ)`` produces byte-for-byte the arrays
    that calling ``generate(Δ)`` on the live collection (no save/load)
    would have.  (It is not byte-identical to building with θ+Δ up front —
    the batched sampler consumes randomness per ``generate`` call — only
    statistically equivalent, like any two growth schedules.)
    """
    if add < 0:
        raise ValueError(f"add must be non-negative, got {add}")
    store.verify_graph(graph)
    from repro.diffusion.triggering import resolve_triggering

    trig = (
        resolve_triggering(store.triggering)
        if store.triggering is not None
        else None
    )
    rng = store.restore_rng()
    collection = RRCollection.from_flat(
        graph,
        rng,
        store.members,
        store.offsets,
        index=(store.idx_sets, store.idx_indptr),
        triggering=trig,
        backend=backend if backend is not None else store.backend,
    )
    collection.generate(int(add))
    return SketchStore.from_collection(
        graph,
        collection,
        store.seed_order,
        max_budget=store.max_budget,
        epsilon=store.epsilon,
        ell=store.ell,
        triggering=store.triggering,
        world_cursor=store.world_cursor,
    )
