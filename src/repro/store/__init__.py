"""Persistent RR-sketch store and influence-oracle serving layer.

The paper's §2.1 motivates PRIMA as an *influence oracle* (à la SKIM):
preprocess once, answer budget/seed/spread queries forever.  This package
supplies the missing persistence half of that split — an offline compiled
artifact plus a cheap online query phase:

* :class:`~repro.store.sketch_store.SketchStore` — the on-disk,
  memory-mapped sketch format: an :class:`~repro.rrset.rrgen.RRCollection`'s
  flat CSR arrays, inverted index, per-set widths and world cursor, plus a
  graph-fingerprint + engine-metadata header with versioned load and
  stale-store detection.
* :func:`~repro.store.builder.build_store` /
  :func:`~repro.store.builder.build_sharded` — offline construction, the
  latter fanning RR generation across a process pool with per-shard
  ``SeedSequence`` children.
* :func:`~repro.store.builder.build_comic_store` — offline construction of
  GAP-aware Com-IC sketches (format v2): the RR-SIM+/RR-CIM pipeline's
  θ-phase collection plus the forward-world bitmap and world cursor, so
  RR-SIM+/RR-CIM selections serve warm from mmap exactly like PRIMA.
* :func:`~repro.store.builder.extend_store` — incremental θ-extension: a
  loaded store grows more RR sets through the batched sampler (append to
  CSR + incremental inverted-index merge) instead of regenerating.
* :class:`~repro.store.service.OracleService` — the online query layer:
  seed-prefix, spread-estimation and bundleGRD-allocation queries against a
  loaded (typically memory-mapped) store.

Exposed on the command line as ``repro oracle build|extend|query``.
"""

from repro.store.builder import (
    build_comic_store,
    build_sharded,
    build_store,
    extend_store,
)
from repro.store.service import OracleService
from repro.store.sketch_store import (
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    SketchStore,
    SketchStoreError,
    StaleStoreError,
)

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "OracleService",
    "SketchStore",
    "SketchStoreError",
    "StaleStoreError",
    "build_comic_store",
    "build_sharded",
    "build_store",
    "extend_store",
]
