"""The shared on-disk container under sketch stores and graph files.

Both persistent artifact families in this codebase — the RR-sketch store
(``.sketch``, :mod:`repro.store.sketch_store`) and the mmap'd CSR graph
(``.graph``, :mod:`repro.graph.bigcsr`) — use one physical layout::

    bytes 0..7     an 8-byte magic
    bytes 8..15    uint64 header length H
    bytes 16..16+H JSON header (utf-8)
    ...            zero padding to the next 64-byte boundary
    data section   the arrays, each starting on a 64-byte boundary

The JSON header carries ``format_version``, a caller-defined ``meta``
object, and an ``arrays`` table mapping each array name to its dtype,
shape and byte offset *relative to the data section* — relative offsets
keep the table independent of the header's own serialized length.

This module owns the layout mechanics exactly once: aligned-offset
assignment, the atomic temp-file write, magic/length/offset validation,
and the mmap-or-materialize array read.  Format *semantics* (which
arrays, which versions, which metadata) stay with the callers; they pass
an ``error`` exception class so every failure surfaces as the caller's
own domain error with the caller's file in the message.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Tuple, Type, Union

import numpy as np

from repro.store.format import (
    HEADER_LEN_DTYPE,
    INDEX_DTYPE,
    align_up,
)

PathLike = Union[str, Path]

__all__ = [
    "array_table",
    "read_arrays",
    "read_header",
    "write_block_file",
]


def array_table(arrays: Dict[str, np.ndarray]) -> Dict[str, dict]:
    """The header's ``arrays`` table: dtype/shape/relative offset each.

    Offsets are assigned in insertion order, each rounded up to the next
    alignment boundary.  The arrays must already be contiguous and in
    their final on-disk dtype.
    """
    table: Dict[str, dict] = {}
    cursor = 0
    for name, arr in arrays.items():
        cursor = align_up(cursor)
        table[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": cursor,
        }
        cursor += arr.nbytes
    return table


def write_block_file(
    path: PathLike,
    magic: bytes,
    header: dict,
    arrays: Dict[str, np.ndarray],
) -> None:
    """Serialize ``header`` + ``arrays`` atomically under ``magic``.

    ``header["arrays"]`` must be the :func:`array_table` of ``arrays``.
    The write goes to a temp file next to the target and is renamed into
    place, so saving over a file the caller has memory-mapped is safe
    (the source pages stay valid until the atomic replace) and readers
    never observe a half-written artifact.
    """
    table = header["arrays"]
    blob = json.dumps(header, separators=(",", ":")).encode()
    data_start = align_up(16 + len(blob))
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as f:
        f.write(magic)
        f.write(np.array([len(blob)], dtype=HEADER_LEN_DTYPE).tobytes())
        f.write(blob)
        f.write(b"\0" * (data_start - 16 - len(blob)))
        for name, arr in arrays.items():
            pad = data_start + table[name]["offset"] - f.tell()
            f.write(b"\0" * pad)
            f.write(arr.tobytes())
    os.replace(tmp_path, path)


def read_header(
    path: PathLike,
    magic: bytes,
    error: Type[Exception],
    kind: str,
) -> Tuple[dict, int, int]:
    """Validate magic + header; returns ``(header, data_start, file_size)``.

    ``kind`` names the artifact family in error messages ("sketch
    store", "graph file").  Raises ``error`` on a missing file, wrong
    magic, truncated or unparseable header — never returns partial data.
    """
    path = Path(path)
    try:
        file_size = path.stat().st_size
    except OSError as exc:
        raise error(f"cannot read {kind}: {exc}") from exc
    with open(path, "rb") as f:
        prefix = f.read(16)
        if len(prefix) < 16 or prefix[:8] != magic:
            raise error(f"{path} is not a {kind} (bad magic)")
        header_len = int(
            np.frombuffer(prefix[8:16], dtype=HEADER_LEN_DTYPE)[0]
        )
        if 16 + header_len > file_size:
            raise error(f"{path}: truncated header")
        blob = f.read(header_len)
    try:
        header = json.loads(blob.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise error(f"{path}: corrupted header") from exc
    if not isinstance(header, dict):
        raise error(f"{path}: corrupted header")
    return header, align_up(16 + header_len), file_size


def read_arrays(
    path: PathLike,
    table: Dict[str, dict],
    names: Iterable[str],
    data_start: int,
    file_size: int,
    error: Type[Exception],
    mmap: bool = True,
) -> Tuple[Dict[str, np.ndarray], int]:
    """Load the named arrays; returns ``(arrays, total_bytes)``.

    With ``mmap`` each non-empty array is a read-only ``np.memmap`` view
    over the file; otherwise arrays are materialized in RAM.  An array
    extending past EOF raises ``error`` (a truncated data section).
    """
    arrays: Dict[str, np.ndarray] = {}
    total = 0
    for name in names:
        spec = table[name]
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(s) for s in spec["shape"])
        offset = data_start + int(spec["offset"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=INDEX_DTYPE))
        if offset < data_start or offset + nbytes > file_size:
            raise error(
                f"{path}: truncated data section (array {name!r} "
                f"extends past end of file)"
            )
        if mmap and nbytes > 0:
            arr = np.memmap(
                path, dtype=dtype, mode="r", offset=offset, shape=shape
            )
        else:
            with open(path, "rb") as f:
                f.seek(offset)
                arr = np.frombuffer(f.read(nbytes), dtype=dtype).reshape(
                    shape
                )
        arrays[name] = arr
        total += nbytes
    return arrays, total
