"""Central constants of the on-disk sketch-store format (DESIGN.md §4).

Every dtype, magic, and alignment literal the store layer writes or reads
is defined HERE and only here — ``repro lint`` rule RL004 flags inline
``np.int64``-style dtype literals anywhere else under ``repro.store``, so
a format change is a one-file edit that cannot silently drift between the
writer (:mod:`repro.store.sketch_store`), the builders
(:mod:`repro.store.builder`) and the serving layer
(:mod:`repro.store.service`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ALIGN",
    "ARRAY_NAMES",
    "FORMAT_VERSION",
    "HEADER_LEN_DTYPE",
    "INDEX_DTYPE",
    "MAGIC",
    "MODELS",
    "SUPPORTED_VERSIONS",
    "WORLDS_DTYPE",
    "align_up",
]

#: File magic; the trailing byte doubles as a format generation marker.
MAGIC = b"REPROSKT"

#: On-disk format version this build writes by default.
FORMAT_VERSION = 2

#: Format versions this build reads (v1: PRIMA-only stores without the
#: ``model`` discriminator or the ``worlds`` bitmap — forward-compat pinned).
SUPPORTED_VERSIONS = (1, 2)

#: Arrays start on multiples of this within the data section (and the data
#: section itself starts on the first such boundary past the header).
ALIGN = 64

#: The arrays every influence-oracle store persists, in canonical order.
ARRAY_NAMES = (
    "seed_order",
    "members",
    "offsets",
    "widths",
    "idx_sets",
    "idx_indptr",
    "cover_counts",
)

#: Recognized sketch models: ``prima`` (plain-IC/LT influence oracle) and
#: ``comic`` (GAP-aware Com-IC sketches of RR-SIM+/RR-CIM, format v2+).
MODELS = ("prima", "comic")

#: Element type of every id/count/offset array (members, offsets, widths,
#: inverted index, cover counts, seed order).
INDEX_DTYPE = np.int64

#: Element type of the ``(num_worlds, n)`` forward-adopter bitmap.
WORLDS_DTYPE = np.bool_

#: The little-endian uint64 header-length field at bytes 8..15.
HEADER_LEN_DTYPE = "<u8"


def align_up(offset: int) -> int:
    """Round ``offset`` up to the next :data:`ALIGN` boundary."""
    return (offset + ALIGN - 1) // ALIGN * ALIGN
