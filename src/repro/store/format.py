"""Central constants of the on-disk sketch-store format (DESIGN.md §4).

Every dtype, magic, and alignment literal the store layer writes or reads
is defined HERE and only here — ``repro lint`` rule RL004 flags inline
``np.int64``-style dtype literals anywhere else under ``repro.store``, so
a format change is a one-file edit that cannot silently drift between the
writer (:mod:`repro.store.sketch_store`), the builders
(:mod:`repro.store.builder`) and the serving layer
(:mod:`repro.store.service`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ALIGN",
    "ARRAY_NAMES",
    "FORMAT_VERSION",
    "GRAPH_ARRAY_NAMES",
    "GRAPH_FORMAT_VERSION",
    "GRAPH_MAGIC",
    "GRAPH_SUPPORTED_VERSIONS",
    "HEADER_LEN_DTYPE",
    "INDEX_DTYPE",
    "MAGIC",
    "MODELS",
    "NARROW_INDEX_DTYPE",
    "PROB_DTYPE",
    "SUPPORTED_VERSIONS",
    "WORLDS_DTYPE",
    "align_up",
    "canonical_index_array",
]

#: File magic; the trailing byte doubles as a format generation marker.
MAGIC = b"REPROSKT"

#: On-disk format version this build writes by default.
FORMAT_VERSION = 3

#: Format versions this build reads (v1: PRIMA-only stores without the
#: ``model`` discriminator or the ``worlds`` bitmap; v2: always-wide
#: int64 index arrays — forward-compat pinned).
SUPPORTED_VERSIONS = (1, 2, 3)

#: Arrays start on multiples of this within the data section (and the data
#: section itself starts on the first such boundary past the header).
ALIGN = 64

#: The arrays every influence-oracle store persists, in canonical order.
ARRAY_NAMES = (
    "seed_order",
    "members",
    "offsets",
    "widths",
    "idx_sets",
    "idx_indptr",
    "cover_counts",
)

#: Recognized sketch models: ``prima`` (plain-IC/LT influence oracle) and
#: ``comic`` (GAP-aware Com-IC sketches of RR-SIM+/RR-CIM, format v2+).
MODELS = ("prima", "comic")

#: Element type of every id/count/offset array (members, offsets, widths,
#: inverted index, cover counts, seed order).
INDEX_DTYPE = np.int64

#: Narrowed element type format v3+ writes for index arrays whose every
#: value fits — on graphs with ``n < 2**31`` that is all of them, halving
#: the mmap'd footprint of the member log and the inverted index.
NARROW_INDEX_DTYPE = np.int32

#: Element type of the ``(num_worlds, n)`` forward-adopter bitmap.
WORLDS_DTYPE = np.bool_

#: The little-endian uint64 header-length field at bytes 8..15.
HEADER_LEN_DTYPE = "<u8"

# ----------------------------------------------------------------------
# The mmap'd CSR graph file (``.graph``), written by repro.graph.bigcsr.
# Same container as the sketch store (magic, uint64 header length, JSON
# header, 64-byte-aligned array blocks) with its own magic and version.
# ----------------------------------------------------------------------

#: Graph-file magic (same length as :data:`MAGIC`; shares the container).
GRAPH_MAGIC = b"REPROGRF"

#: Graph-file format version this build writes and reads.
GRAPH_FORMAT_VERSION = 1

#: Graph-file versions this build reads.
GRAPH_SUPPORTED_VERSIONS = (1,)

#: The six CSR arrays of an :class:`~repro.graph.digraph.InfluenceGraph`,
#: in canonical on-disk order.  Indices stay :data:`INDEX_DTYPE` and
#: probabilities :data:`PROB_DTYPE` — the graph fingerprint hashes raw
#: array bytes, so narrowing here would silently orphan every store.
GRAPH_ARRAY_NAMES = (
    "out_indptr",
    "out_targets",
    "out_probs",
    "in_indptr",
    "in_sources",
    "in_probs",
)

#: Element type of edge-probability arrays in graph files.
PROB_DTYPE = np.float64


def align_up(offset: int) -> int:
    """Round ``offset`` up to the next :data:`ALIGN` boundary."""
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def canonical_index_array(
    arr: np.ndarray, format_version: int
) -> np.ndarray:
    """The on-disk representation of an index array under a version.

    Format v2 and earlier always persist :data:`INDEX_DTYPE`.  Format v3
    narrows to :data:`NARROW_INDEX_DTYPE` whenever every value fits —
    a pure function of the array's *values*, so save → load → save
    round-trips byte-identically and a v3-loaded (already narrow) store
    re-saves to the exact same bytes.  Arrays with any value outside the
    narrow range (a member log past 2**31 entries) stay wide.
    """
    arr = np.ascontiguousarray(arr)
    if format_version < 3:
        return np.ascontiguousarray(np.asarray(arr, dtype=INDEX_DTYPE))
    if arr.dtype == np.dtype(NARROW_INDEX_DTYPE):
        return arr
    info = np.iinfo(NARROW_INDEX_DTYPE)
    if arr.size and (
        int(arr.min()) < info.min or int(arr.max()) > info.max
    ):
        return np.ascontiguousarray(np.asarray(arr, dtype=INDEX_DTYPE))
    return arr.astype(NARROW_INDEX_DTYPE)
