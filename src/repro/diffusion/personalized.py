"""UIC with *personalized* noise — the §5 extension.

The base model samples one noise value per item per diffusion (population-
level uncertainty).  §5 proposes personalized noise — every user draws her
own noise terms — noting the approximation guarantee does not carry over.
This module implements that variant so its empirical behaviour can be
studied: each node samples a private noise world the first time it has to
make an adoption decision, and keeps it for the rest of the diffusion.

The ablation benchmark (``benchmarks/bench_ablation_personalized.py``) uses
this to show bundleGRD remains a strong heuristic under personalization even
though Theorem 2 no longer applies.

Estimation runs on the batched forward engine by default
(:func:`repro.diffusion.batch_forward.batch_simulate_uic_personalized`:
per-(world, node) noise tables sampled lazily on first contact); the
sequential simulator below stays the byte-identical reference oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.diffusion.adoption import adopt
from repro.diffusion.uic import UICResult
from repro.diffusion.worlds import LiveEdgeGraph
from repro.graph.digraph import InfluenceGraph
from repro.utility.itemsets import Mask
from repro.utility.model import UtilityModel


def simulate_uic_personalized(
    graph: InfluenceGraph,
    model: UtilityModel,
    allocation: Iterable[Tuple[int, int]],
    rng: np.random.Generator,
    edge_world: Optional[LiveEdgeGraph] = None,
) -> UICResult:
    """One UIC possible world where every node has private noise.

    Semantics match :func:`repro.diffusion.uic.simulate_uic` except that the
    utility table consulted by node ``v`` is built from ``v``'s own sampled
    noise world (drawn lazily on first contact and then fixed).
    """
    tables: Dict[int, np.ndarray] = {}

    def table_of(v: int) -> np.ndarray:
        table = tables.get(v)
        if table is None:
            table = model.utility_table(model.sample_noise_world(rng))
            tables[v] = table
        return table

    desire: Dict[int, Mask] = {}
    adopted: Dict[int, Mask] = {}
    for node, item in allocation:
        node = int(node)
        if not 0 <= node < graph.num_nodes:
            raise IndexError(f"seed node {node} outside graph")
        if not 0 <= item < model.num_items:
            raise IndexError(f"item {item} outside universe")
        desire[node] = desire.get(node, 0) | (1 << item)

    frontier: List[int] = []
    for node, wish in desire.items():
        new_adopted = adopt(table_of(node), wish, 0)
        if new_adopted:
            adopted[node] = new_adopted
            frontier.append(node)

    live_out: Dict[int, List[int]] = {}
    rounds = 1
    while frontier:
        rounds += 1
        touched: Dict[int, Mask] = {}
        for u in frontier:
            source_adopted = adopted.get(u, 0)
            if source_adopted == 0:
                continue
            if edge_world is not None:
                live_targets = [int(v) for v in edge_world.out_neighbors(u)]
            else:
                cached = live_out.get(u)
                if cached is None:
                    targets = graph.out_neighbors(u)
                    if targets.shape[0]:
                        coins = rng.random(targets.shape[0])
                        cached = [
                            int(v)
                            for v, c, p in zip(
                                targets, coins, graph.out_probabilities(u)
                            )
                            if c < p
                        ]
                    else:
                        cached = []
                    live_out[u] = cached
                live_targets = cached
            for v in live_targets:
                touched[v] = touched.get(v, 0) | source_adopted

        next_frontier: List[int] = []
        for v, incoming in touched.items():
            old_desire = desire.get(v, 0)
            new_desire = old_desire | incoming
            if new_desire == old_desire:
                continue
            desire[v] = new_desire
            old_adopted = adopted.get(v, 0)
            new_adopted = adopt(table_of(v), new_desire, old_adopted)
            if new_adopted != old_adopted:
                adopted[v] = new_adopted
                next_frontier.append(v)
        frontier = next_frontier

    welfare = float(
        sum(tables[v][mask] for v, mask in adopted.items())
    )
    return UICResult(
        desire=desire,
        adopted=adopted,
        welfare=welfare,
        rounds=rounds,
        noise_world=np.zeros(model.num_items),  # no shared world exists
    )


def estimate_welfare_personalized(
    graph: InfluenceGraph,
    model: UtilityModel,
    allocation: Iterable[Tuple[int, int]],
    num_samples: int = 200,
    rng=None,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> float:
    """MC estimate of expected welfare under personalized noise.

    The context's backend follows the engine convention (explicit >
    ``$REPRO_RR_BACKEND`` > batched): the batched path runs all worlds at
    once through :func:`repro.diffusion.batch_forward.
    batch_simulate_uic_personalized` — per-(world, node) noise sampled
    lazily on first contact, flat-frontier propagation — and is
    statistically equivalent to the sequential per-world loop, which
    remains the byte-identical historical path.  Item universes beyond
    ``MAX_BATCH_ITEMS`` fall back to sequential with a ``UserWarning``.

    ``rng`` may be a ``Generator``, an integer seed (expanded through
    ``SeedSequence`` — sequential worlds draw from independent per-world
    child streams), or ``None`` (the historical seed-0 stream).
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    from repro.engine import ensure_context

    ctx = ensure_context(
        ctx, backend=backend, rng=rng, caller="estimate_welfare_personalized"
    )
    allocation = list(allocation)

    from repro.diffusion.batch_forward import (
        MAX_BATCH_ITEMS,
        batch_simulate_uic_personalized,
        warn_uic_item_cap_fallback,
    )

    if ctx.is_batched:
        if model.num_items <= MAX_BATCH_ITEMS:
            parallel = ctx.is_parallel
            if parallel and not ctx.has_lineage:
                from repro.parallel import lineage_fallback

                lineage_fallback("estimate_welfare_personalized")
                parallel = False
            if parallel:
                from repro.parallel import run_forward_shards

                welfare = run_forward_shards(
                    "personalized_welfare_shard",
                    graph,
                    ctx,
                    num_samples,
                    (model, allocation),
                )
            else:
                welfare = batch_simulate_uic_personalized(
                    graph, model, allocation, num_samples, ctx.rng
                )
            return float(welfare.mean())
        warn_uic_item_cap_fallback(model)
    world_rngs = (
        ctx.spawn_generators(num_samples) if ctx.has_lineage else None
    )
    total = 0.0
    for i in range(num_samples):
        world_rng = world_rngs[i] if world_rngs is not None else ctx.rng
        total += simulate_uic_personalized(
            graph, model, allocation, world_rng
        ).welfare
    return total / num_samples
