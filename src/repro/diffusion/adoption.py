"""The utility-maximizing adoption rule (§3.2.2, step 3 of Fig. 1).

At every step a node adopts

    T* = argmax { U(T) : A(u, t-1) ⊆ T ⊆ R(u, t), U(T) ≥ 0 }

breaking utility ties in favor of larger cardinality.  Lemma 1 shows the union
of tied maximizers is itself a maximizer, so "largest tied set" is unique and
equals that union — which is how we compute it.

The already-adopted set always satisfies the constraints (``U(A) ≥ 0`` holds
inductively, starting from ``U(∅) = 0``), so the rule is total.
"""

from __future__ import annotations

import numpy as np

from repro.utility.itemsets import Mask, iter_subsets

#: Tolerance for utility ties; realized utilities are sums of a handful of
#: floats, so ties beyond this are genuine.
TIE_TOL = 1e-12


def adopt(utility_table: np.ndarray, desire: Mask, adopted: Mask) -> Mask:
    """Return the itemset the node adopts given its desire/adoption state.

    Parameters
    ----------
    utility_table:
        Realized per-mask utilities ``U_W`` for the current noise world.
    desire:
        The node's desire set ``R(u, t)``.
    adopted:
        The node's previously adopted set ``A(u, t-1)``; must be a subset of
        ``desire``.

    Returns
    -------
    Mask
        The new adoption set ``A(u, t)`` — a superset of ``adopted``.
    """
    if adopted & ~desire:
        raise ValueError(
            f"adopted set {adopted:#b} is not contained in desire set {desire:#b}"
        )
    free = desire & ~adopted
    if free == 0:
        return adopted
    best_value = float(utility_table[adopted])
    best_union = adopted
    best_single = adopted
    best_single_size = adopted.bit_count()
    for extra in iter_subsets(free):
        mask = adopted | extra
        value = float(utility_table[mask])
        if value > best_value + TIE_TOL:
            best_value = value
            best_union = mask
            best_single = mask
            best_single_size = mask.bit_count()
        elif value >= best_value - TIE_TOL:
            best_union |= mask
            size = mask.bit_count()
            if size > best_single_size:
                best_single = mask
                best_single_size = size
    # Under a supermodular utility, Lemma 1 guarantees the union of tied
    # maximizers attains the same utility, realizing the paper's "larger
    # cardinality" tie-break exactly.  For non-supermodular tables (e.g. the
    # raw learned Table 5 values) the union may lose utility; fall back to the
    # largest single maximizer, which keeps the rule total and deterministic.
    if utility_table[best_union] >= best_value - 1e-9:
        return best_union
    return best_single
