"""Monte-Carlo estimation of expected social welfare and adoption counts.

The expected social welfare of an allocation is
``ρ(𝒮) = E_{W^E}[E_{W^N}[ρ_W(𝒮)]]`` (§4.1.1); both expectations are estimated
jointly by sampling full possible worlds.  A fixed noise world can be supplied
to estimate ``ρ_{W^N}(𝒮)`` (the quantity the block-accounting analysis fixes).

Both estimators accept the unified :class:`repro.engine.EngineContext`
(``ctx=``); ``rng=`` builds an equivalent context (the removed legacy
``backend=`` keyword raises ``TypeError``).  ``rng`` may also be a plain
integer seed — it is expanded through ``SeedSequence`` so that on the
sequential engine each world draws from its own spawned child stream
(world ``i`` depends only on ``(seed, i)``), matching
:func:`repro.diffusion.comic.estimate_comic_spread`.  On the ``parallel``
backend the worlds are sharded over the persistent worker pool
(:mod:`repro.parallel`), each shard running the batched kernels on its
slice from its own ``SeedSequence`` child.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro import obs
from repro.diffusion.batch_forward import (
    batch_simulate_uic,
    supports_batched_uic,
    warn_uic_item_cap_fallback,
)
from repro.diffusion.triggering import sample_triggering_world
from repro.diffusion.uic import simulate_uic
from repro.engine import ensure_context
from repro.graph.digraph import InfluenceGraph
from repro.utility.model import UtilityModel
from repro.utility.noise import NoiseWorld

_FORWARD_SECONDS = obs.histogram(
    "repro_engine_phase_seconds",
    "Wall-clock of engine phases (sampling, selection, kpt, forward)",
    labels=("phase",),
)
_FORWARD_WORLDS = obs.counter(
    "repro_forward_worlds_total",
    "Possible worlds simulated by the forward estimators, by engine",
    labels=("engine",),
)


def _forward_engine(parallel: bool, batched: bool, supported: bool) -> str:
    if parallel:
        return "parallel"
    if batched and supported:
        return "batched"
    return "sequential"


@dataclass(frozen=True)
class WelfareEstimate:
    """MC estimate with uncertainty: mean ± stderr over ``num_samples``."""

    mean: float
    stderr: float
    num_samples: int

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval."""
        return (self.mean - z * self.stderr, self.mean + z * self.stderr)


def estimate_welfare(
    graph: InfluenceGraph,
    model: UtilityModel,
    allocation: Iterable[Tuple[int, int]],
    num_samples: int = 200,
    rng=None,
    noise_world: Optional[NoiseWorld] = None,
    triggering=None,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> WelfareEstimate:
    """Estimate ``ρ(𝒮)`` by simulating ``num_samples`` possible worlds.

    With ``noise_world`` given, only edge worlds vary, estimating the
    fixed-noise welfare ``ρ_{W^N}(𝒮)``.  With ``triggering`` given
    (``"lt"``, ``"ic"`` or a TriggeringModel), edge worlds are sampled from
    that triggering model instead of the IC fast path — the §5 extension.

    The context's backend picks the forward engine (``sequential`` |
    ``batched`` | ``parallel``; default batched).  ``parallel`` shards the
    worlds over the shared-memory worker pool (:mod:`repro.parallel`) when
    the context carries a seed lineage, and otherwise degrades to batched
    with a warning.  The batched engine advances all worlds
    at once (:func:`repro.diffusion.batch_forward.batch_simulate_uic`)
    whenever the (model, triggering) pair is vectorizable — at most
    :data:`~repro.diffusion.batch_forward.MAX_BATCH_ITEMS` items, and a
    triggering model with an explicit trigger distribution (IC/LT/any
    ``DistributionTriggering``); other pairs fall back to the sequential
    per-world loop, which is also the byte-identical historical path.

    ``rng`` may be a ``Generator``, an integer seed (expanded through
    ``SeedSequence`` — sequential worlds draw from independent per-world
    child streams), or ``None`` (the historical seed-0 stream).
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    ctx = ensure_context(
        ctx,
        backend=backend,
        rng=rng,
        triggering=triggering,
        caller="estimate_welfare",
    )
    trig_model = ctx.triggering
    if trig_model is not None:
        trig_model.validate(graph)
    allocation = list(allocation)
    batched = ctx.is_batched
    supported = supports_batched_uic(model, trig_model)
    if batched and not supported:
        warn_uic_item_cap_fallback(model)
    parallel = ctx.is_parallel and supported
    if parallel and not ctx.has_lineage:
        from repro.parallel import lineage_fallback

        lineage_fallback("estimate_welfare")
        parallel = False
    engine = _forward_engine(parallel, batched, supported)
    with obs.span(
        "diffusion.welfare", engine=engine, samples=int(num_samples)
    ), _FORWARD_SECONDS.timer(phase="forward"):
        if parallel:
            from repro.parallel import run_forward_shards

            values = run_forward_shards(
                "uic_welfare_shard",
                graph,
                ctx,
                num_samples,
                (model, allocation, noise_world, trig_model),
                triggering=trig_model,
            )
        elif batched and supported:
            values = batch_simulate_uic(
                graph,
                model,
                allocation,
                num_samples,
                ctx.rng,
                noise_world=noise_world,
                triggering=trig_model,
            ).welfare
        else:
            world_rngs = (
                ctx.spawn_generators(num_samples) if ctx.has_lineage else None
            )
            values = np.empty(num_samples, dtype=np.float64)
            for i in range(num_samples):
                world_rng = (
                    world_rngs[i] if world_rngs is not None else ctx.rng
                )
                edge_world = (
                    sample_triggering_world(graph, trig_model, world_rng)
                    if trig_model is not None
                    else None
                )
                result = simulate_uic(
                    graph, model, allocation, world_rng,
                    noise_world=noise_world, edge_world=edge_world,
                )
                values[i] = result.welfare
    _FORWARD_WORLDS.inc(num_samples, engine=engine)
    mean = float(values.mean())
    stderr = (
        float(values.std(ddof=1) / math.sqrt(num_samples))
        if num_samples > 1
        else 0.0
    )
    return WelfareEstimate(mean=mean, stderr=stderr, num_samples=num_samples)


def estimate_adoption(
    graph: InfluenceGraph,
    model: UtilityModel,
    allocation: Iterable[Tuple[int, int]],
    num_samples: int = 200,
    rng=None,
    item: Optional[int] = None,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> WelfareEstimate:
    """Estimate expected adoptions (all items, or one item's adopter count).

    This is the σ-style objective the multi-item IM baselines optimize; the
    paper contrasts it with welfare.  ``ctx``/``backend``/``rng`` follow
    :func:`estimate_welfare`'s conventions, including integer seeds via
    ``SeedSequence`` children.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    ctx = ensure_context(
        ctx, backend=backend, rng=rng, caller="estimate_adoption"
    )
    allocation = list(allocation)
    batched = ctx.is_batched
    supported = supports_batched_uic(model, None)
    if batched and not supported:
        warn_uic_item_cap_fallback(model)
    parallel = ctx.is_parallel and supported
    if parallel and not ctx.has_lineage:
        from repro.parallel import lineage_fallback

        lineage_fallback("estimate_adoption")
        parallel = False
    engine = _forward_engine(parallel, batched, supported)
    with obs.span(
        "diffusion.adoption", engine=engine, samples=int(num_samples)
    ), _FORWARD_SECONDS.timer(phase="forward"):
        if parallel:
            from repro.parallel import run_forward_shards

            values = run_forward_shards(
                "uic_adoption_shard",
                graph,
                ctx,
                num_samples,
                (model, allocation, item),
            )
        elif batched and supported:
            result = batch_simulate_uic(
                graph, model, allocation, num_samples, ctx.rng
            )
            values = result.adopter_counts(item).astype(np.float64)
        else:
            world_rngs = (
                ctx.spawn_generators(num_samples) if ctx.has_lineage else None
            )
            values = np.empty(num_samples, dtype=np.float64)
            for i in range(num_samples):
                world_rng = (
                    world_rngs[i] if world_rngs is not None else ctx.rng
                )
                result = simulate_uic(graph, model, allocation, world_rng)
                if item is None:
                    values[i] = result.total_adoptions()
                else:
                    values[i] = len(result.adopters_of(item))
    _FORWARD_WORLDS.inc(num_samples, engine=engine)
    mean = float(values.mean())
    stderr = (
        float(values.std(ddof=1) / math.sqrt(num_samples))
        if num_samples > 1
        else 0.0
    )
    return WelfareEstimate(mean=mean, stderr=stderr, num_samples=num_samples)
