"""Live-edge possible worlds.

A possible world of the UIC model is a pair ``W = (W^E, W^N)`` (§4.1.1):
``W^E`` keeps each edge ``(u, v)`` independently with probability ``p_uv``
(the live-edge representation of the IC model), ``W^N`` fixes one noise value
per item.  Noise worlds live in :mod:`repro.utility.noise`; this module
handles edge worlds.

Most simulations test edges lazily (deferred-decision principle — identical in
distribution and much cheaper), but fully materialized live-edge graphs are
needed by the BDHS-Step baseline, by the reachability property tests
(Lemma 3), and by deterministic replays.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Sequence, Set

import numpy as np

from repro.graph.digraph import InfluenceGraph


class LiveEdgeGraph:
    """A sampled deterministic graph ``W^E``: adjacency over live edges."""

    __slots__ = ("_n", "_out")

    def __init__(self, num_nodes: int, out_lists: List[np.ndarray]):
        self._n = num_nodes
        self._out = out_lists

    @property
    def num_nodes(self) -> int:
        """Number of nodes (same as the source graph)."""
        return self._n

    @property
    def num_live_edges(self) -> int:
        """Number of edges that came up live in this world."""
        return sum(int(a.shape[0]) for a in self._out)

    def out_neighbors(self, u: int) -> np.ndarray:
        """Live out-neighbors of ``u``."""
        return self._out[u]

    def in_adjacency(self) -> List[List[int]]:
        """Live in-neighbor lists (built on demand)."""
        incoming: List[List[int]] = [[] for _ in range(self._n)]
        for u in range(self._n):
            for v in self._out[u]:
                incoming[int(v)].append(u)
        return incoming


def sample_live_edge_graph(
    graph: InfluenceGraph, rng: np.random.Generator
) -> LiveEdgeGraph:
    """Sample one edge world: keep each edge with its own probability."""
    out_lists: List[np.ndarray] = []
    for u in range(graph.num_nodes):
        targets = graph.out_neighbors(u)
        if targets.shape[0] == 0:
            out_lists.append(targets)
            continue
        probs = graph.out_probabilities(u)
        keep = rng.random(targets.shape[0]) < probs
        out_lists.append(targets[keep])
    return LiveEdgeGraph(graph.num_nodes, out_lists)


def reachable_set(world: LiveEdgeGraph, sources: Iterable[int]) -> Set[int]:
    """Nodes reachable from ``sources`` along live edges (Γ(S, W^E))."""
    visited: Set[int] = set()
    queue: deque[int] = deque()
    for s in sources:
        s = int(s)
        if s not in visited:
            visited.add(s)
            queue.append(s)
    while queue:
        u = queue.popleft()
        for v in world.out_neighbors(u):
            v = int(v)
            if v not in visited:
                visited.add(v)
                queue.append(v)
    return visited


def reachable_count_from_each(
    world: LiveEdgeGraph, seed_sets: Sequence[Sequence[int]]
) -> List[int]:
    """``|Γ(S, W^E)|`` for several seed sets in the same world."""
    return [len(reachable_set(world, seeds)) for seeds in seed_sets]
