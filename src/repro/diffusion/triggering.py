"""General triggering models (Kempe et al. [30]).

The paper notes (§5) that "our results and techniques carry over unchanged to
any triggering propagation model".  A triggering model assigns every node a
random *trigger set* — a subset of its in-neighbors — and ``v`` activates
when any member of its trigger set is active.  Sampling all trigger sets up
front yields a live-edge world, so the whole UIC/RIS stack runs unchanged on
top of any triggering model:

* **IC**: each in-neighbor joins the trigger set independently with the edge
  probability;
* **LT** (linear threshold): at most one in-neighbor is chosen, with
  probability equal to the edge weight (requires in-weights summing to ≤ 1 —
  satisfied by the weighted-cascade scheme, where they sum to exactly 1).

:func:`sample_triggering_world` materializes one live-edge world;
RR-set generation under a triggering model uses the same per-node trigger
sampling during the reverse BFS (see :mod:`repro.rrset.rrgen`).
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.diffusion.worlds import LiveEdgeGraph
from repro.graph.digraph import InfluenceGraph


class TriggeringModel(abc.ABC):
    """Distribution over trigger sets, per node."""

    @abc.abstractmethod
    def sample_trigger_set(
        self, graph: InfluenceGraph, node: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the trigger set of ``node`` (array of in-neighbor ids)."""

    def validate(self, graph: InfluenceGraph) -> None:
        """Check model-specific preconditions on the graph (optional)."""


class IndependentCascadeTriggering(TriggeringModel):
    """IC as a triggering model: independent per-edge coins."""

    def sample_trigger_set(
        self, graph: InfluenceGraph, node: int, rng: np.random.Generator
    ) -> np.ndarray:
        sources = graph.in_neighbors(node)
        if sources.shape[0] == 0:
            return sources
        probs = graph.in_probabilities(node)
        keep = rng.random(sources.shape[0]) < probs
        return sources[keep]


class LinearThresholdTriggering(TriggeringModel):
    """LT as a triggering model: at most one in-neighbor, by edge weight.

    The live-edge characterization of LT [30]: node ``v`` picks in-neighbor
    ``u`` with probability ``w(u, v)`` and nobody with probability
    ``1 − Σ_u w(u, v)``.  Requires each node's in-weights to sum to at most 1
    (``validate`` enforces it); the weighted-cascade scheme gives exactly 1.
    """

    def validate(self, graph: InfluenceGraph) -> None:
        for v in range(graph.num_nodes):
            total = float(graph.in_probabilities(v).sum())
            if total > 1.0 + 1e-9:
                raise ValueError(
                    f"LT requires in-weights summing to <= 1; node {v} "
                    f"has total {total:.4f}"
                )

    def sample_trigger_set(
        self, graph: InfluenceGraph, node: int, rng: np.random.Generator
    ) -> np.ndarray:
        sources = graph.in_neighbors(node)
        if sources.shape[0] == 0:
            return sources
        weights = graph.in_probabilities(node)
        draw = rng.random()
        cumulative = 0.0
        for idx in range(sources.shape[0]):
            cumulative += weights[idx]
            if draw < cumulative:
                return sources[idx : idx + 1]
        return sources[:0]  # empty trigger set


def sample_triggering_world(
    graph: InfluenceGraph,
    model: TriggeringModel,
    rng: np.random.Generator,
) -> LiveEdgeGraph:
    """Sample all trigger sets, returning the induced live-edge world.

    Edge ``(u, v)`` is live iff ``u`` is in ``v``'s sampled trigger set; the
    resulting :class:`LiveEdgeGraph` plugs directly into
    :func:`repro.diffusion.uic.simulate_uic`.
    """
    n = graph.num_nodes
    out_lists: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        for u in model.sample_trigger_set(graph, v, rng):
            out_lists[int(u)].append(v)
    return LiveEdgeGraph(
        n, [np.array(lst, dtype=np.int64) for lst in out_lists]
    )


def resolve_triggering(name_or_model) -> TriggeringModel:
    """Resolve ``"ic"`` / ``"lt"`` / a TriggeringModel instance."""
    if isinstance(name_or_model, TriggeringModel):
        return name_or_model
    if name_or_model == "ic":
        return IndependentCascadeTriggering()
    if name_or_model == "lt":
        return LinearThresholdTriggering()
    raise ValueError(
        f"unknown triggering model {name_or_model!r}; expected 'ic', 'lt' "
        "or a TriggeringModel instance"
    )
