"""General triggering models (Kempe et al. [30]).

The paper notes (§5) that "our results and techniques carry over unchanged to
any triggering propagation model".  A triggering model assigns every node a
random *trigger set* — a subset of its in-neighbors — and ``v`` activates
when any member of its trigger set is active.  Sampling all trigger sets up
front yields a live-edge world, so the whole UIC/RIS stack runs unchanged on
top of any triggering model:

* **IC**: each in-neighbor joins the trigger set independently with the edge
  probability;
* **LT** (linear threshold): at most one in-neighbor is chosen, with
  probability equal to the edge weight (requires in-weights summing to ≤ 1 —
  satisfied by the weighted-cascade scheme, where they sum to exactly 1).

:func:`sample_triggering_world` materializes one live-edge world;
RR-set generation under a triggering model uses the same per-node trigger
sampling during the reverse BFS (see :mod:`repro.rrset.rrgen`).

Models beyond IC/LT plug into the *vectorized* batched samplers (reverse
RR-set generation in :mod:`repro.rrset.batch`, forward world simulation in
:mod:`repro.diffusion.batch_forward`) by exposing an explicit per-node
**trigger distribution** — a short list of ``(probability, sources)``
candidates whose probabilities sum to at most 1 (the remainder is the empty
trigger set).  The batched engines compile these into a flat "trigger CSR"
and select one candidate per (walk, node) query with a single segmented
cumulative-sum search, so any model with tractable per-node distributions
runs vectorized.  :class:`DistributionTriggering` derives the sequential
``sample_trigger_set`` from the same distribution, guaranteeing the two
backends sample identically-distributed trigger sets.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.worlds import LiveEdgeGraph
from repro.graph.digraph import InfluenceGraph

#: One candidate of an explicit trigger distribution: its probability and the
#: in-neighbor ids forming the trigger set.
TriggerCandidate = Tuple[float, np.ndarray]


class TriggeringModel(abc.ABC):
    """Distribution over trigger sets, per node."""

    @abc.abstractmethod
    def sample_trigger_set(
        self, graph: InfluenceGraph, node: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the trigger set of ``node`` (array of in-neighbor ids)."""

    def trigger_distribution(
        self, graph: InfluenceGraph, node: int
    ) -> Optional[Sequence[TriggerCandidate]]:
        """Explicit distribution over ``node``'s trigger sets, if tractable.

        Return ``(probability, sources)`` candidates summing to at most 1;
        the leftover mass is the empty trigger set.  Overriding this unlocks
        the vectorized batched samplers
        (:func:`repro.rrset.batch.supports_batched` reports the capability);
        the default ``None`` keeps the model on the sequential fallback.
        Candidate order is part of the contract: the batched sampler draws
        one uniform per query and picks the first candidate whose cumulative
        probability exceeds it, exactly like
        :meth:`DistributionTriggering.sample_trigger_set`.
        """
        return None

    def validate(self, graph: InfluenceGraph) -> None:
        """Check model-specific preconditions on the graph (optional)."""


class IndependentCascadeTriggering(TriggeringModel):
    """IC as a triggering model: independent per-edge coins."""

    def sample_trigger_set(
        self, graph: InfluenceGraph, node: int, rng: np.random.Generator
    ) -> np.ndarray:
        sources = graph.in_neighbors(node)
        if sources.shape[0] == 0:
            return sources
        probs = graph.in_probabilities(node)
        keep = rng.random(sources.shape[0]) < probs
        return sources[keep]


class LinearThresholdTriggering(TriggeringModel):
    """LT as a triggering model: at most one in-neighbor, by edge weight.

    The live-edge characterization of LT [30]: node ``v`` picks in-neighbor
    ``u`` with probability ``w(u, v)`` and nobody with probability
    ``1 − Σ_u w(u, v)``.  Requires each node's in-weights to sum to at most 1
    (``validate`` enforces it); the weighted-cascade scheme gives exactly 1.
    """

    def validate(self, graph: InfluenceGraph) -> None:
        for v in range(graph.num_nodes):
            total = float(graph.in_probabilities(v).sum())
            if total > 1.0 + 1e-9:
                raise ValueError(
                    f"LT requires in-weights summing to <= 1; node {v} "
                    f"has total {total:.4f}"
                )

    def sample_trigger_set(
        self, graph: InfluenceGraph, node: int, rng: np.random.Generator
    ) -> np.ndarray:
        sources = graph.in_neighbors(node)
        if sources.shape[0] == 0:
            return sources
        weights = graph.in_probabilities(node)
        draw = rng.random()
        cumulative = 0.0
        for idx in range(sources.shape[0]):
            cumulative += weights[idx]
            if draw < cumulative:
                return sources[idx : idx + 1]
        return sources[:0]  # empty trigger set

    def trigger_distribution(
        self, graph: InfluenceGraph, node: int
    ) -> Sequence[TriggerCandidate]:
        """LT's distribution is linear in the in-degree: one singleton
        candidate per in-edge, weighted by the edge weight."""
        sources = graph.in_neighbors(node)
        weights = graph.in_probabilities(node)
        return [
            (float(weights[idx]), sources[idx : idx + 1])
            for idx in range(sources.shape[0])
        ]


class DistributionTriggering(TriggeringModel):
    """Base class for models defined by an explicit trigger distribution.

    Subclasses implement only :meth:`trigger_distribution`; the sequential
    :meth:`sample_trigger_set` is derived from it (draw one uniform, walk the
    cumulative candidate probabilities), which is byte-for-byte the selection
    rule the vectorized trigger-CSR sampler applies — so the sequential and
    batched backends sample the same per-node distribution by construction.
    """

    @abc.abstractmethod
    def trigger_distribution(
        self, graph: InfluenceGraph, node: int
    ) -> Sequence[TriggerCandidate]:
        """Explicit distribution over ``node``'s trigger sets (required)."""

    def sample_trigger_set(
        self, graph: InfluenceGraph, node: int, rng: np.random.Generator
    ) -> np.ndarray:
        draw = rng.random()
        cumulative = 0.0
        for probability, sources in self.trigger_distribution(graph, node):
            cumulative += probability
            if draw < cumulative:
                return np.asarray(sources, dtype=np.int64)
        return graph.in_neighbors(node)[:0]  # empty trigger set


class AttentionICTriggering(DistributionTriggering):
    """Attention-limited IC: independent coins on the top-``k`` in-edges.

    Each node only attends to its ``max_attention`` highest-probability
    in-edges (ties to the lower source id, matching CSR order); those edges
    flip independent IC coins and the rest never fire.  This is a genuine
    triggering model beyond IC/LT — its trigger distribution enumerates the
    ``2^k`` subsets of the attended edges, which stays tractable for the
    small attention windows the model is about (``max_attention <= 10``).
    """

    def __init__(self, max_attention: int = 3):
        if not 1 <= max_attention <= 10:
            raise ValueError(
                f"max_attention must be in [1, 10], got {max_attention}"
            )
        self.max_attention = int(max_attention)

    def trigger_distribution(
        self, graph: InfluenceGraph, node: int
    ) -> Sequence[TriggerCandidate]:
        sources = graph.in_neighbors(node)
        probs = graph.in_probabilities(node)
        if sources.shape[0] > self.max_attention:
            # Highest probability first; ties to the lower source id.
            order = np.lexsort((sources, -probs))[: self.max_attention]
            order.sort()  # keep CSR order within the attended window
            sources = sources[order]
            probs = probs[order]
        k = sources.shape[0]
        candidates: List[TriggerCandidate] = []
        for mask in range(1 << k):
            probability = 1.0
            for idx in range(k):
                p = float(probs[idx])
                probability *= p if mask >> idx & 1 else 1.0 - p
            members = sources[[idx for idx in range(k) if mask >> idx & 1]]
            candidates.append((probability, members))
        return candidates


def sample_triggering_world(
    graph: InfluenceGraph,
    model: TriggeringModel,
    rng: np.random.Generator,
) -> LiveEdgeGraph:
    """Sample all trigger sets, returning the induced live-edge world.

    Edge ``(u, v)`` is live iff ``u`` is in ``v``'s sampled trigger set; the
    resulting :class:`LiveEdgeGraph` plugs directly into
    :func:`repro.diffusion.uic.simulate_uic`.
    """
    n = graph.num_nodes
    out_lists: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        for u in model.sample_trigger_set(graph, v, rng):
            out_lists[int(u)].append(v)
    return LiveEdgeGraph(
        n, [np.array(lst, dtype=np.int64) for lst in out_lists]
    )


@dataclass(frozen=True)
class TriggerCSR:
    """A triggering model's per-node distributions, compiled flat.

    Node ``v``'s candidates occupy ``cand_indptr[v] : cand_indptr[v+1]``;
    ``shifted_cum[c]`` is candidate ``c``'s inclusive within-node cumulative
    probability plus ``v`` itself, which makes the array globally
    non-decreasing (segment ``v`` lives in ``(v, v+1]``).  A query ``(v,
    draw)`` with ``draw ~ U[0,1)`` therefore resolves to
    ``np.searchsorted(shifted_cum, v + draw, side="right")`` — the first
    candidate whose cumulative probability strictly exceeds the draw, i.e.
    exactly the sequential selection rule of
    :class:`DistributionTriggering` — with the sentinel ``cand_indptr[v+1]``
    meaning "empty trigger set" (leftover probability mass).
    ``member_indptr``/``member_sources`` are the CSR of each candidate's
    trigger-set members.

    Consumed by the vectorized samplers on both sides of the engine: the
    reverse RR-set generator (:mod:`repro.rrset.batch`) and the forward
    world simulator (:mod:`repro.diffusion.batch_forward`).
    """

    cand_indptr: np.ndarray
    shifted_cum: np.ndarray
    member_indptr: np.ndarray
    member_sources: np.ndarray


def build_trigger_csr(
    graph: InfluenceGraph, triggering: TriggeringModel
) -> TriggerCSR:
    """Compile a model's explicit trigger distributions into flat arrays.

    One Python pass over the nodes at build time; every subsequent sampling
    round is pure numpy.  Callers cache the result per (graph, model) pair
    (:class:`repro.rrset.rrgen.RRCollection` does).
    """
    n = graph.num_nodes
    cand_counts = np.zeros(n, dtype=np.int64)
    cum_parts: List[float] = []
    member_len_parts: List[int] = []
    member_parts: List[np.ndarray] = []
    for v in range(n):
        distribution = triggering.trigger_distribution(graph, v)
        if distribution is None:
            raise ValueError(
                f"triggering model {triggering!r} exposes no trigger "
                "distribution; use the sequential sampler"
            )
        cumulative = 0.0
        for probability, sources in distribution:
            probability = float(probability)
            if probability < 0.0:
                raise ValueError(
                    f"node {v}: negative candidate probability {probability}"
                )
            cumulative += probability
            cum_parts.append(cumulative)
            members = np.asarray(sources, dtype=np.int64)
            member_len_parts.append(members.shape[0])
            member_parts.append(members)
        if cumulative > 1.0 + 1e-9:
            raise ValueError(
                f"node {v}: candidate probabilities sum to {cumulative:.6f} "
                "> 1"
            )
        cand_counts[v] = len(distribution)
    cand_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cand_counts, out=cand_indptr[1:])
    total_cands = int(cand_indptr[-1])
    shifted = np.asarray(cum_parts, dtype=np.float64)
    # Clip accumulated float drift so each segment stays within (v, v+1].
    np.minimum(shifted, 1.0, out=shifted)
    shifted += np.repeat(np.arange(n, dtype=np.float64), cand_counts)
    member_indptr = np.zeros(total_cands + 1, dtype=np.int64)
    np.cumsum(
        np.asarray(member_len_parts, dtype=np.int64), out=member_indptr[1:]
    )
    member_sources = (
        np.concatenate(member_parts)
        if member_parts
        else np.empty(0, dtype=np.int64)
    )
    return TriggerCSR(cand_indptr, shifted, member_indptr, member_sources)


def has_trigger_distribution(triggering: TriggeringModel) -> bool:
    """Whether a model exposes an explicit per-node trigger distribution.

    The single capability check behind the vectorized samplers: a model
    that overrides :meth:`TriggeringModel.trigger_distribution` can be
    compiled into a :class:`TriggerCSR` on both engine sides (reverse
    RR-set generation and forward world simulation).
    """
    return (
        type(triggering).trigger_distribution
        is not TriggeringModel.trigger_distribution
    )


def needs_trigger_csr(triggering: Optional[TriggeringModel]) -> bool:
    """Whether the batched samplers route this model through a TriggerCSR.

    ``None`` and IC have dedicated per-edge-coin fast paths; LT keeps its
    specialized segmented-cumsum branch on the reverse side and its linear
    distribution on the forward side, but any *other* distribution-bearing
    model samples through the compiled CSR.
    """
    return triggering is not None and not isinstance(
        triggering, (IndependentCascadeTriggering, LinearThresholdTriggering)
    )


def segmented_positions(starts: np.ndarray, degs: np.ndarray) -> np.ndarray:
    """Flat gather indices ``[starts[i], starts[i] + degs[i])``, concatenated.

    The standard segmented-gather idiom (``repeat`` of the start offsets
    corrected by the exclusive cumsum) shared by every batched frontier
    expansion — reverse in-edge gathers, forward out-edge gathers, and
    trigger-CSR member lookups.
    """
    total = int(degs.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    excl = np.cumsum(degs) - degs
    return np.repeat(starts - excl, degs) + np.arange(total)


def sample_trigger_members(
    csr: TriggerCSR,
    nodes: np.ndarray,
    draws: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve one trigger-set query per ``(nodes[i], draws[i])`` pair.

    Returns ``(members, degs)``: the concatenated trigger-set members of
    every query in order, plus each query's member count (0 when the draw
    lands in the leftover empty-set mass).  This is the shared vectorized
    core of the generic-triggering RR-set sampler and the forward world
    sampler in :mod:`repro.diffusion.batch_forward`.
    """
    if csr.member_indptr.shape[0] == 1:
        # No candidates anywhere (every node's mass is the empty trigger
        # set): every query resolves empty.
        return (
            np.empty(0, dtype=np.int64),
            np.zeros(nodes.shape[0], dtype=np.int64),
        )
    picks = np.searchsorted(csr.shifted_cum, nodes + draws, side="right")
    empty = picks >= csr.cand_indptr[nodes + 1]
    safe = np.where(empty, 0, picks)
    starts = csr.member_indptr[safe]
    degs = np.where(empty, 0, csr.member_indptr[safe + 1] - starts)
    pos = segmented_positions(starts, degs)
    if pos.shape[0] == 0:
        return np.empty(0, dtype=np.int64), degs
    return csr.member_sources[pos], degs


def resolve_triggering(name_or_model) -> TriggeringModel:
    """Resolve ``"ic"`` / ``"lt"`` / a TriggeringModel instance."""
    if isinstance(name_or_model, TriggeringModel):
        return name_or_model
    if name_or_model == "ic":
        return IndependentCascadeTriggering()
    if name_or_model == "lt":
        return LinearThresholdTriggering()
    raise ValueError(
        f"unknown triggering model {name_or_model!r}; expected 'ic', 'lt' "
        "or a TriggeringModel instance"
    )
