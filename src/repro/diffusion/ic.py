"""The classic independent cascade (IC) model.

Forward Monte-Carlo simulation with lazy edge tests (each edge is flipped the
first time its source becomes active, matching §2.1), and the MC spread
estimator ``σ(S)`` used as ground truth in tests and as the evaluation metric
for seed sets.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence, Set

import numpy as np

from repro.graph.digraph import InfluenceGraph


def simulate_ic(
    graph: InfluenceGraph,
    seeds: Iterable[int],
    rng: np.random.Generator,
) -> Set[int]:
    """One IC cascade; returns the set of active nodes at termination."""
    active: Set[int] = set()
    queue: deque[int] = deque()
    for s in seeds:
        s = int(s)
        if s not in active:
            active.add(s)
            queue.append(s)
    while queue:
        u = queue.popleft()
        targets = graph.out_neighbors(u)
        if targets.shape[0] == 0:
            continue
        probs = graph.out_probabilities(u)
        coins = rng.random(targets.shape[0])
        for v in targets[coins < probs]:
            v = int(v)
            if v not in active:
                active.add(v)
                queue.append(v)
    return active


def estimate_spread(
    graph: InfluenceGraph,
    seeds: Sequence[int],
    num_samples: int = 1000,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of the expected spread ``σ(seeds)``."""
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    rng = rng if rng is not None else np.random.default_rng(0)
    total = 0
    for _ in range(num_samples):
        total += len(simulate_ic(graph, seeds, rng))
    return total / num_samples
