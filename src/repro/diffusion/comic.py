"""The Com-IC model of Lu et al. [36] for two complementary items.

Com-IC equips every node with a *node-level automaton* (NLA) driven by four
Global Adoption Probabilities in the two-item case:

* ``q_{A|∅}``  — probability of adopting A having adopted nothing,
* ``q_{A|B}``  — probability of adopting A having adopted B,
* ``q_{B|∅}``, ``q_{B|A}`` symmetrically.

In the mutually complementary regime (``q_{A|B} ≥ q_{A|∅}``, ``q_{B|A} ≥
q_{B|∅}``) the standard possible-world formulation samples one uniform
threshold ``λ_A(v), λ_B(v)`` per node and item: ``v`` adopts A when informed
iff ``λ_A(v) ≤ q_{A|state}``; a node that initially suspends A (because
``λ_A > q_{A|∅}``) *reconsiders* automatically when it adopts B, because the
threshold is then compared against the larger ``q_{A|B}``.  Edges follow the
usual IC live-edge semantics.

This module exists for the RR-SIM+/RR-CIM baselines (§4.3.1.2) and for
verifying the paper's GAP ↔ utility correspondence (Eq. 12) by simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.digraph import InfluenceGraph

ITEM_A, ITEM_B = 0, 1


@dataclass(frozen=True)
class ComICModel:
    """GAP parameters of a two-item Com-IC instance."""

    q_a_empty: float
    q_a_given_b: float
    q_b_empty: float
    q_b_given_a: float

    def __post_init__(self) -> None:
        for name, q in (
            ("q_a_empty", self.q_a_empty),
            ("q_a_given_b", self.q_a_given_b),
            ("q_b_empty", self.q_b_empty),
            ("q_b_given_a", self.q_b_given_a),
        ):
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {q}")

    def is_mutually_complementary(self) -> bool:
        """Whether adoption of one item never hurts the other."""
        return (
            self.q_a_given_b >= self.q_a_empty
            and self.q_b_given_a >= self.q_b_empty
        )

    def q(self, item: int, has_other: bool) -> float:
        """GAP parameter for ``item`` given other-item adoption state."""
        if item == ITEM_A:
            return self.q_a_given_b if has_other else self.q_a_empty
        if item == ITEM_B:
            return self.q_b_given_a if has_other else self.q_b_empty
        raise ValueError(f"Com-IC supports items 0 and 1, got {item}")


@dataclass
class ComICResult:
    """Adoption outcome of one Com-IC possible world."""

    adopted_a: Set[int]
    adopted_b: Set[int]

    def adopters_of(self, item: int) -> Set[int]:
        """Adopters of the given item."""
        return self.adopted_a if item == ITEM_A else self.adopted_b


def simulate_comic(
    graph: InfluenceGraph,
    model: ComICModel,
    seeds_a: Sequence[int],
    seeds_b: Sequence[int],
    rng: np.random.Generator,
) -> ComICResult:
    """Simulate one Com-IC possible world.

    Seeds are informed of their item at ``t = 1`` and run the same NLA as
    everyone else.  Requires a mutually complementary instance (the regime of
    the paper's experiments); the reconsideration rule is realized through
    per-node thresholds.
    """
    if not model.is_mutually_complementary():
        raise ValueError(
            "simulate_comic implements the mutually complementary regime; "
            "got a competitive parameterization"
        )
    n = graph.num_nodes
    thresholds = rng.random((n, 2))
    informed = [[False, False] for _ in range(n)]
    adopted = [[False, False] for _ in range(n)]
    live_out: Dict[int, list] = {}

    queue: deque[Tuple[int, int]] = deque()  # (node, item) information events
    for s in seeds_a:
        queue.append((int(s), ITEM_A))
    for s in seeds_b:
        queue.append((int(s), ITEM_B))

    def try_adopt(v: int, item: int) -> bool:
        """Run the NLA for item at node v; returns True on new adoption."""
        if adopted[v][item]:
            return False
        has_other = adopted[v][1 - item]
        if thresholds[v][item] <= model.q(item, has_other):
            adopted[v][item] = True
            return True
        return False

    def live_targets(u: int) -> list:
        cached = live_out.get(u)
        if cached is None:
            targets = graph.out_neighbors(u)
            if targets.shape[0]:
                coins = rng.random(targets.shape[0])
                cached = [
                    int(v)
                    for v, c, p in zip(targets, coins, graph.out_probabilities(u))
                    if c < p
                ]
            else:
                cached = []
            live_out[u] = cached
        return cached

    while queue:
        v, item = queue.popleft()
        if informed[v][item]:
            continue
        informed[v][item] = True
        newly = []
        if try_adopt(v, item):
            newly.append(item)
            # Reconsideration: adopting `item` may unlock the other item if v
            # was informed of it earlier but suspended.
            other = 1 - item
            if informed[v][other] and try_adopt(v, other):
                newly.append(other)
        for adopted_item in newly:
            for w in live_targets(v):
                if not informed[w][adopted_item]:
                    queue.append((w, adopted_item))

    return ComICResult(
        adopted_a={v for v in range(n) if adopted[v][ITEM_A]},
        adopted_b={v for v in range(n) if adopted[v][ITEM_B]},
    )


def estimate_comic_spread(
    graph: InfluenceGraph,
    model: ComICModel,
    seeds_a: Sequence[int],
    seeds_b: Sequence[int],
    item: int,
    num_samples: int = 200,
    rng: Optional[object] = None,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> float:
    """MC estimate of the expected number of adopters of ``item``.

    ``rng`` may be a ``numpy.random.Generator``, an integer seed, or
    ``None`` (seed 0).  Integer seeds are expanded through
    ``SeedSequence`` — the sequential backend spawns one child stream per
    world, so world ``i``'s realization depends only on ``(seed, i)``;
    the batched backend derives its single vectorized stream from the same
    root.  Either way a CLI-supplied integer names one reproducible
    estimate per backend.

    The context's backend picks the forward engine: ``sequential`` — one
    :func:`simulate_comic` per world, the historical byte-identical path
    when handed a ``Generator`` —, ``batched`` —
    :func:`repro.diffusion.batch_forward.batch_simulate_comic`, all worlds
    at once —, or ``parallel`` — the worlds sharded over the persistent
    worker pool, each shard a batched run seeded from its own
    ``SeedSequence`` child.  The removed legacy ``backend=`` keyword
    raises ``TypeError``.
    """
    from repro.diffusion.batch_forward import batch_simulate_comic
    from repro.engine import ensure_context

    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    ctx = ensure_context(
        ctx, backend=backend, rng=rng, caller="estimate_comic_spread"
    )
    parallel = ctx.is_parallel
    if parallel and not ctx.has_lineage:
        from repro.parallel import lineage_fallback

        lineage_fallback("estimate_comic_spread")
        parallel = False
    if parallel:
        from repro.parallel import run_forward_shards

        values = run_forward_shards(
            "comic_spread_shard",
            graph,
            ctx,
            num_samples,
            (model, tuple(seeds_a), tuple(seeds_b), item),
        )
        return float(values.mean())
    if ctx.is_batched:
        result = batch_simulate_comic(
            graph, model, seeds_a, seeds_b, num_samples, ctx.rng
        )
        return float(result.adopter_counts(item).mean())
    world_rngs = (
        ctx.spawn_generators(num_samples) if ctx.has_lineage else None
    )
    total = 0
    for i in range(num_samples):
        world_rng = world_rngs[i] if world_rngs is not None else ctx.rng
        result = simulate_comic(graph, model, seeds_a, seeds_b, world_rng)
        total += len(result.adopters_of(item))
    return total / num_samples
