"""The Utility-driven Independent Cascade (UIC) model — Fig. 1 of the paper.

One simulation realizes a full possible world ``W = (W^E, W^N)``:

1. the noise terms of all items are sampled once and fixed (``W^N``),
2. at ``t = 1`` seed nodes desire their allocated items and adopt the
   utility-maximizing subset (seeds are rational users),
3. at each ``t > 1``, nodes that adopted something new at ``t-1`` test their
   untested out-edges (each edge once per world, status remembered); desire
   sets grow along live edges by the in-neighbors' adopted sets; affected
   nodes re-run the adoption rule,
4. the process stops when no node adopts anything new.

Edges are tested lazily; by the deferred-decision principle the outcome is
distributed identically to pre-sampling the whole edge world.  A pre-sampled
:class:`~repro.diffusion.worlds.LiveEdgeGraph` can be supplied instead for
deterministic replays (used by the reachability tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.diffusion.adoption import adopt
from repro.diffusion.worlds import LiveEdgeGraph
from repro.graph.digraph import InfluenceGraph
from repro.utility.itemsets import Mask
from repro.utility.model import UtilityModel
from repro.utility.noise import NoiseWorld


@dataclass
class UICResult:
    """Outcome of one UIC possible world.

    ``desire`` and ``adopted`` map node -> itemset mask (nodes never touched
    by the diffusion are absent, meaning ∅).  ``welfare`` is the realized
    social welfare ``Σ_v U_W(A(v))`` of this world.
    """

    desire: Dict[int, Mask]
    adopted: Dict[int, Mask]
    welfare: float
    rounds: int
    noise_world: NoiseWorld

    def adopters_of(self, item: int) -> Set[int]:
        """Nodes that adopted a given item."""
        bit = 1 << item
        return {v for v, mask in self.adopted.items() if mask & bit}

    def total_adoptions(self) -> int:
        """Total number of (node, item) adoption pairs."""
        return sum(mask.bit_count() for mask in self.adopted.values())


def simulate_uic(
    graph: InfluenceGraph,
    model: UtilityModel,
    allocation: Iterable[Tuple[int, int]],
    rng: np.random.Generator,
    noise_world: Optional[NoiseWorld] = None,
    edge_world: Optional[LiveEdgeGraph] = None,
) -> UICResult:
    """Simulate one UIC possible world for a seed allocation.

    Parameters
    ----------
    graph:
        The social network ``G = (V, E, p)``.
    model:
        The utility model (valuation, prices, noise).
    allocation:
        Seed allocation ``𝒮`` as ``(node, item)`` pairs.
    rng:
        Randomness source for noise sampling and lazy edge tests.
    noise_world:
        Optional pre-sampled noise world (fixes ``W^N``).
    edge_world:
        Optional pre-sampled live-edge graph (fixes ``W^E``); when given, no
        lazy edge tests happen.

    Returns
    -------
    UICResult
        Final desire/adoption sets, realized welfare and round count.
    """
    if noise_world is None:
        noise_world = model.sample_noise_world(rng)
    utility_table = model.utility_table(noise_world)

    desire: Dict[int, Mask] = {}
    adopted: Dict[int, Mask] = {}

    # t = 1: seeding.  Seed nodes desire their allocated items and adopt the
    # utility-maximizing subset (they are rational users too).
    for node, item in allocation:
        node = int(node)
        if not 0 <= node < graph.num_nodes:
            raise IndexError(f"seed node {node} outside graph")
        if not 0 <= item < model.num_items:
            raise IndexError(f"item {item} outside universe")
        desire[node] = desire.get(node, 0) | (1 << item)

    frontier: List[int] = []
    for node, wish in desire.items():
        new_adopted = adopt(utility_table, wish, 0)
        if new_adopted:
            adopted[node] = new_adopted
            frontier.append(node)

    # Edge-test bookkeeping for the lazy mode (edge_world is None): per
    # node, the out-edges that came up live on its first adoption.
    live_out: Dict[int, List[int]] = {}

    rounds = 1
    while frontier:
        rounds += 1
        touched: Dict[int, Mask] = {}
        for u in frontier:
            source_adopted = adopted.get(u, 0)
            if source_adopted == 0:
                continue
            if edge_world is not None:
                live_targets = [int(v) for v in edge_world.out_neighbors(u)]
            else:
                cached = live_out.get(u)
                if cached is None:
                    # First time u adopts: test all its out-edges at once.
                    targets = graph.out_neighbors(u)
                    if targets.shape[0]:
                        coins = rng.random(targets.shape[0])
                        cached = [
                            int(v)
                            for v, c, p in zip(
                                targets, coins, graph.out_probabilities(u)
                            )
                            if c < p
                        ]
                    else:
                        cached = []
                    live_out[u] = cached
                live_targets = cached
            for v in live_targets:
                incoming = touched.get(v, 0) | source_adopted
                touched[v] = incoming

        next_frontier: List[int] = []
        for v, incoming in touched.items():
            old_desire = desire.get(v, 0)
            new_desire = old_desire | incoming
            if new_desire == old_desire:
                continue
            desire[v] = new_desire
            old_adopted = adopted.get(v, 0)
            new_adopted = adopt(utility_table, new_desire, old_adopted)
            if new_adopted != old_adopted:
                adopted[v] = new_adopted
                next_frontier.append(v)
        frontier = next_frontier

    welfare = float(
        sum(utility_table[mask] for mask in adopted.values())
    )
    return UICResult(
        desire=desire,
        adopted=adopted,
        welfare=welfare,
        rounds=rounds,
        noise_world=noise_world,
    )
