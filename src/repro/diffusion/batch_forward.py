"""Batched forward-diffusion engine: advance all Monte Carlo worlds at once.

The sequential simulators (:func:`repro.diffusion.ic.simulate_ic`,
:func:`repro.diffusion.comic.simulate_comic`,
:func:`repro.diffusion.uic.simulate_uic`) run one possible world per Python
call — fine for a single cascade, but welfare/spread estimation samples
hundreds of worlds per estimate and pays interpreter overhead per node and
per edge in every one of them.  This module is the forward twin of
:mod:`repro.rrset.batch`: it keeps the union of all worlds' frontiers as
flat ``(world, node)`` int64 arrays and advances every world simultaneously
with one vectorized step per diffusion round over the graph's forward CSR.

**Frontier scheme.**  Each round performs a segmented gather of the frontier
nodes' out-edges (``np.repeat`` over per-node degrees, exactly the batched
RR-set trick mirrored onto the out-CSR), resolves which candidate edges are
live, filters targets against per-world state bitmaps, and de-duplicates the
survivors within the round via ``np.unique`` on scalar keys.  Per-model
state is a set of flat ``(worlds, n)`` arrays:

* **IC** — one boolean ``active`` bitmap; live edges are per-discovery
  coins (each (world, edge) is tested at most once, since IC activation is
  one-shot).
* **Com-IC** — pre-sampled per-world live-edge flags over the out-CSR plus
  per-node adoption thresholds ``λ(v, item)``, and ``informed`` /
  ``adopted`` bitmaps per item.  Adoption replays the node-level automaton:
  the threshold is compared against ``q(item | other)``, which grows when
  the complementary item is adopted, and a *reconsideration* pass re-tests
  the other item after every first-wave adoption — the same monotone
  fixpoint the sequential deque computes, so final adopter sets match
  realization-for-realization.
* **UIC** — per-world utility tables (one sampled noise world each), an
  itemset-mask ``desire``/``adopted`` state per (world, node), live edges
  drawn lazily on first visit — per-source coin flips under the IC fast
  path (:class:`_LiveEdgeLog`), per-*target* trigger sets through the
  shared :class:`~repro.diffusion.triggering.TriggerCSR` sampler otherwise
  (:class:`_LazyTriggerLog`; only the pairs a cascade actually reaches are
  ever drawn), and a per-world *adoption decision table*
  ``decision[w, desire, adopted]`` that tabulates the utility-maximizing
  rule of :func:`repro.diffusion.adoption.adopt` for every reachable
  (desire, adopted) pair — ``3^k`` vectorized evaluations per chunk instead
  of one Python subset enumeration per touched node per world.

**Memory.**  Worlds are processed in chunks sized so the per-chunk state
(bitmaps, thresholds, live-edge flags) stays within ``_TARGET_BYTES``;
arbitrarily many worlds stream through a fixed working set, mirroring the
chunked visited bitmap of the batched RR sampler.

**Oracle contract.**  The sequential simulators are kept byte-identical and
remain the equivalence oracles: for a fixed RNG they reproduce the
historical stream bit for bit, while the batched engine consumes randomness
in a different (vectorized) order and is therefore *statistically*
equivalent — same per-world outcome distribution, different realizations.
Tests pin both: exact agreement on deterministic instances (probability-1
edges, degenerate GAPs, zero noise) and distributional agreement elsewhere
(``tests/test_batch_forward.py``).  Backend selection follows the engine
convention (explicit argument > ``$REPRO_RR_BACKEND`` > batched) at the
call sites — :func:`repro.diffusion.comic.estimate_comic_spread`,
:func:`repro.diffusion.welfare.estimate_welfare` and the Com-IC baselines'
forward-world pass.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.adoption import TIE_TOL
from repro.diffusion.comic import ITEM_A, ITEM_B, ComICModel
from repro.diffusion.triggering import (
    IndependentCascadeTriggering,
    TriggerCSR,
    TriggeringModel,
    build_trigger_csr,
    has_trigger_distribution,
    segmented_positions,
)
from repro.diffusion.triggering import (
    sample_trigger_members as _sample_trigger_members,
)
from repro.graph.digraph import InfluenceGraph
from repro.utility.itemsets import iter_subsets
from repro.utility.model import UtilityModel
from repro.utility.noise import NoiseWorld

#: Per-chunk budget for the flat world state (bytes, approximate).
_TARGET_BYTES = 1 << 26  # 64 MB

#: Largest item universe the UIC decision-table path handles; beyond this
#: the ``3^k`` table construction stops paying for itself and callers fall
#: back to the sequential simulator (see ``supports_batched_uic``).
MAX_BATCH_ITEMS = 6


def as_generator(rng) -> np.random.Generator:
    """Coerce ``None`` / integer seed / ``Generator`` into a ``Generator``.

    Integer seeds go through :class:`numpy.random.SeedSequence`, the same
    root the sequential per-world spawning uses, so an integer seed names
    one reproducible experiment on either backend.
    """
    if rng is None:
        return np.random.default_rng(0)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(np.random.SeedSequence(int(rng)))
    return rng


def spawn_world_rngs(seed: int, num_worlds: int) -> List[np.random.Generator]:
    """Independent per-world child generators from one integer seed.

    ``SeedSequence.spawn`` guarantees stream independence, so world ``i``'s
    realization depends only on ``(seed, i)`` — not on how many worlds are
    sampled around it.  The sequential estimators use these children when
    handed an integer seed, making CLI runs reproducible world by world.
    """
    children = np.random.SeedSequence(int(seed)).spawn(num_worlds)
    return [np.random.default_rng(child) for child in children]


def _world_chunks(num_worlds: int, bytes_per_world: int) -> Iterable[int]:
    """Yield chunk sizes whose state stays within ``_TARGET_BYTES``."""
    chunk = max(1, min(num_worlds, _TARGET_BYTES // max(bytes_per_world, 1)))
    remaining = num_worlds
    while remaining > 0:
        batch = min(chunk, remaining)
        yield batch
        remaining -= batch


def _gather_out_edges(
    graph: InfluenceGraph, frontier_n: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, int]]:
    """Segmented gather of every candidate out-edge of a flat frontier.

    The forward mirror of ``repro.rrset.batch._gather_in_edges``: returns
    ``(dst, probs, degs, total)`` — flattened targets, the edge
    probabilities, per-node degrees and the total count — or ``None`` when
    the frontier has no out-edges at all.
    """
    indptr = graph._out_indptr
    starts = indptr[frontier_n]
    degs = indptr[frontier_n + 1] - starts
    total = int(degs.sum())
    if total == 0:
        return None
    pos = segmented_positions(starts, degs)
    return graph._out_targets[pos], graph._out_probs[pos], degs, total


def _seed_frontier(
    seeds: np.ndarray, batch: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Initial flat ``(world, node)`` frontier: every seed in every world."""
    fw = np.repeat(np.arange(batch, dtype=np.int64), seeds.shape[0])
    fn = np.tile(seeds, batch)
    return fw, fn


class _LiveEdgeLog:
    """Lazy per-chunk live-edge cache with first-visit coin flips.

    The sequential Com-IC/UIC simulators test a node's out-edges the first
    time it adopts and *cache* the live targets — by the deferred-decision
    principle each (world, edge) pair is flipped at most once.  Pre-sampling
    the full ``(worlds, m)`` coin matrix reproduces that, but pays for every
    edge of every world even though only the out-edges of *adopting* nodes
    are ever consulted (a small fraction on typical instances).  This log
    keeps the lazy semantics instead: the first time a ``(world, node)``
    pair propagates, its out-edge coins are flipped vectorized and the live
    targets are appended to a per-round segment (keys sorted, CSR over
    pairs); re-propagations (a node adopting additional items later) look
    their cached targets up by binary search over the few round segments.

    Callers must pass each round's ``(world, node)`` pairs de-duplicated.
    """

    __slots__ = ("_n", "_expanded", "_seg_keys", "_seg_indptr", "_seg_targets")

    def __init__(self, batch: int, n: int):
        self._n = n
        self._expanded = np.zeros((batch, n), dtype=bool)
        self._seg_keys: List[np.ndarray] = []
        self._seg_indptr: List[np.ndarray] = []
        self._seg_targets: List[np.ndarray] = []

    def live_targets(
        self,
        graph: InfluenceGraph,
        rng: np.random.Generator,
        fw: np.ndarray,
        fn: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Live out-targets of unique frontier pairs ``(fw[i], fn[i])``.

        Returns ``(entry, targets)``: ``targets[j]`` is live for the
        frontier entry ``entry[j]`` (an index into ``fw``/``fn``), mixing
        fresh first-visit samples with cached repeat lookups.
        """
        keys = fw * self._n + fn
        first = ~self._expanded[fw, fn]
        entry_parts: List[np.ndarray] = []
        target_parts: List[np.ndarray] = []

        repeat_idx = np.flatnonzero(~first)
        if repeat_idx.size:
            repeat_keys = keys[repeat_idx]
            for seg_keys, seg_indptr, seg_targets in zip(
                self._seg_keys, self._seg_indptr, self._seg_targets
            ):
                pos = np.searchsorted(seg_keys, repeat_keys)
                safe = np.minimum(pos, seg_keys.shape[0] - 1)
                found = seg_keys[safe] == repeat_keys
                if not found.any():
                    continue
                hit_idx = repeat_idx[found]
                hit_pos = safe[found]
                starts = seg_indptr[hit_pos]
                degs = seg_indptr[hit_pos + 1] - starts
                gather = segmented_positions(starts, degs)
                if gather.shape[0]:
                    entry_parts.append(np.repeat(hit_idx, degs))
                    target_parts.append(seg_targets[gather])

        first_idx = np.flatnonzero(first)
        if first_idx.size:
            self._expanded[fw[first_idx], fn[first_idx]] = True
            gathered = _gather_out_edges(graph, fn[first_idx])
            if gathered is not None:
                dst, probs, degs, total = gathered
                live = rng.random(total) < probs
                within = np.repeat(
                    np.arange(first_idx.shape[0]), degs
                )[live]
                live_targets = dst[live]
                entry_parts.append(first_idx[within])
                target_parts.append(live_targets)
                # Log this round's samples, sorted by key for the repeat
                # lookups of later rounds.
                live_degs = np.bincount(
                    within, minlength=first_idx.shape[0]
                )
                seg_keys = keys[first_idx]
                order = np.argsort(seg_keys, kind="stable")
                seg_indptr = np.zeros(
                    first_idx.shape[0] + 1, dtype=np.int64
                )
                np.cumsum(live_degs[order], out=seg_indptr[1:])
                # ``within`` is non-decreasing, so ``live_targets`` is
                # already grouped per pair; remap each contiguous run to
                # key order.
                sorted_targets = live_targets
                starts = np.concatenate(
                    ([0], np.cumsum(live_degs))
                )[:-1]
                run = np.repeat(
                    starts[order] - (seg_indptr[:-1]), live_degs[order]
                )
                self._seg_keys.append(seg_keys[order])
                self._seg_indptr.append(seg_indptr)
                self._seg_targets.append(
                    sorted_targets[
                        np.arange(int(seg_indptr[-1])) + run
                    ]
                )
        if not entry_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(entry_parts), np.concatenate(target_parts)


# ----------------------------------------------------------------------
# IC
# ----------------------------------------------------------------------
def batch_simulate_ic(
    graph: InfluenceGraph,
    seeds: Sequence[int],
    num_worlds: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Simulate ``num_worlds`` IC cascades at once.

    Returns a ``(num_worlds, n)`` boolean bitmap of active nodes; row
    ``w`` is distributed identically to
    ``simulate_ic(graph, seeds, rng)``.  Edge coins are flipped per
    discovery — each (world, edge) at most once, since an IC node enters
    the frontier exactly once per world.
    """
    n = graph.num_nodes
    if num_worlds < 0:
        raise ValueError(f"num_worlds must be non-negative, got {num_worlds}")
    seeds_arr = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seeds_arr.size and (seeds_arr[0] < 0 or seeds_arr[-1] >= n):
        raise IndexError(f"seed outside graph of {n} nodes")
    active = np.zeros((num_worlds, n), dtype=bool)
    if num_worlds == 0 or seeds_arr.size == 0:
        return active
    done = 0
    for batch in _world_chunks(num_worlds, n):
        sub = active[done : done + batch]
        fw, fn = _seed_frontier(seeds_arr, batch)
        sub[fw, fn] = True
        while fw.size:
            gathered = _gather_out_edges(graph, fn)
            if gathered is None:
                break
            dst, probs, degs, total = gathered
            live = rng.random(total) < probs
            w = np.repeat(fw, degs)[live]
            t = dst[live]
            if w.size:
                fresh = ~sub[w, t]
                w = w[fresh]
                t = t[fresh]
            if w.size == 0:
                break
            key = np.unique(w * n + t)
            w = key // n
            t = key % n
            sub[w, t] = True
            fw, fn = w, t
        done += batch
    return active


# ----------------------------------------------------------------------
# Com-IC
# ----------------------------------------------------------------------
@dataclass
class BatchComICResult:
    """Adoption bitmaps of a batch of Com-IC worlds.

    ``adopted_a`` / ``adopted_b`` are ``(num_worlds, n)`` boolean arrays;
    row ``w`` is one possible world's adopter set per item.
    """

    adopted_a: np.ndarray
    adopted_b: np.ndarray

    def adopters_bitmap(self, item: int) -> np.ndarray:
        """Per-world adopter bitmap of the given item."""
        if item == ITEM_A:
            return self.adopted_a
        if item == ITEM_B:
            return self.adopted_b
        raise ValueError(f"Com-IC supports items 0 and 1, got {item}")

    def adopter_counts(self, item: int) -> np.ndarray:
        """Per-world adopter counts of the given item."""
        return self.adopters_bitmap(item).sum(axis=1)


def batch_simulate_comic(
    graph: InfluenceGraph,
    model: ComICModel,
    seeds_a: Sequence[int],
    seeds_b: Sequence[int],
    num_worlds: int,
    rng: np.random.Generator,
) -> BatchComICResult:
    """Simulate ``num_worlds`` Com-IC possible worlds at once.

    Each world row follows exactly the distribution of
    :func:`repro.diffusion.comic.simulate_comic`: per-node thresholds
    ``λ(v, item) ~ U[0,1)`` realize the GAP automaton (with automatic
    reconsideration in the mutually complementary regime), and live edges
    are pre-sampled per world (the deferred-decision equivalent of the
    sequential simulator's lazy edge tests).
    """
    if not model.is_mutually_complementary():
        raise ValueError(
            "batch_simulate_comic implements the mutually complementary "
            "regime; got a competitive parameterization"
        )
    n = graph.num_nodes
    if num_worlds < 0:
        raise ValueError(f"num_worlds must be non-negative, got {num_worlds}")
    adopted_a = np.zeros((num_worlds, n), dtype=bool)
    adopted_b = np.zeros((num_worlds, n), dtype=bool)
    seeds = []
    for item, item_seeds in ((ITEM_A, seeds_a), (ITEM_B, seeds_b)):
        arr = np.unique(np.asarray(list(item_seeds), dtype=np.int64))
        if arr.size and (arr[0] < 0 or arr[-1] >= n):
            raise IndexError(f"seed outside graph of {n} nodes")
        seeds.append(arr)
    if num_worlds == 0 or (seeds[0].size == 0 and seeds[1].size == 0):
        return BatchComICResult(adopted_a, adopted_b)

    # q_table[item, has_other]: the GAP the threshold is compared against.
    q_table = np.array(
        [
            [model.q_a_empty, model.q_a_given_b],
            [model.q_b_empty, model.q_b_given_a],
        ],
        dtype=np.float64,
    )
    # Per-world bytes: thresholds (2 float64) + informed/adopted (4 bool) +
    # the live-edge log's expanded bitmap per node.
    bytes_per_world = 21 * n
    done = 0
    for batch in _world_chunks(num_worlds, bytes_per_world):
        thresholds = rng.random((batch, n, 2))
        live_log = _LiveEdgeLog(batch, n)
        informed = np.zeros((batch, n, 2), dtype=bool)
        adopted = np.zeros((batch, n, 2), dtype=bool)

        # Initial information events: every seed of every item, every world.
        parts_w, parts_v, parts_i = [], [], []
        for item in (ITEM_A, ITEM_B):
            if seeds[item].size:
                fw, fn = _seed_frontier(seeds[item], batch)
                parts_w.append(fw)
                parts_v.append(fn)
                parts_i.append(np.full(fw.shape[0], item, dtype=np.int64))
        ew = np.concatenate(parts_w)
        ev = np.concatenate(parts_v)
        ei = np.concatenate(parts_i)

        while ew.size:
            informed[ew, ev, ei] = True
            # First wave: the NLA with the *current* other-item state.
            has_other = adopted[ew, ev, 1 - ei].astype(np.int64)
            passes = thresholds[ew, ev, ei] <= q_table[ei, has_other]
            aw, av, ai = ew[passes], ev[passes], ei[passes]
            adopted[aw, av, ai] = True
            # Reconsideration: a fresh adoption boosts the other item's GAP;
            # nodes informed of the other item earlier (or this round) that
            # suspended it re-run the automaton against q(other | item).
            oi = 1 - ai
            redo = (
                informed[aw, av, oi]
                & ~adopted[aw, av, oi]
                & (thresholds[aw, av, oi] <= q_table[oi, 1])
            )
            rw, rv, ri = aw[redo], av[redo], oi[redo]
            adopted[rw, rv, ri] = True

            nw = np.concatenate([aw, rw])
            nv = np.concatenate([av, rv])
            ni = np.concatenate([ai, ri])
            if nw.size == 0:
                break
            # Group this round's adoptions by (world, node) — a node that
            # adopted both items this round spreads them over the *same*
            # live out-edges, so the live-edge log is queried once per pair.
            key = nw * n + nv
            order = np.argsort(key, kind="stable")
            key_sorted = key[order]
            bounds = np.concatenate(
                ([0], np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1)
            )
            item_masks = np.bitwise_or.reduceat(
                np.left_shift(1, ni)[order], bounds
            )
            uw = key_sorted[bounds] // n
            uv = key_sorted[bounds] % n
            entry, targets = live_log.live_targets(graph, rng, uw, uv)
            if entry.size == 0:
                break
            event_parts = []
            spread_mask = item_masks[entry]
            for item in (ITEM_A, ITEM_B):
                carries = (spread_mask >> item) & 1 == 1
                w_i = uw[entry[carries]]
                t_i = targets[carries]
                if w_i.size:
                    fresh = ~informed[w_i, t_i, item]
                    w_i, t_i = w_i[fresh], t_i[fresh]
                if w_i.size:
                    event_parts.append((w_i * n + t_i) * 2 + item)
            if not event_parts:
                break
            key = np.unique(np.concatenate(event_parts))
            item = key % 2
            wt = key // 2
            ew, ev, ei = wt // n, wt % n, item
        adopted_a[done : done + batch] = adopted[:, :, ITEM_A]
        adopted_b[done : done + batch] = adopted[:, :, ITEM_B]
        done += batch
    return BatchComICResult(adopted_a, adopted_b)


# ----------------------------------------------------------------------
# UIC
# ----------------------------------------------------------------------
@dataclass
class BatchUICResult:
    """Adoption masks and realized welfare of a batch of UIC worlds.

    ``adopted`` is ``(num_worlds, n)`` int64 itemset masks; ``welfare`` is
    the per-world realized social welfare ``Σ_v U_W(A(v))``.
    """

    adopted: np.ndarray
    welfare: np.ndarray

    def adopter_counts(self, item: Optional[int] = None) -> np.ndarray:
        """Per-world adoption totals (all (node, item) pairs, or one item)."""
        if item is None:
            popcount = _popcounts(int(self.adopted.max()) + 1)
            return popcount[self.adopted].sum(axis=1)
        return ((self.adopted >> item) & 1).sum(axis=1)


def supports_batched_uic(
    model: UtilityModel, triggering: Optional[TriggeringModel]
) -> bool:
    """Whether the batched UIC engine covers this (model, triggering) pair.

    Requires an item universe small enough for the ``3^k`` decision-table
    construction and a triggering model the vectorized world sampler can
    realize: the IC fast path, or any model with an explicit trigger
    distribution (LT and every :class:`DistributionTriggering`).
    """
    if model.num_items > MAX_BATCH_ITEMS:
        return False
    if triggering is None or isinstance(
        triggering, IndependentCascadeTriggering
    ):
        return True
    return has_trigger_distribution(triggering)


def warn_uic_item_cap_fallback(
    model: UtilityModel, stacklevel: int = 3
) -> None:
    """Warn that a batched-backend request is degrading to sequential.

    Called by the forward estimators when the resolved backend is
    ``batched`` but the item universe exceeds :data:`MAX_BATCH_ITEMS` —
    the one capability gap with a real performance cliff (the ``3^k``
    decision tables stop paying for themselves, so every world runs the
    interpreted simulator).  An explicit :class:`UserWarning` beats the
    previous silent degradation: callers sizing item universes find out
    *why* their estimate got slow instead of blaming the engine.
    """
    if model.num_items > MAX_BATCH_ITEMS:
        warnings.warn(
            f"batched UIC engine supports at most {MAX_BATCH_ITEMS} items; "
            f"model has {model.num_items} — falling back to the sequential "
            "per-world simulator (expect an order-of-magnitude slowdown). "
            "Shrink the item universe or pass backend='sequential' to "
            "silence this warning.",
            UserWarning,
            stacklevel=stacklevel,
        )


def _popcounts(size: int) -> np.ndarray:
    """Bit-count lookup table for masks ``0 .. size-1``."""
    masks = np.arange(size, dtype=np.int64)
    counts = np.zeros(size, dtype=np.int64)
    while masks.any():
        counts += masks & 1
        masks >>= 1
    return counts


def _decision_tables(tables: np.ndarray) -> np.ndarray:
    """Tabulate the adoption rule for every world and (desire, adopted) pair.

    ``tables`` is ``(num_worlds, 2^k)`` realized utilities;  the result
    ``decision[w, desire, adopted]`` equals
    ``adopt(tables[w], desire, adopted)`` for every valid pair (``adopted ⊆
    desire``; other cells stay 0 and are never read).  One vectorized pass
    per (desire, adopted) pair — ``3^k`` numpy evaluations total — instead
    of a Python subset enumeration per touched (world, node).  Ties within
    ``TIE_TOL`` are resolved exactly like :func:`repro.diffusion.adoption.
    adopt``: union of tied maximizers if the union keeps the utility,
    else the largest (earliest-enumerated) single maximizer.
    """
    num_worlds, size = tables.shape
    popcount = _popcounts(size)
    decision = np.zeros((num_worlds, size, size), dtype=np.int64)
    for desire in range(size):
        for extra_base in iter_subsets(desire):
            adopted = desire & ~extra_base  # adopted ranges over subsets too
            free = desire & ~adopted
            cands = np.fromiter(
                (adopted | extra for extra in iter_subsets(free)),
                dtype=np.int64,
            )
            if cands.shape[0] == 1:
                decision[:, desire, adopted] = adopted
                continue
            values = tables[:, cands]
            best = values.max(axis=1)
            tied = values >= (best - TIE_TOL)[:, None]
            union = np.bitwise_or.reduce(
                np.where(tied, cands[None, :], 0), axis=1
            )
            # Largest tied candidate, earliest enumeration order on size
            # ties — the sequential rule's fallback preference.
            count = cands.shape[0]
            rank = popcount[cands] * count - np.arange(count)
            single = cands[np.where(tied, rank[None, :], -1).argmax(axis=1)]
            union_value = np.take_along_axis(
                tables, union[:, None], axis=1
            )[:, 0]
            decision[:, desire, adopted] = np.where(
                union_value >= best - 1e-9, union, single
            )
    return decision


class _LazyTriggerLog:
    """Trigger sets sampled lazily per first-*targeted* (world, node).

    Under a triggering model, edge ``(u, v)`` is live in world ``w`` iff
    ``u`` lies in ``v``'s sampled trigger set — the decision belongs to the
    *target*.  Pre-sampling every ``(world, node)`` trigger set up front
    (the historical path) pays ``O(batch × n)`` draws and ``O(batch × m)``
    member memory even though a cascade only ever consults the targets its
    frontier actually points at.  This log defers each pair's draw to the
    first round some frontier edge reaches it (the deferred-decision
    principle: at most one draw per pair, fixed thereafter), bounding both
    cost and memory by the *reached* neighborhood instead of the world.

    Sampled pairs accrue in per-round segments: sorted pair keys
    ``w·n + v`` with a CSR of trigger members, each member list sorted so a
    combined key ``(w·n + v)·n + u`` is globally sorted within the segment
    and edge-liveness queries resolve to one ``np.searchsorted`` per
    segment.  Re-propagations (a node spreading additional items later)
    re-test membership against the same fixed draws — deterministic, no
    fresh randomness.
    """

    __slots__ = ("_n", "_csr", "_sampled", "_seg_edge_keys")

    def __init__(self, batch: int, n: int, csr: TriggerCSR):
        self._n = n
        self._csr = csr
        self._sampled = np.zeros((batch, n), dtype=bool)
        self._seg_edge_keys: List[np.ndarray] = []

    def live_mask(
        self,
        rng: np.random.Generator,
        w: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
    ) -> np.ndarray:
        """Which candidate edges ``(u[i] -> v[i], world w[i])`` are live."""
        n = self._n
        pair_keys = w * n + v
        fresh = ~self._sampled[w, v]
        if fresh.any():
            new_keys = np.unique(pair_keys[fresh])
            nv = new_keys % n
            members, degs = _sample_trigger_members(
                self._csr, nv, rng.random(new_keys.shape[0])
            )
            self._sampled[new_keys // n, nv] = True
            if members.shape[0]:
                rep = np.repeat(new_keys, degs)
                # Sort members within each pair so the combined (pair,
                # member) key is globally ascending in the segment.
                edge_keys = np.sort(rep * n + members)
                self._seg_edge_keys.append(edge_keys)
        live = np.zeros(w.shape[0], dtype=bool)
        query = pair_keys * n + u
        for edge_keys in self._seg_edge_keys:
            pos = np.searchsorted(edge_keys, query)
            safe = np.minimum(pos, edge_keys.shape[0] - 1)
            live |= edge_keys[safe] == query
        return live


def batch_simulate_uic(
    graph: InfluenceGraph,
    model: UtilityModel,
    allocation: Iterable[Tuple[int, int]],
    num_worlds: int,
    rng: np.random.Generator,
    noise_world: Optional[NoiseWorld] = None,
    triggering: Optional[TriggeringModel] = None,
) -> BatchUICResult:
    """Simulate ``num_worlds`` UIC possible worlds at once.

    Each world samples its own noise world (unless a fixed ``noise_world``
    is supplied) and edge world, then runs the utility-maximizing adoption
    dynamics of :func:`repro.diffusion.uic.simulate_uic` to the fixpoint;
    per-world outcomes are distributed identically to the sequential
    simulator's.  ``triggering`` follows the §5 extension: ``None`` is the
    IC fast path, anything else must satisfy :func:`supports_batched_uic`.
    """
    n = graph.num_nodes
    k = model.num_items
    if num_worlds < 0:
        raise ValueError(f"num_worlds must be non-negative, got {num_worlds}")
    if not supports_batched_uic(model, triggering):
        raise ValueError(
            f"batched UIC needs <= {MAX_BATCH_ITEMS} items and a "
            "vectorizable triggering model; use the sequential simulator"
        )
    size = 1 << k
    desire0 = np.zeros(n, dtype=np.int64)
    for node, item in allocation:
        node = int(node)
        if not 0 <= node < n:
            raise IndexError(f"seed node {node} outside graph")
        if not 0 <= int(item) < k:
            raise IndexError(f"item {item} outside universe")
        desire0[node] |= 1 << int(item)
    seed_nodes = np.flatnonzero(desire0)

    adopted_out = np.zeros((num_worlds, n), dtype=np.int64)
    welfare_out = np.zeros(num_worlds, dtype=np.float64)
    if num_worlds == 0:
        return BatchUICResult(adopted_out, welfare_out)

    ic_path = triggering is None or isinstance(
        triggering, IndependentCascadeTriggering
    )
    trigger_csr = None if ic_path else build_trigger_csr(graph, triggering)
    # Per-world bytes: desire+adopted masks (16 per node), the live-edge /
    # lazy-trigger log's bitmap (1 per node), utility and decision tables
    # (8 * (size + size^2)).  The lazy trigger log's member segments scale
    # with the *reached* neighborhood; chunking budgets their worst case
    # (every trigger set drawn, ~8 bytes per member, <= 8m per world) so a
    # full-reach cascade still respects _TARGET_BYTES.
    bytes_per_world = 33 * n + 8 * (size + size * size)
    if not ic_path:
        bytes_per_world += 8 * graph.num_edges
    done = 0
    while done < num_worlds:
        batch = next(iter(_world_chunks(num_worlds - done, bytes_per_world)))
        if noise_world is not None:
            noise_worlds = np.broadcast_to(
                np.asarray(noise_world, dtype=np.float64), (batch, k)
            )
        else:
            noise_worlds = model.noise.sample_batch(rng, batch)
        tables = model.utility_tables(noise_worlds)
        decision = _decision_tables(tables)
        if ic_path:
            live_log = _LiveEdgeLog(batch, n)
            trigger_log = None
        else:
            live_log = None
            trigger_log = _LazyTriggerLog(batch, n, trigger_csr)

        desire = np.zeros((batch, n), dtype=np.int64)
        adopted = np.zeros((batch, n), dtype=np.int64)
        # t = 1: seeds desire their allocation and adopt the
        # utility-maximizing subset (rational users, like everyone else).
        if seed_nodes.size:
            desire[:, seed_nodes] = desire0[seed_nodes][None, :]
            adopted[:, seed_nodes] = decision[
                np.arange(batch)[:, None], desire0[seed_nodes][None, :], 0
            ]
            fw, fn = _seed_frontier(seed_nodes, batch)
            keep = adopted[fw, fn] != 0
            fw, fn = fw[keep], fn[keep]
        else:
            fw = fn = np.empty(0, dtype=np.int64)

        while fw.size:
            # Gather each frontier node's live out-targets.
            if ic_path:
                entry, t = live_log.live_targets(graph, rng, fw, fn)
                if entry.size == 0:
                    break
                w = fw[entry]
                src_mask = adopted[fw, fn][entry]
            else:
                # Candidate out-edges of the frontier; each target's
                # trigger set is drawn lazily on first contact, then an
                # edge is live iff its source is among the drawn members.
                gathered = _gather_out_edges(graph, fn)
                if gathered is None:
                    break
                t, _, degs, _ = gathered
                w = np.repeat(fw, degs)
                cand_u = np.repeat(fn, degs)
                src_mask = np.repeat(adopted[fw, fn], degs)
                live = trigger_log.live_mask(rng, w, cand_u, t)
                w, t, src_mask = w[live], t[live], src_mask[live]
            if w.size == 0:
                break
            # OR all incoming masks per touched (world, target) pair.
            key = w * n + t
            order = np.argsort(key, kind="stable")
            key_sorted = key[order]
            boundaries = np.concatenate(
                ([0], np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1)
            )
            touched_key = key_sorted[boundaries]
            incoming = np.bitwise_or.reduceat(src_mask[order], boundaries)
            tw, tv = touched_key // n, touched_key % n
            new_desire = desire[tw, tv] | incoming
            grew = new_desire != desire[tw, tv]
            tw, tv, new_desire = tw[grew], tv[grew], new_desire[grew]
            if tw.size == 0:
                break
            desire[tw, tv] = new_desire
            old = adopted[tw, tv]
            new = decision[tw, new_desire, old]
            changed = new != old
            fw, fn = tw[changed], tv[changed]
            adopted[fw, fn] = new[changed]

        realized = np.take_along_axis(tables, adopted, axis=1)
        welfare_out[done : done + batch] = np.where(
            adopted > 0, realized, 0.0
        ).sum(axis=1)
        adopted_out[done : done + batch] = adopted
        done += batch
    return BatchUICResult(adopted_out, welfare_out)


class _PersonalTables:
    """Lazily sampled per-(world, node) noise, utility and decision tables.

    The §5 personalized-noise variant gives every *node* its own noise
    world, so the per-world decision table of :func:`batch_simulate_uic`
    becomes per-(world, node).  Materializing all ``batch × n`` of them
    would dwarf the rest of the state; instead each pair samples its noise
    the first time it has to make an adoption decision — exactly the lazy
    semantics of :func:`repro.diffusion.personalized.
    simulate_uic_personalized` — and the tables of all fresh pairs in a
    round are built in one vectorized ``_decision_tables`` call.  Rows
    accrue in doubling arrays; ``row_of`` maps (world, node) to its row.
    """

    __slots__ = ("_model", "_row", "_tables", "_decision", "_used")

    def __init__(self, model: UtilityModel, batch: int, n: int):
        size = 1 << model.num_items
        self._model = model
        self._row = np.full((batch, n), -1, dtype=np.int64)
        self._tables = np.empty((16, size), dtype=np.float64)
        self._decision = np.empty((16, size, size), dtype=np.int64)
        self._used = 0

    def ensure(
        self, rng: np.random.Generator, w: np.ndarray, v: np.ndarray
    ) -> None:
        """Sample tables for the not-yet-seen pairs among ``(w, v)``.

        Pairs must be unique within the call (they are: callers pass the
        de-duplicated touched set of a round).
        """
        fresh = self._row[w, v] < 0
        count = int(fresh.sum())
        if count == 0:
            return
        noises = self._model.noise.sample_batch(rng, count)
        tables = self._model.utility_tables(noises)
        need = self._used + count
        if need > self._tables.shape[0]:
            cap = max(need, 2 * self._tables.shape[0])
            grown_t = np.empty((cap,) + self._tables.shape[1:], dtype=np.float64)
            grown_t[: self._used] = self._tables[: self._used]
            self._tables = grown_t
            grown_d = np.empty(
                (cap,) + self._decision.shape[1:], dtype=np.int64
            )
            grown_d[: self._used] = self._decision[: self._used]
            self._decision = grown_d
        self._tables[self._used : need] = tables
        self._decision[self._used : need] = _decision_tables(tables)
        self._row[w[fresh], v[fresh]] = self._used + np.arange(count)
        self._used = need

    def decide(
        self, w: np.ndarray, v: np.ndarray, desire: np.ndarray,
        adopted: np.ndarray,
    ) -> np.ndarray:
        """``adopt`` under each pair's private noise (tables must exist)."""
        rows = self._row[w, v]
        return self._decision[rows, desire, adopted]

    def realized_welfare(
        self, adopted: np.ndarray
    ) -> np.ndarray:
        """Per-world welfare ``Σ_v U_{W(v)}(A(v))`` over adopters."""
        batch = adopted.shape[0]
        welfare = np.zeros(batch, dtype=np.float64)
        w, v = np.nonzero(adopted > 0)
        if w.size:
            values = self._tables[self._row[w, v], adopted[w, v]]
            welfare = np.bincount(w, weights=values, minlength=batch)
        return welfare


def batch_simulate_uic_personalized(
    graph: InfluenceGraph,
    model: UtilityModel,
    allocation: Iterable[Tuple[int, int]],
    num_worlds: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Simulate ``num_worlds`` personalized-noise UIC worlds at once.

    The batched twin of :func:`repro.diffusion.personalized.
    simulate_uic_personalized`: every (world, node) pair draws its own
    noise world lazily on first contact (see :class:`_PersonalTables`),
    live edges follow the lazy first-visit IC log, and the propagation
    loop is the flat-frontier scheme of :func:`batch_simulate_uic`.
    Returns the per-world realized welfare array (the quantity the
    personalized-noise ablation estimates); outcome distributions match
    the sequential simulator's world for world.
    """
    n = graph.num_nodes
    k = model.num_items
    if num_worlds < 0:
        raise ValueError(f"num_worlds must be non-negative, got {num_worlds}")
    if k > MAX_BATCH_ITEMS:
        raise ValueError(
            f"batched personalized UIC needs <= {MAX_BATCH_ITEMS} items; "
            "use the sequential simulator"
        )
    desire0 = np.zeros(n, dtype=np.int64)
    for node, item in allocation:
        node = int(node)
        if not 0 <= node < n:
            raise IndexError(f"seed node {node} outside graph")
        if not 0 <= int(item) < k:
            raise IndexError(f"item {item} outside universe")
        desire0[node] |= 1 << int(item)
    seed_nodes = np.flatnonzero(desire0)

    welfare_out = np.zeros(num_worlds, dtype=np.float64)
    if num_worlds == 0 or seed_nodes.size == 0:
        return welfare_out

    # Per-world bytes: desire/adopted masks + the personal-table row map
    # (8 each per node) + the live-edge log's expanded bitmap, plus the
    # worst case of the lazily sampled per-pair tables — 8 * (2^k + 4^k)
    # bytes per *touched* (world, node) pair, budgeted as if every node
    # were touched so a full-reach cascade cannot blow past
    # ``_TARGET_BYTES``.  Large item universes therefore shrink the chunk
    # (k = 2, the paper's personalized setting, still batches hundreds of
    # worlds); the tables array itself grows on demand, so light-reach
    # cascades never actually allocate the worst case.
    size = 1 << k
    bytes_per_world = (25 + 8 * (size + size * size)) * n
    done = 0
    while done < num_worlds:
        batch = next(iter(_world_chunks(num_worlds - done, bytes_per_world)))
        live_log = _LiveEdgeLog(batch, n)
        personal = _PersonalTables(model, batch, n)
        desire = np.zeros((batch, n), dtype=np.int64)
        adopted = np.zeros((batch, n), dtype=np.int64)

        fw, fn = _seed_frontier(seed_nodes, batch)
        desire[fw, fn] = desire0[fn]
        personal.ensure(rng, fw, fn)
        adopted[fw, fn] = personal.decide(
            fw, fn, desire0[fn], np.zeros(fw.shape[0], dtype=np.int64)
        )
        keep = adopted[fw, fn] != 0
        fw, fn = fw[keep], fn[keep]

        while fw.size:
            entry, t = live_log.live_targets(graph, rng, fw, fn)
            if entry.size == 0:
                break
            w = fw[entry]
            src_mask = adopted[fw, fn][entry]
            key = w * n + t
            order = np.argsort(key, kind="stable")
            key_sorted = key[order]
            boundaries = np.concatenate(
                ([0], np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1)
            )
            touched_key = key_sorted[boundaries]
            incoming = np.bitwise_or.reduceat(src_mask[order], boundaries)
            tw, tv = touched_key // n, touched_key % n
            new_desire = desire[tw, tv] | incoming
            grew = new_desire != desire[tw, tv]
            tw, tv, new_desire = tw[grew], tv[grew], new_desire[grew]
            if tw.size == 0:
                break
            desire[tw, tv] = new_desire
            personal.ensure(rng, tw, tv)
            old = adopted[tw, tv]
            new = personal.decide(tw, tv, new_desire, old)
            changed = new != old
            fw, fn = tw[changed], tv[changed]
            adopted[fw, fn] = new[changed]

        welfare_out[done : done + batch] = personal.realized_welfare(adopted)
        done += batch
    return welfare_out
