"""Diffusion substrate: IC, UIC, Com-IC and possible worlds.

Implements the stochastic diffusion half of the reproduction: the classic
independent cascade model (:mod:`repro.diffusion.ic`), the paper's
utility-driven IC model (:mod:`repro.diffusion.uic`) with the local-maximum
adoption rule (:mod:`repro.diffusion.adoption`), live-edge possible worlds
(:mod:`repro.diffusion.worlds`), Monte-Carlo welfare estimation
(:mod:`repro.diffusion.welfare`) and the two-item Com-IC model used by the
RR-SIM+/RR-CIM baselines (:mod:`repro.diffusion.comic`).
"""

from repro.diffusion.adoption import adopt
from repro.diffusion.batch_forward import (
    BatchComICResult,
    BatchUICResult,
    batch_simulate_comic,
    batch_simulate_ic,
    batch_simulate_uic,
    supports_batched_uic,
)
from repro.diffusion.comic import (
    ComICModel,
    estimate_comic_spread,
    simulate_comic,
)
from repro.diffusion.ic import estimate_spread, simulate_ic
from repro.diffusion.uic import UICResult, simulate_uic
from repro.diffusion.welfare import (
    WelfareEstimate,
    estimate_adoption,
    estimate_welfare,
)
from repro.diffusion.worlds import LiveEdgeGraph, reachable_set, sample_live_edge_graph

__all__ = [
    "BatchComICResult",
    "BatchUICResult",
    "ComICModel",
    "LiveEdgeGraph",
    "UICResult",
    "WelfareEstimate",
    "adopt",
    "batch_simulate_comic",
    "batch_simulate_ic",
    "batch_simulate_uic",
    "estimate_adoption",
    "estimate_comic_spread",
    "estimate_spread",
    "estimate_welfare",
    "reachable_set",
    "sample_live_edge_graph",
    "simulate_comic",
    "simulate_ic",
    "simulate_uic",
    "supports_batched_uic",
]
