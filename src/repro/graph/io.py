"""Edge-list I/O and graph fingerprinting.

Supports the two formats common in IM research code:

* weighted: ``u v p`` per line (whitespace separated)
* unweighted: ``u v`` per line, with probabilities assigned afterwards by a
  scheme from :mod:`repro.graph.weighting` (SNAP datasets ship this way).

Lines starting with ``#`` or ``%`` are comments.  Node ids need not be
contiguous; they are compacted to ``0 .. n-1`` preserving first-seen order,
and the mapping is returned so callers can trace results back.

:func:`graph_fingerprint` hashes a graph's CSR arrays into a short hex
digest.  Persistent artifacts derived from a graph (the RR-sketch stores of
:mod:`repro.store`) embed the fingerprint so a stale artifact — built from a
different graph, or from an earlier version of the same dataset — is
detected at load time instead of silently serving wrong answers.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.graph.digraph import InfluenceGraph
from repro.graph.weighting import weighted_cascade

PathLike = Union[str, Path]


def graph_fingerprint(graph: InfluenceGraph) -> str:
    """Deterministic hex digest of a graph's structure and probabilities.

    Hashes ``n`` plus the forward CSR arrays (indptr, targets, probs) with
    SHA-256.  Two graphs share a fingerprint iff they have identical node
    counts, edge sets and float64 edge probabilities — the equality that
    makes an RR-sketch store built on one valid for the other.
    """
    digest = hashlib.sha256()
    digest.update(f"n={graph.num_nodes};".encode())
    for arr in (graph._out_indptr, graph._out_targets, graph._out_probs):
        digest.update(arr.tobytes())
    return digest.hexdigest()


def read_edge_list(
    path: PathLike,
    weighted: Optional[bool] = None,
    default_scheme: str = "wc",
) -> Tuple[InfluenceGraph, Dict[int, int]]:
    """Read an edge list file into an :class:`InfluenceGraph`.

    Parameters
    ----------
    path:
        File to read.
    weighted:
        ``True`` for ``u v p`` lines, ``False`` for ``u v`` lines, ``None`` to
        auto-detect from the first data line.
    default_scheme:
        Probability scheme for unweighted files (only ``"wc"`` supported here;
        use :func:`repro.graph.weighting.reweight` for others).

    Returns
    -------
    (graph, mapping):
        The graph, plus a dict mapping original node ids to compact ids.
    """
    raw: List[Tuple[int, int, Optional[float]]] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if weighted is None:
                weighted = len(parts) >= 3
            if weighted:
                if len(parts) < 3:
                    raise ValueError(f"expected 'u v p' line, got: {line!r}")
                raw.append((int(parts[0]), int(parts[1]), float(parts[2])))
            else:
                raw.append((int(parts[0]), int(parts[1]), None))

    mapping: Dict[int, int] = {}
    for u, v, _ in raw:
        for node in (u, v):
            if node not in mapping:
                mapping[node] = len(mapping)
    n = len(mapping)

    if weighted:
        graph = InfluenceGraph(
            n, ((mapping[u], mapping[v], p) for u, v, p in raw)
        )
    else:
        if default_scheme != "wc":
            raise ValueError(
                "unweighted files only support the 'wc' scheme at read time"
            )
        graph = weighted_cascade(
            n, ((mapping[u], mapping[v]) for u, v, _ in raw)
        )
    return graph, mapping


def write_edge_list(graph: InfluenceGraph, path: PathLike) -> None:
    """Write the graph as weighted ``u v p`` lines."""
    with open(path, "w") as f:
        f.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v, p in graph.edges():
            f.write(f"{u} {v} {p:.10g}\n")
