"""Structural analysis helpers.

Provides the pieces the paper's data preparation relies on: strongly connected
component extraction (Flixster is "a strongly connected component ... extracted"
[36]), BFS-based progressive subgraph growth (the Fig. 9(d) scalability test),
and degree statistics (Table 2).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.digraph import InfluenceGraph


def degree_statistics(graph: InfluenceGraph) -> Dict[str, float]:
    """Summary statistics in the shape of the paper's Table 2."""
    n = graph.num_nodes
    m = graph.num_edges
    out_degrees = np.array([graph.out_degree(v) for v in graph.nodes])
    in_degrees = np.array([graph.in_degree(v) for v in graph.nodes])
    return {
        "num_nodes": float(n),
        "num_edges": float(m),
        "avg_degree": float(m / n) if n else 0.0,
        "max_out_degree": float(out_degrees.max(initial=0)),
        "max_in_degree": float(in_degrees.max(initial=0)),
    }


def bfs_nodes(
    graph: InfluenceGraph, sources: Sequence[int], limit: Optional[int] = None
) -> List[int]:
    """Nodes reachable from ``sources`` in BFS order, up to ``limit`` nodes.

    Follows out-edges regardless of probability (topology-only BFS).
    """
    limit = graph.num_nodes if limit is None else limit
    visited = np.zeros(graph.num_nodes, dtype=bool)
    order: List[int] = []
    queue: deque[int] = deque()
    for s in sources:
        if not visited[s]:
            visited[s] = True
            queue.append(s)
            order.append(s)
    while queue and len(order) < limit:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            v = int(v)
            if not visited[v]:
                visited[v] = True
                order.append(v)
                if len(order) >= limit:
                    break
                queue.append(v)
    return order[:limit]


def bfs_subgraph(
    graph: InfluenceGraph, fraction: float, seed: int = 0
) -> InfluenceGraph:
    """Induced subgraph on ~``fraction`` of nodes grown by BFS.

    This is the progressive-growth procedure of the paper's scalability test
    (§4.3.4.5): "use breadth-first-search to progressively increase the network
    size such that it includes a certain percentage of the total nodes".
    Multiple BFS roots are used if one component is exhausted.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    target = max(1, int(round(fraction * graph.num_nodes)))
    rng = np.random.default_rng(seed)
    visited = np.zeros(graph.num_nodes, dtype=bool)
    order: List[int] = []
    while len(order) < target:
        remaining = np.flatnonzero(~visited)
        if remaining.size == 0:
            break
        root = int(rng.choice(remaining))
        component = bfs_nodes(graph, [root], limit=target - len(order))
        for v in component:
            if not visited[v]:
                visited[v] = True
                order.append(v)
    return graph.subgraph(order)


def strongly_connected_components(graph: InfluenceGraph) -> List[List[int]]:
    """Tarjan's SCC algorithm (iterative, stack-safe for large graphs)."""
    n = graph.num_nodes
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # iterative Tarjan: work stack of (node, iterator position)
        work: List[List[int]] = [[root, 0]]
        while work:
            v, pos = work[-1]
            if pos == 0:
                index_of[v] = counter
                lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            recursed = False
            neighbors = graph.out_neighbors(v)
            for i in range(pos, neighbors.shape[0]):
                w = int(neighbors[i])
                if index_of[w] == -1:
                    work[-1][1] = i + 1
                    work.append([w, 0])
                    recursed = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index_of[w])
            if recursed:
                continue
            work.pop()
            if lowlink[v] == index_of[v]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return components


def largest_scc(graph: InfluenceGraph) -> InfluenceGraph:
    """Induced subgraph on the largest strongly connected component."""
    components = strongly_connected_components(graph)
    if not components:
        return graph
    biggest = max(components, key=len)
    return graph.subgraph(sorted(biggest))
