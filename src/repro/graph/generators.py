"""Synthetic graph generators.

These generators produce the *topologies*; probability assignment is handled
separately by :mod:`repro.graph.weighting`.  All generators are deterministic
given a seed, which keeps tests and benchmarks reproducible.

The preferential-attachment generator follows the Bollobás et al. directed
scale-free construction in simplified form: it produces heavy-tailed in/out
degree distributions comparable to the social networks used in the paper's
evaluation (Table 2), which is what the RIS machinery's behaviour depends on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.graph.weighting import weighted_cascade

Arc = Tuple[int, int]


def erdos_renyi(
    num_nodes: int,
    avg_degree: float,
    seed: int = 0,
    directed: bool = True,
) -> List[Arc]:
    """G(n, p) arcs with expected average out-degree ``avg_degree``.

    For ``directed=False`` every sampled undirected pair contributes arcs in
    both directions, matching how IM work treats undirected social networks.
    """
    if num_nodes <= 1:
        return []
    rng = np.random.default_rng(seed)
    m = int(round(avg_degree * num_nodes / (1 if directed else 2)))
    m = max(m, 0)
    src = rng.integers(0, num_nodes, size=2 * m + 16)
    dst = rng.integers(0, num_nodes, size=2 * m + 16)
    arcs: List[Arc] = []
    seen = set()
    for u, v in zip(src, dst):
        if len(arcs) >= (m if directed else m):
            break
        u, v = int(u), int(v)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        arcs.append((u, v))
    if not directed:
        arcs = arcs + [(v, u) for (u, v) in arcs]
    return arcs


def preferential_attachment(
    num_nodes: int,
    out_degree: int,
    seed: int = 0,
    directed: bool = True,
) -> List[Arc]:
    """Barabási–Albert-style arcs: each new node attaches to ``out_degree``
    existing nodes chosen proportionally to their current degree.

    Produces the heavy-tailed degree distribution characteristic of the
    paper's datasets.  ``directed=False`` adds the reciprocal arc for every
    attachment, yielding a symmetric (undirected-style) graph.
    """
    if num_nodes <= 0:
        return []
    rng = np.random.default_rng(seed)
    k = max(1, min(out_degree, max(1, num_nodes - 1)))
    arcs: List[Arc] = []
    # repeated-nodes list implements degree-proportional sampling in O(1)
    repeated: List[int] = list(range(min(k + 1, num_nodes)))
    for new in range(len(repeated), num_nodes):
        targets = set()
        attempts = 0
        while len(targets) < k and attempts < 10 * k:
            pick = repeated[rng.integers(0, len(repeated))]
            attempts += 1
            if pick != new:
                targets.add(pick)
        for t in targets:
            arcs.append((new, t))
            repeated.append(t)
        repeated.append(new)
    if not directed:
        arcs = arcs + [(v, u) for (u, v) in arcs]
    return arcs


def watts_strogatz(
    num_nodes: int,
    nearest_neighbors: int = 4,
    rewire_probability: float = 0.1,
    seed: int = 0,
) -> List[Arc]:
    """Watts–Strogatz small-world arcs (directed, both ring directions).

    Start from a ring lattice where every node points to its ``k/2`` nearest
    neighbors on each side, then rewire each arc's target uniformly at random
    with probability ``rewire_probability`` (self loops and duplicates are
    re-drawn).  Small-world graphs have near-uniform degree — a useful
    counterpoint to the heavy-tailed generators when validating samplers.
    """
    if num_nodes <= 1:
        return []
    rng = np.random.default_rng(seed)
    half = max(1, nearest_neighbors // 2)
    arcs: List[Arc] = []
    seen = set()
    for u in range(num_nodes):
        for offset in range(1, half + 1):
            for v in ((u + offset) % num_nodes, (u - offset) % num_nodes):
                if rng.random() < rewire_probability:
                    for _ in range(10):
                        candidate = int(rng.integers(0, num_nodes))
                        if candidate != u and (u, candidate) not in seen:
                            v = candidate
                            break
                if u == v or (u, v) in seen:
                    continue
                seen.add((u, v))
                arcs.append((u, v))
    return arcs


def watts_strogatz_wc_graph(
    num_nodes: int,
    nearest_neighbors: int = 4,
    rewire_probability: float = 0.1,
    seed: int = 0,
) -> InfluenceGraph:
    """Watts–Strogatz topology with weighted-cascade probabilities."""
    arcs = watts_strogatz(
        num_nodes, nearest_neighbors, rewire_probability, seed=seed
    )
    return weighted_cascade(num_nodes, arcs)


def cycle_graph(num_nodes: int, probability: float = 1.0) -> InfluenceGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` with uniform probability."""
    edges = (
        (v, (v + 1) % num_nodes, probability) for v in range(num_nodes)
    )
    return InfluenceGraph(num_nodes, edges if num_nodes > 1 else [])


def line_graph(num_nodes: int, probability: float = 1.0) -> InfluenceGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` with uniform probability."""
    edges = ((v, v + 1, probability) for v in range(num_nodes - 1))
    return InfluenceGraph(num_nodes, edges)


def star_graph(
    num_leaves: int, probability: float = 1.0, outward: bool = True
) -> InfluenceGraph:
    """Star with hub node 0 and ``num_leaves`` leaves.

    ``outward=True`` points edges hub -> leaf (hub is a natural seed);
    otherwise leaf -> hub.
    """
    if outward:
        edges = ((0, leaf, probability) for leaf in range(1, num_leaves + 1))
    else:
        edges = ((leaf, 0, probability) for leaf in range(1, num_leaves + 1))
    return InfluenceGraph(num_leaves + 1, edges)


def complete_graph(num_nodes: int, probability: float = 1.0) -> InfluenceGraph:
    """Complete directed graph (both directions, no self loops)."""
    edges = (
        (u, v, probability)
        for u in range(num_nodes)
        for v in range(num_nodes)
        if u != v
    )
    return InfluenceGraph(num_nodes, edges)


def random_wc_graph(
    num_nodes: int,
    avg_degree: float,
    seed: int = 0,
    directed: bool = True,
    heavy_tailed: bool = True,
) -> InfluenceGraph:
    """Convenience: synthetic topology + weighted-cascade probabilities.

    This is the default workload graph across tests and benchmarks, mirroring
    the paper's default edge-probability setting of ``1/in_degree(v)``.
    """
    if heavy_tailed:
        arcs = preferential_attachment(
            num_nodes,
            max(1, int(round(avg_degree / (1 if directed else 2)))),
            seed=seed,
            directed=directed,
        )
    else:
        arcs = erdos_renyi(num_nodes, avg_degree, seed=seed, directed=directed)
    return weighted_cascade(num_nodes, arcs)


def two_node_edge(probability: float = 1.0) -> InfluenceGraph:
    """The 2-node graph ``v0 -> v1`` used by the paper's counterexamples."""
    return InfluenceGraph(2, [(0, 1, probability)])


def isolated_nodes(num_nodes: int) -> InfluenceGraph:
    """Graph with no edges (used by single-node counterexamples)."""
    return InfluenceGraph(num_nodes, [])
