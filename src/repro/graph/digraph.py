"""Compact directed influence graph.

The :class:`InfluenceGraph` is the substrate every diffusion and sampling
routine in this reproduction runs on.  It stores a directed graph
``G = (V, E, p)`` in compressed sparse row (CSR) form twice — once indexed by
source node (for forward simulation of cascades) and once indexed by target
node (for the reverse breadth-first searches that generate RR sets).  Edge
influence probabilities ``p : E -> [0, 1]`` are stored alongside each copy.

Nodes are integers ``0 .. n-1``.  Parallel edges are collapsed (keeping the
maximum probability) and self loops are dropped, mirroring the preprocessing
used by standard IM codebases.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int, float]


class InfluenceGraph:
    """A directed graph with per-edge influence probabilities.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; nodes are ``0 .. n-1``.
    edges:
        Iterable of ``(source, target, probability)`` triples.  Probabilities
        must lie in ``[0, 1]``.  Self loops are ignored and duplicate edges are
        merged keeping the largest probability.

    Notes
    -----
    The graph is immutable after construction.  All heavy consumers
    (Monte-Carlo diffusion, RR-set generation) read the private CSR arrays
    directly for speed; user code should stick to the public accessors.
    """

    __slots__ = (
        "_n",
        "_out_indptr",
        "_out_targets",
        "_out_probs",
        "_in_indptr",
        "_in_sources",
        "_in_probs",
        "_mmap_spec",
        "__weakref__",
    )

    def __init__(self, num_nodes: int, edges: Iterable[Edge]):
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._n = int(num_nodes)
        # Set by repro.graph.bigcsr.load_graph on file-backed graphs: a
        # picklable attachment spec letting the worker pool mmap the
        # backing .graph file instead of copying CSR arrays into shm.
        self._mmap_spec = None
        src, dst, prob = _clean_edges(self._n, edges)
        self._out_indptr, self._out_targets, self._out_probs = _build_csr(
            self._n, src, dst, prob
        )
        self._in_indptr, self._in_sources, self._in_probs = _build_csr(
            self._n, dst, src, prob
        )

    @classmethod
    def from_csr(
        cls,
        num_nodes: int,
        out_indptr: np.ndarray,
        out_targets: np.ndarray,
        out_probs: np.ndarray,
        in_indptr: np.ndarray,
        in_sources: np.ndarray,
        in_probs: np.ndarray,
    ) -> "InfluenceGraph":
        """Wrap already-built CSR arrays without copying or validation.

        Trusted constructor for the shared-memory workers: the arrays are
        adopted as-is (typically numpy views over a
        ``multiprocessing.shared_memory`` segment published by the parent
        process), so attaching to a graph is O(1) regardless of size.  The
        arrays must be exactly the six CSR arrays a normal construction
        would have produced — no cleaning, dedup or sorting happens here.
        """
        graph = cls.__new__(cls)
        graph._n = int(num_nodes)
        graph._mmap_spec = None
        graph._out_indptr = out_indptr
        graph._out_targets = out_targets
        graph._out_probs = out_probs
        graph._in_indptr = in_indptr
        graph._in_sources = in_sources
        graph._in_probs = in_probs
        return graph

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (after dedup / self-loop removal)."""
        return int(self._out_targets.shape[0])

    @property
    def nodes(self) -> range:
        """The node identifiers ``0 .. n-1``."""
        return range(self._n)

    def average_degree(self) -> float:
        """Average out-degree ``m / n`` (0 for the empty graph)."""
        if self._n == 0:
            return 0.0
        return self.num_edges / self._n

    # ------------------------------------------------------------------
    # Neighborhood accessors
    # ------------------------------------------------------------------
    def out_degree(self, u: int) -> int:
        """Out-degree of node ``u``."""
        self._check_node(u)
        return int(self._out_indptr[u + 1] - self._out_indptr[u])

    def in_degree(self, v: int) -> int:
        """In-degree of node ``v``."""
        self._check_node(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def out_neighbors(self, u: int) -> np.ndarray:
        """Targets of edges leaving ``u`` (read-only view)."""
        self._check_node(u)
        return self._out_targets[self._out_indptr[u] : self._out_indptr[u + 1]]

    def out_probabilities(self, u: int) -> np.ndarray:
        """Probabilities of edges leaving ``u``, aligned with out_neighbors."""
        self._check_node(u)
        return self._out_probs[self._out_indptr[u] : self._out_indptr[u + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of edges entering ``v`` (read-only view)."""
        self._check_node(v)
        return self._in_sources[self._in_indptr[v] : self._in_indptr[v + 1]]

    def in_probabilities(self, v: int) -> np.ndarray:
        """Probabilities of edges entering ``v``, aligned with in_neighbors."""
        self._check_node(v)
        return self._in_probs[self._in_indptr[v] : self._in_indptr[v + 1]]

    def edge_probability(self, u: int, v: int) -> float:
        """Probability of edge ``(u, v)``; 0.0 if the edge is absent."""
        neighbors = self.out_neighbors(u)
        idx = np.searchsorted(neighbors, v)
        if idx < neighbors.shape[0] and neighbors[idx] == v:
            return float(self.out_probabilities(u)[idx])
        return 0.0

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists."""
        neighbors = self.out_neighbors(u)
        idx = np.searchsorted(neighbors, v)
        return bool(idx < neighbors.shape[0] and neighbors[idx] == v)

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(source, target, probability)`` triples."""
        for u in range(self._n):
            start, end = self._out_indptr[u], self._out_indptr[u + 1]
            for k in range(start, end):
                yield (u, int(self._out_targets[k]), float(self._out_probs[k]))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "InfluenceGraph":
        """The transpose graph (every edge reversed, probabilities kept)."""
        return InfluenceGraph(
            self._n, ((v, u, p) for (u, v, p) in self.edges())
        )

    def with_probabilities(self, probability: float) -> "InfluenceGraph":
        """Copy of the graph with every edge probability replaced."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return InfluenceGraph(
            self._n, ((u, v, probability) for (u, v, _) in self.edges())
        )

    def subgraph(self, nodes: Sequence[int]) -> "InfluenceGraph":
        """Induced subgraph on ``nodes``, relabelled to ``0 .. len(nodes)-1``.

        The order of ``nodes`` defines the relabelling.
        """
        node_list = list(dict.fromkeys(int(v) for v in nodes))
        for v in node_list:
            self._check_node(v)
        index = {v: i for i, v in enumerate(node_list)}
        kept = (
            (index[u], index[v], p)
            for (u, v, p) in self.edges()
            if u in index and v in index
        )
        return InfluenceGraph(len(node_list), kept)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise IndexError(f"node {v} out of range [0, {self._n})")

    def __repr__(self) -> str:
        return (
            f"InfluenceGraph(num_nodes={self._n}, num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InfluenceGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._out_indptr, other._out_indptr)
            and np.array_equal(self._out_targets, other._out_targets)
            and np.allclose(self._out_probs, other._out_probs)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)


def _clean_edges(
    n: int, edges: Iterable[Edge]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate, drop self loops, and deduplicate an edge iterable."""
    best: dict[Tuple[int, int], float] = {}
    for u, v, p in edges:
        u, v, p = int(u), int(v), float(p)
        if not 0 <= u < n or not 0 <= v < n:
            raise IndexError(f"edge ({u}, {v}) references node outside [0, {n})")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"edge ({u}, {v}) has probability {p} outside [0, 1]")
        if u == v:
            continue
        key = (u, v)
        if p > best.get(key, -1.0):
            best[key] = p
    if not best:
        empty_i = np.empty(0, dtype=np.int64)
        return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
    src = np.fromiter((k[0] for k in best), dtype=np.int64, count=len(best))
    dst = np.fromiter((k[1] for k in best), dtype=np.int64, count=len(best))
    prob = np.fromiter(best.values(), dtype=np.float64, count=len(best))
    return src, dst, prob


def _build_csr(
    n: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build CSR arrays (indptr, indices, values) sorted by (row, col)."""
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols.copy(), vals.copy()
