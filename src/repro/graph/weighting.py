"""Edge-weighting schemes used in the influence-maximization literature.

The paper (following [26, 43, 51]) sets the probability of edge ``(u, v)`` to
``1 / in_degree(v)`` — the *weighted cascade* (WC) model.  The scalability
experiment of Fig. 9(d) additionally uses a fixed probability of ``0.01``; the
*trivalency* (TR) scheme is included for completeness since the baselines'
original papers evaluate on it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graph.digraph import Edge, InfluenceGraph


def weighted_cascade(
    num_nodes: int, arcs: Iterable[Tuple[int, int]]
) -> InfluenceGraph:
    """Build a graph where edge ``(u, v)`` has probability ``1/in_degree(v)``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    arcs:
        Iterable of ``(source, target)`` pairs (no probabilities).
    """
    arc_list = [(int(u), int(v)) for u, v in arcs]
    in_degree = np.zeros(num_nodes, dtype=np.int64)
    for u, v in arc_list:
        if u != v:
            in_degree[v] += 1
    edges = (
        (u, v, 1.0 / in_degree[v]) for u, v in arc_list if u != v
    )
    return InfluenceGraph(num_nodes, edges)


def fixed_probability(
    num_nodes: int, arcs: Iterable[Tuple[int, int]], probability: float = 0.01
) -> InfluenceGraph:
    """Build a graph where every edge has the same probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    return InfluenceGraph(num_nodes, ((u, v, probability) for u, v in arcs))


def trivalency(
    num_nodes: int,
    arcs: Iterable[Tuple[int, int]],
    levels: Sequence[float] = (0.1, 0.01, 0.001),
    rng: Optional[np.random.Generator] = None,
) -> InfluenceGraph:
    """Build a graph with probabilities drawn uniformly from ``levels``.

    The classic TR model assigns each edge one of {0.1, 0.01, 0.001} at
    random.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    level_arr = np.asarray(levels, dtype=np.float64)
    if level_arr.size == 0:
        raise ValueError("levels must be non-empty")
    if np.any(level_arr < 0) or np.any(level_arr > 1):
        raise ValueError("levels must lie in [0, 1]")

    def _edges() -> Iterable[Edge]:
        for u, v in arcs:
            yield (u, v, float(rng.choice(level_arr)))

    return InfluenceGraph(num_nodes, _edges())


def reweight(
    graph: InfluenceGraph, scheme: str = "wc", probability: float = 0.01
) -> InfluenceGraph:
    """Re-derive edge probabilities of an existing graph.

    ``scheme`` is one of ``"wc"`` (weighted cascade), ``"fixed"`` (uniform
    ``probability``), or ``"tr"`` (trivalency).
    """
    arcs = [(u, v) for (u, v, _) in graph.edges()]
    if scheme == "wc":
        return weighted_cascade(graph.num_nodes, arcs)
    if scheme == "fixed":
        return fixed_probability(graph.num_nodes, arcs, probability)
    if scheme == "tr":
        return trivalency(graph.num_nodes, arcs)
    raise ValueError(f"unknown weighting scheme: {scheme!r}")
