"""Deterministic stand-ins for the paper's five evaluation networks.

The paper evaluates on Flixster, Douban-Book, Douban-Movie, Twitter and Orkut
(Table 2).  The raw datasets (and the hardware to hold the two giants — 41.7M
and 3.07M nodes) are not available in this environment, so we substitute
deterministic synthetic networks with

* the same *directedness* as the originals,
* heavy-tailed degree distributions (preferential attachment),
* preserved average degree for the three laptop-scale networks, and
* reduced node counts / capped densities for Twitter and Orkut, keeping their
  *relative* density ordering (Orkut densest, Twitter next, the Douban pair
  sparse) because Fig. 9(a–c)'s conclusions hinge on density ordering only.

Every dataset is produced by a fixed seed, so all experiments are exactly
reproducible.  ``scale`` < 1 shrinks node counts proportionally for quick test
runs; benchmarks use the default scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import preferential_attachment
from repro.graph.weighting import fixed_probability, weighted_cascade


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one stand-in network.

    ``paper_nodes`` / ``paper_edges`` record the original Table 2 statistics
    for documentation; ``nodes`` / ``avg_degree`` are what we generate.
    """

    name: str
    nodes: int
    avg_degree: float
    directed: bool
    seed: int
    paper_nodes: str
    paper_edges: str
    paper_avg_degree: float


#: Stand-in recipes, keyed by lowercase dataset name.
SPECS: Dict[str, DatasetSpec] = {
    "flixster": DatasetSpec(
        name="flixster",
        nodes=7600,
        avg_degree=9.43,
        directed=False,
        seed=11,
        paper_nodes="7.6K",
        paper_edges="71.7K",
        paper_avg_degree=9.43,
    ),
    "douban-book": DatasetSpec(
        name="douban-book",
        nodes=23300,
        avg_degree=6.5,
        directed=True,
        seed=12,
        paper_nodes="23.3K",
        paper_edges="141K",
        paper_avg_degree=6.5,
    ),
    "douban-movie": DatasetSpec(
        name="douban-movie",
        nodes=34900,
        avg_degree=7.9,
        directed=True,
        seed=13,
        paper_nodes="34.9K",
        paper_edges="274K",
        paper_avg_degree=7.9,
    ),
    "twitter": DatasetSpec(
        name="twitter",
        nodes=50000,
        avg_degree=16.0,  # capped from 70.5; density ordering preserved
        directed=True,
        seed=14,
        paper_nodes="41.7M",
        paper_edges="1.47G",
        paper_avg_degree=70.5,
    ),
    "orkut": DatasetSpec(
        name="orkut",
        nodes=40000,
        avg_degree=24.0,  # capped from 77.5; remains the densest network
        directed=False,
        seed=15,
        paper_nodes="3.07M",
        paper_edges="234M",
        paper_avg_degree=77.5,
    ),
}


def dataset_names() -> Tuple[str, ...]:
    """Names of the five stand-in datasets, in the paper's Table 2 order."""
    return tuple(SPECS)


@lru_cache(maxsize=32)
def load(
    name: str, scale: float = 1.0, scheme: str = "wc", probability: float = 0.01
) -> InfluenceGraph:
    """Load (generate) a stand-in dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    scale:
        Node-count multiplier in ``(0, 1]``; tests use small scales, the
        benchmarks the default ``1.0``.
    scheme:
        ``"wc"`` for weighted-cascade probabilities (the paper's default) or
        ``"fixed"`` for a uniform ``probability`` (Fig. 9(d)'s second setting).
    """
    key = name.lower().replace("_", "-")
    if key not in SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        )
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    spec = SPECS[key]
    n = max(16, int(round(spec.nodes * scale)))
    per_node = max(1, int(round(spec.avg_degree / (1 if spec.directed else 2))))
    arcs = preferential_attachment(
        n, per_node, seed=spec.seed, directed=spec.directed
    )
    if scheme == "wc":
        return weighted_cascade(n, arcs)
    if scheme == "fixed":
        return fixed_probability(n, arcs, probability)
    raise ValueError(f"unknown scheme {scheme!r}; expected 'wc' or 'fixed'")


def table2_rows(scale: float = 1.0) -> Tuple[Dict[str, object], ...]:
    """Regenerate the rows of Table 2 for the stand-in networks."""
    rows = []
    for name in dataset_names():
        spec = SPECS[name]
        graph = load(name, scale=scale)
        rows.append(
            {
                "network": name,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "avg_degree": round(graph.average_degree(), 2),
                "type": "directed" if spec.directed else "undirected",
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "paper_avg_degree": spec.paper_avg_degree,
            }
        )
    return tuple(rows)
