"""Directed influence-graph substrate.

This subpackage provides the graph machinery every other part of the
reproduction sits on: a compact CSR-backed directed graph with per-edge
influence probabilities (:mod:`repro.graph.digraph`), the standard edge
weighting schemes used in the IM literature (:mod:`repro.graph.weighting`),
synthetic generators (:mod:`repro.graph.generators`), edge-list I/O
(:mod:`repro.graph.io`), structural analysis helpers
(:mod:`repro.graph.analysis`), deterministic scaled stand-ins for the five
networks of the paper's evaluation (:mod:`repro.graph.datasets`), and the
web-scale path — streaming edge-list ingestion into versioned, mmap'd
``.graph`` CSR files (:mod:`repro.graph.bigcsr`).
"""

from repro.graph.analysis import (
    bfs_nodes,
    bfs_subgraph,
    degree_statistics,
    largest_scc,
    strongly_connected_components,
)
from repro.graph.bigcsr import (
    GraphFileError,
    GraphIngestError,
    IngestStats,
    graph_file_fingerprint,
    ingest_edge_list,
    is_graph_file,
    load_graph,
    write_graph_file,
)
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    line_graph,
    preferential_attachment,
    star_graph,
    watts_strogatz,
    watts_strogatz_wc_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.weighting import (
    fixed_probability,
    trivalency,
    weighted_cascade,
)

__all__ = [
    "GraphFileError",
    "GraphIngestError",
    "InfluenceGraph",
    "IngestStats",
    "bfs_nodes",
    "bfs_subgraph",
    "complete_graph",
    "cycle_graph",
    "degree_statistics",
    "erdos_renyi",
    "fixed_probability",
    "graph_file_fingerprint",
    "ingest_edge_list",
    "is_graph_file",
    "largest_scc",
    "line_graph",
    "load_graph",
    "preferential_attachment",
    "read_edge_list",
    "star_graph",
    "strongly_connected_components",
    "trivalency",
    "watts_strogatz",
    "watts_strogatz_wc_graph",
    "weighted_cascade",
    "write_edge_list",
    "write_graph_file",
]
