"""Web-scale graphs: streaming edge-list ingestion and mmap'd CSR files.

:func:`repro.graph.io.read_edge_list` parses one Python tuple per line —
fine at 20k nodes, hopeless at the paper's web-scale datasets (Orkut:
117M edges).  This module is the production ingestion path:

* :func:`ingest_edge_list` streams a SNAP-style edge list (``u v`` or
  ``u v p`` lines, ``#``/``%`` comments, duplicates, self-loops,
  out-of-order ids) through fixed-size byte chunks and **two passes** —
  degree counting, then direct placement into preallocated CSR arrays —
  so peak memory is bounded by the *output* CSR, never by Python object
  overhead.  The result is written as a versioned ``.graph`` file.
* :func:`write_graph_file` persists an in-memory
  :class:`~repro.graph.digraph.InfluenceGraph` in the same format.
* :func:`load_graph` memory-maps a ``.graph`` file back into an
  :class:`InfluenceGraph` in O(1), and marks the graph so the worker
  pool (:mod:`repro.parallel.shm`) can attach the backing file directly
  instead of copying CSR arrays into a shared-memory segment.

The ``.graph`` container reuses the sketch-store machinery
(:mod:`repro.store.blockfile`): 8-byte magic, uint64 header length, JSON
header, 64-byte-aligned array blocks, atomic replace on write.  Index
arrays are stored wide (int64) and probabilities as float64 **by
contract**: :func:`~repro.graph.io.graph_fingerprint` hashes raw array
bytes, so a ``.graph`` file loads to *byte-identical* CSR arrays — and
therefore the identical fingerprint — as constructing the same graph in
memory.  Node ids are the file's own ids over a dense ``0 .. max_id``
space (no first-seen compaction; SNAP files are near-dense already), so
the same file always produces the same graph.

Cleaning semantics match the in-memory path exactly: self-loops dropped,
duplicate edges collapsed keeping the maximum probability, and — for
unweighted files under the weighted-cascade scheme — ``p(u, v) =
1 / in_degree(v)`` with the in-degree counted over the raw non-self-loop
arcs *including duplicates*, mirroring
:func:`repro.graph.weighting.weighted_cascade`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.graph.digraph import InfluenceGraph
from repro.graph.io import graph_fingerprint
from repro.store.blockfile import (
    array_table,
    read_arrays,
    read_header,
    write_block_file,
)
from repro.store.format import (
    GRAPH_ARRAY_NAMES,
    GRAPH_FORMAT_VERSION,
    GRAPH_MAGIC,
    GRAPH_SUPPORTED_VERSIONS,
    INDEX_DTYPE,
    PROB_DTYPE,
)

PathLike = Union[str, Path]

__all__ = [
    "GraphFileError",
    "GraphIngestError",
    "IngestStats",
    "graph_file_fingerprint",
    "ingest_edge_list",
    "is_graph_file",
    "load_graph",
    "read_graph_header",
    "write_graph_file",
]

#: Default streaming chunk size (bytes) for the ingestion passes.
DEFAULT_CHUNK_BYTES = 16 * 1024 * 1024

#: ``.graph`` maps the six CSR array names to InfluenceGraph attributes.
_CSR_ATTRS = {
    "out_indptr": "_out_indptr",
    "out_targets": "_out_targets",
    "out_probs": "_out_probs",
    "in_indptr": "_in_indptr",
    "in_sources": "_in_sources",
    "in_probs": "_in_probs",
}

_INGEST_SECONDS = obs.histogram(
    "repro_graph_ingest_seconds",
    "Wall-clock of streaming edge-list ingestion passes",
    labels=("phase",),
)
_INGEST_RECORDS = obs.counter(
    "repro_graph_ingest_records_total",
    "Edge records parsed by the streaming ingester",
)
_GRAPH_FILE_BYTES = obs.counter(
    "repro_graph_file_bytes_total",
    "Bytes written to / memory-mapped from .graph CSR files",
    labels=("op",),
)


class GraphIngestError(ValueError):
    """An edge-list file is malformed (bad ids, probabilities, records)."""


class GraphFileError(RuntimeError):
    """A ``.graph`` file is malformed, truncated, or unsupported."""


@dataclass(frozen=True)
class IngestStats:
    """What one streaming ingestion saw and produced."""

    num_nodes: int
    num_edges: int
    records: int
    comments: int
    self_loops: int
    duplicates: int
    weighted: bool
    scheme: Optional[str]
    source: str


def is_graph_file(path: PathLike) -> bool:
    """Whether ``path`` names a ``.graph`` CSR file (by suffix)."""
    return Path(path).suffix == ".graph"


# ----------------------------------------------------------------------
# Streaming parse
# ----------------------------------------------------------------------
def _iter_chunks(path: Path, chunk_bytes: int):
    """Yield byte chunks split on line boundaries (last line may lack \\n)."""
    carry = b""
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk_bytes)
            if not block:
                break
            block = carry + block
            cut = block.rfind(b"\n")
            if cut < 0:
                carry = block
                continue
            carry = block[cut + 1 :]
            yield block[: cut + 1]
    if carry:
        yield carry


def _data_lines(chunk: bytes) -> Tuple[List[bytes], int]:
    """Non-blank, non-comment lines of a chunk, plus the comment count."""
    lines = []
    comments = 0
    for line in chunk.split(b"\n"):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped[:1] in (b"#", b"%"):
            comments += 1
            continue
        lines.append(stripped)
    return lines, comments


def _parse_chunk(
    chunk: bytes, weighted: Optional[bool], path: Path
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[bool], int]:
    """Vectorized parse of one chunk into ``(ids, probs, weighted, comments)``.

    ``ids`` is an ``(k, 2)`` int64 array of ``(u, v)`` pairs; ``probs``
    is ``None`` for unweighted files.  ``weighted`` is auto-detected
    from the first data line when the caller passes ``None``.  Raises
    :class:`GraphIngestError` on non-numeric tokens, fractional or
    negative ids, probabilities outside ``[0, 1]``, and records with the
    wrong number of fields — including a file truncated mid-record,
    which shows up as a token count that does not divide evenly.
    """
    lines, comments = _data_lines(chunk)
    if not lines:
        return None, None, weighted, comments
    if weighted is None:
        weighted = len(lines[0].split()) >= 3
    cols = 3 if weighted else 2
    tokens = b" ".join(lines).split()
    if len(tokens) != cols * len(lines):
        for line in lines:
            width = len(line.split())
            if width != cols:
                raise GraphIngestError(
                    f"{path}: expected {cols} fields per record "
                    f"({'u v p' if weighted else 'u v'}), got {width} "
                    f"in line {line.decode(errors='replace')!r} — "
                    "truncated or malformed edge list"
                )
        raise GraphIngestError(  # pragma: no cover - defensive
            f"{path}: token count {len(tokens)} does not divide into "
            f"{cols}-field records"
        )
    token_arr = np.array(tokens)
    shaped = token_arr.reshape(len(lines), cols)
    try:
        ids = shaped[:, :2].astype(INDEX_DTYPE)
    except ValueError as exc:
        raise GraphIngestError(
            f"{path}: non-integer node id in edge list ({exc})"
        ) from exc
    if ids.size and int(ids.min()) < 0:
        raise GraphIngestError(f"{path}: negative node id in edge list")
    probs = None
    if weighted:
        try:
            probs = shaped[:, 2].astype(PROB_DTYPE)
        except ValueError as exc:
            raise GraphIngestError(
                f"{path}: non-numeric edge probability ({exc})"
            ) from exc
        if probs.size and (
            not np.isfinite(probs).all()
            or float(probs.min()) < 0.0
            or float(probs.max()) > 1.0
        ):
            raise GraphIngestError(
                f"{path}: edge probability outside [0, 1]"
            )
    return ids, probs, weighted, comments


def _grow_counts(counts: np.ndarray, size: int) -> np.ndarray:
    if size <= counts.shape[0]:
        return counts
    grown = np.zeros(max(size, counts.shape[0] * 2), dtype=INDEX_DTYPE)
    grown[: counts.shape[0]] = counts
    return grown


# ----------------------------------------------------------------------
# Ingestion (two passes)
# ----------------------------------------------------------------------
def ingest_edge_list(
    src: PathLike,
    out: PathLike,
    *,
    weighted: Optional[bool] = None,
    scheme: str = "wc",
    num_nodes: Optional[int] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> IngestStats:
    """Stream ``src`` (a SNAP-style edge list) into the ``.graph`` ``out``.

    Two chunked passes over the file: the first counts degrees (and
    detects the weighted/unweighted layout), the second places every
    non-self-loop record directly into its source row of a preallocated
    CSR — a counting sort, so peak memory is a small constant times the
    final CSR size regardless of how the input is ordered.  Duplicate
    edges collapse keeping the maximum probability; for unweighted
    input, probabilities come from the weighted-cascade scheme
    (``scheme="wc"``, the only one supported at ingest time, matching
    :func:`~repro.graph.io.read_edge_list`).

    ``num_nodes`` overrides the node count (must cover every id); by
    default ``n = max_id + 1``.  Returns :class:`IngestStats`; raises
    :class:`GraphIngestError` on malformed input without writing ``out``.
    """
    src = Path(src)
    out = Path(out)
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    if scheme != "wc":
        raise GraphIngestError(
            "unweighted edge lists only support the 'wc' scheme at "
            f"ingest time, got {scheme!r}"
        )

    # Pass 1 — degree counting.  out_counts/in_counts cover the raw
    # non-self-loop arcs (duplicates included: the WC in-degree contract).
    records = comments = self_loops = 0
    max_id = -1
    out_counts = np.zeros(1024, dtype=INDEX_DTYPE)
    in_counts = np.zeros(1024, dtype=INDEX_DTYPE)
    with _INGEST_SECONDS.timer(phase="degrees"), obs.span(
        "graph.ingest.degrees", src=str(src)
    ):
        for chunk in _iter_chunks(src, chunk_bytes):
            ids, _, weighted, seen = _parse_chunk(chunk, weighted, src)
            comments += seen
            if ids is None:
                continue
            records += ids.shape[0]
            u, v = ids[:, 0], ids[:, 1]
            loops = u == v
            self_loops += int(loops.sum())
            if loops.any():
                u, v = u[~loops], v[~loops]
            if u.shape[0] == 0:
                if ids.size:
                    max_id = max(max_id, int(ids.max()))
                continue
            max_id = max(max_id, int(ids.max()))
            top = int(max(u.max(), v.max())) + 1
            out_counts = _grow_counts(out_counts, top)
            in_counts = _grow_counts(in_counts, top)
            out_counts[: top] += np.bincount(
                u, minlength=top
            )[: top]
            in_counts[: top] += np.bincount(
                v, minlength=top
            )[: top]
    _INGEST_RECORDS.inc(records)

    n = max_id + 1
    if num_nodes is not None:
        if num_nodes < n:
            raise GraphIngestError(
                f"{src}: num_nodes={num_nodes} but the file references "
                f"node id {max_id}"
            )
        n = int(num_nodes)
    out_counts = out_counts[:n] if n else out_counts[:0]
    in_counts = in_counts[:n] if n else in_counts[:0]
    m_raw = int(out_counts.sum())

    # Pass 2 — counting-sort placement into source-grouped arrays.
    raw_indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(out_counts, out=raw_indptr[1:])
    cursors = raw_indptr[:-1].copy()
    tgt_store = np.empty(m_raw, dtype=INDEX_DTYPE)
    prob_store = np.empty(m_raw, dtype=PROB_DTYPE) if weighted else None
    with _INGEST_SECONDS.timer(phase="placement"), obs.span(
        "graph.ingest.placement", src=str(src), records=records
    ):
        for chunk in _iter_chunks(src, chunk_bytes):
            ids, probs, weighted, _ = _parse_chunk(chunk, weighted, src)
            if ids is None:
                continue
            u, v = ids[:, 0], ids[:, 1]
            keep = u != v
            if not keep.all():
                u, v = u[keep], v[keep]
                if probs is not None:
                    probs = probs[keep]
            if u.shape[0] == 0:
                continue
            order = np.argsort(u, kind="stable")
            su, sv = u[order], v[order]
            # Rank of each record within its (contiguous) source group.
            starts = np.flatnonzero(np.diff(su)) + 1
            group_first = np.zeros(su.shape[0], dtype=INDEX_DTYPE)
            group_first[starts] = starts
            np.maximum.accumulate(group_first, out=group_first)
            rank = np.arange(su.shape[0], dtype=INDEX_DTYPE) - group_first
            pos = cursors[su] + rank
            tgt_store[pos] = sv
            if probs is not None:
                prob_store[pos] = probs[order]
            chunk_counts = np.bincount(su, minlength=n)[:n]
            cursors += chunk_counts

    with _INGEST_SECONDS.timer(phase="finalize"), obs.span(
        "graph.ingest.finalize", src=str(src), raw_edges=m_raw
    ):
        graph, duplicates = _build_graph(
            n, raw_indptr, tgt_store, prob_store, in_counts
        )
        stats = IngestStats(
            num_nodes=n,
            num_edges=graph.num_edges,
            records=records,
            comments=comments,
            self_loops=self_loops,
            duplicates=duplicates,
            weighted=bool(weighted),
            scheme=None if weighted else scheme,
            source=src.name,
        )
        write_graph_file(graph, out, stats=stats)
    return stats


def _build_graph(
    n: int,
    raw_indptr: np.ndarray,
    tgt_store: np.ndarray,
    prob_store: Optional[np.ndarray],
    in_counts: np.ndarray,
) -> Tuple[InfluenceGraph, int]:
    """Sort, dedup (keep max prob) and assemble both CSR orientations.

    Produces arrays byte-identical to ``InfluenceGraph.__init__`` on the
    same cleaned edge set: same (row, col) lexsort order, same int64 /
    float64 dtypes, same dedup-keeps-max semantics.
    """
    m_raw = tgt_store.shape[0]
    row_ids = np.repeat(
        np.arange(n, dtype=INDEX_DTYPE), np.diff(raw_indptr)
    )
    order = np.lexsort((tgt_store, row_ids))
    src_sorted = row_ids[order]
    tgt_sorted = tgt_store[order]
    if m_raw:
        first = np.empty(m_raw, dtype=np.bool_)
        first[0] = True
        np.logical_or(
            src_sorted[1:] != src_sorted[:-1],
            tgt_sorted[1:] != tgt_sorted[:-1],
            out=first[1:],
        )
        starts = np.flatnonzero(first)
    else:
        starts = np.empty(0, dtype=INDEX_DTYPE)
    out_src = src_sorted[starts]
    out_targets = np.ascontiguousarray(tgt_sorted[starts])
    if prob_store is not None:
        probs_sorted = prob_store[order]
        out_probs = (
            np.maximum.reduceat(probs_sorted, starts)
            if starts.size
            else np.empty(0, dtype=PROB_DTYPE)
        )
    else:
        # Weighted cascade over the raw in-degrees (duplicates counted,
        # self-loops excluded) — repro.graph.weighting semantics.
        out_probs = 1.0 / in_counts[out_targets].astype(PROB_DTYPE)
    out_probs = np.ascontiguousarray(out_probs)
    duplicates = int(m_raw - starts.size)

    out_indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(out_src, minlength=n)[:n], out=out_indptr[1:])

    in_order = np.lexsort((out_src, out_targets))
    in_sources = np.ascontiguousarray(out_src[in_order])
    in_probs = np.ascontiguousarray(out_probs[in_order])
    in_indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(
        np.bincount(out_targets, minlength=n)[:n], out=in_indptr[1:]
    )

    graph = InfluenceGraph.from_csr(
        n,
        out_indptr,
        out_targets,
        out_probs,
        in_indptr,
        in_sources,
        in_probs,
    )
    return graph, duplicates


# ----------------------------------------------------------------------
# The .graph container
# ----------------------------------------------------------------------
def write_graph_file(
    graph: InfluenceGraph,
    path: PathLike,
    *,
    stats: Optional[IngestStats] = None,
) -> None:
    """Persist a graph's CSR arrays as a versioned, mmap-ready file.

    Arrays are written wide (int64 indices, float64 probabilities) so a
    load reproduces the in-memory construction byte-for-byte — the
    fingerprint embedded in the header is the one
    :func:`~repro.graph.io.graph_fingerprint` computes on the loaded
    graph, and on the stores built from it.
    """
    arrays: Dict[str, np.ndarray] = {}
    for name, attr in _CSR_ATTRS.items():
        arr = np.asarray(getattr(graph, attr))
        dtype = PROB_DTYPE if name.endswith("probs") else INDEX_DTYPE
        arrays[name] = np.ascontiguousarray(np.asarray(arr, dtype=dtype))
    meta = {
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "fingerprint": graph_fingerprint(graph),
    }
    if stats is not None:
        meta["ingest"] = asdict(stats)
    header = {
        "format_version": GRAPH_FORMAT_VERSION,
        "meta": meta,
        "arrays": array_table(arrays),
    }
    with obs.span(
        "graph.write", nodes=graph.num_nodes, edges=graph.num_edges
    ):
        write_block_file(path, GRAPH_MAGIC, header, arrays)
    _GRAPH_FILE_BYTES.inc(
        sum(arr.nbytes for arr in arrays.values()), op="write"
    )


def read_graph_header(path: PathLike) -> dict:
    """The validated JSON header of a ``.graph`` file (no array I/O)."""
    path = Path(path)
    header, _, _ = read_header(path, GRAPH_MAGIC, GraphFileError, "graph file")
    return _validated_header(path, header)


def graph_file_fingerprint(path: PathLike) -> str:
    """The fingerprint recorded in a ``.graph`` header (O(1), no mmap)."""
    return str(read_graph_header(path)["meta"].get("fingerprint", ""))


def load_graph(
    path: PathLike, *, mmap: bool = True, verify: bool = False
) -> InfluenceGraph:
    """Load a ``.graph`` file; with ``mmap`` the arrays are file-backed.

    O(1) in the graph size when memory-mapped (plus cheap CSR invariant
    checks on the indptr arrays).  The returned graph carries a
    publication spec so :func:`repro.parallel.shm.publish_graph` can
    hand workers the backing file instead of copying six CSR arrays
    into a shared-memory segment.  With ``verify=True`` the full
    fingerprint is recomputed from the arrays (O(m), pages the file in)
    and checked against the header.  Raises :class:`GraphFileError` on
    any malformed or inconsistent file.
    """
    path = Path(path)
    header, data_start, file_size = read_header(
        path, GRAPH_MAGIC, GraphFileError, "graph file"
    )
    header = _validated_header(path, header)
    meta = header["meta"]
    table = header["arrays"]
    n = int(meta.get("num_nodes", 0))
    with obs.span("graph.load", mmap=bool(mmap)):
        arrays, mapped = read_arrays(
            path,
            table,
            GRAPH_ARRAY_NAMES,
            data_start,
            file_size,
            GraphFileError,
            mmap=mmap,
        )
    _GRAPH_FILE_BYTES.inc(mapped, op="mmap" if mmap else "read")
    _check_csr(path, n, arrays)
    graph = InfluenceGraph.from_csr(
        n, *(arrays[name] for name in GRAPH_ARRAY_NAMES)
    )
    if verify:
        actual = graph_fingerprint(graph)
        recorded = str(meta.get("fingerprint", ""))
        if actual != recorded:
            raise GraphFileError(
                f"{path}: graph file fingerprint mismatch — header says "
                f"{recorded[:16]}… but the arrays hash to {actual[:16]}… "
                "(corrupted or hand-edited file)"
            )
    if mmap:
        graph._mmap_spec = {
            "kind": "file",
            "name": f"graph-file:{path.resolve()}:{file_size}",
            "path": str(path.resolve()),
            "num_nodes": n,
            "graph": [
                (
                    data_start + int(table[name]["offset"]),
                    str(table[name]["dtype"]),
                    tuple(int(s) for s in table[name]["shape"]),
                )
                for name in GRAPH_ARRAY_NAMES
            ],
            "trigger": None,
        }
    return graph


def _validated_header(path: Path, header: dict) -> dict:
    version = header.get("format_version")
    if version not in GRAPH_SUPPORTED_VERSIONS:
        raise GraphFileError(
            f"{path}: graph format version {version!r} unsupported "
            f"(this build reads versions {GRAPH_SUPPORTED_VERSIONS})"
        )
    meta = header.get("meta")
    table = header.get("arrays")
    if not isinstance(meta, dict) or not isinstance(table, dict):
        raise GraphFileError(f"{path}: corrupted header")
    missing = [name for name in GRAPH_ARRAY_NAMES if name not in table]
    if missing:
        raise GraphFileError(f"{path}: missing arrays {missing}")
    return header


def _check_csr(path: Path, n: int, arrays: Dict[str, np.ndarray]) -> None:
    """Cheap structural invariants (indptr shape/monotonicity, bounds)."""
    for side, indices in (("out", "out_targets"), ("in", "in_sources")):
        indptr = arrays[f"{side}_indptr"]
        ids = arrays[indices]
        probs = arrays[f"{side}_probs"]
        if indptr.shape[0] != n + 1 or int(indptr[0]) != 0:
            raise GraphFileError(
                f"{path}: {side}_indptr is not a length-{n + 1} CSR indptr"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphFileError(f"{path}: {side}_indptr not monotone")
        if int(indptr[-1]) != ids.shape[0] or ids.shape != probs.shape:
            raise GraphFileError(
                f"{path}: {side} CSR arrays disagree on edge count"
            )
        if ids.shape[0] and (
            int(ids.min()) < 0 or int(ids.max()) >= n
        ):
            raise GraphFileError(
                f"{path}: {indices} contains ids outside [0, {n})"
            )
    if arrays["out_targets"].shape[0] != arrays["in_sources"].shape[0]:
        raise GraphFileError(
            f"{path}: forward and reverse CSR edge counts disagree"
        )
