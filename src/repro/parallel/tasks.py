"""Shard tasks the worker pool executes against a shared graph.

Every task is a module-level function (picklable by name) with the fixed
calling convention

    task(graph, trigger_csr, seed_seq, count, *rest)

where ``graph``/``trigger_csr`` are injected by the pool — the original
objects for in-process execution, zero-copy shared-memory attachments
inside workers — and ``seed_seq`` is the shard's own ``SeedSequence``
child.  Because a shard's result depends only on its ``(seed_seq, count,
rest)`` arguments and the graph arrays (bit-identical either way the
graph arrives), results are byte-for-byte independent of *where* the
shard ran: the pooled and in-process paths are interchangeable, which is
the determinism contract ``processes ∈ {0, 2, 4}`` tests pin.

The reverse task samples RR sets through :class:`RRCollection`; the
forward tasks run the existing batched Monte-Carlo kernels on their slice
of the worlds.  Nothing here spawns further parallelism.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["GROUPED_TASK", "TASKS"]


def rr_shard(
    graph,
    trigger_csr,
    seed_seq: np.random.SeedSequence,
    count: int,
    triggering: Optional[str],
    backend: Optional[str],
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample one RR-set shard; returns flat ``(members, lengths)``."""
    from repro.diffusion.triggering import resolve_triggering
    from repro.rrset.rrgen import RRCollection

    trig = resolve_triggering(triggering) if triggering is not None else None
    collection = RRCollection(
        graph,
        np.random.default_rng(seed_seq),
        triggering=trig,
        backend=backend,
    )
    if trigger_csr is not None:
        # Adopt the published compilation instead of re-deriving it —
        # the per-node distribution pass is the one Python-level cost of
        # generic triggering models.
        collection._trigger_csr = trigger_csr
    collection.extend_to(count)
    members, offsets = collection.flat_arrays()
    return members.copy(), np.diff(offsets)


def uic_welfare_shard(
    graph,
    trigger_csr,
    seed_seq: np.random.SeedSequence,
    count: int,
    model,
    allocation,
    noise_world,
    triggering,
) -> np.ndarray:
    """Per-world welfare of ``count`` UIC worlds (batched kernels)."""
    from repro.diffusion.batch_forward import batch_simulate_uic

    return batch_simulate_uic(
        graph,
        model,
        list(allocation),
        count,
        np.random.default_rng(seed_seq),
        noise_world=noise_world,
        triggering=triggering,
    ).welfare


def uic_adoption_shard(
    graph,
    trigger_csr,
    seed_seq: np.random.SeedSequence,
    count: int,
    model,
    allocation,
    item,
) -> np.ndarray:
    """Per-world adoption counts of ``count`` UIC worlds."""
    from repro.diffusion.batch_forward import batch_simulate_uic

    result = batch_simulate_uic(
        graph,
        model,
        list(allocation),
        count,
        np.random.default_rng(seed_seq),
    )
    return result.adopter_counts(item).astype(np.float64)


def comic_spread_shard(
    graph,
    trigger_csr,
    seed_seq: np.random.SeedSequence,
    count: int,
    model,
    seeds_a,
    seeds_b,
    item,
) -> np.ndarray:
    """Per-world adopter counts of ``count`` Com-IC worlds."""
    from repro.diffusion.batch_forward import batch_simulate_comic

    result = batch_simulate_comic(
        graph,
        model,
        seeds_a,
        seeds_b,
        count,
        np.random.default_rng(seed_seq),
    )
    return result.adopter_counts(item).astype(np.float64)


def personalized_welfare_shard(
    graph,
    trigger_csr,
    seed_seq: np.random.SeedSequence,
    count: int,
    model,
    allocation,
) -> np.ndarray:
    """Per-world personalized-noise welfare of ``count`` UIC worlds."""
    from repro.diffusion.batch_forward import batch_simulate_uic_personalized

    return batch_simulate_uic_personalized(
        graph,
        model,
        list(allocation),
        count,
        np.random.default_rng(seed_seq),
    )


def grouped_shards(
    graph,
    trigger_csr,
    task_name: str,
    subjobs: Sequence[tuple],
) -> Tuple[List, List[float]]:
    """Run several micro-shards of one task back to back in this worker.

    The adaptive sharder (:mod:`repro.parallel.pool`) ships this wrapper
    when per-micro-shard wall-clock is small enough that IPC dominates.
    Each subjob keeps exactly the arguments (and ``SeedSequence`` child)
    it would have carried as a singleton submission, and runs through the
    same task function sequentially — so the concatenated results are
    byte-identical to ungrouped dispatch.  Returns ``(results,
    seconds)``, the per-micro-shard wall-clocks feeding the sharder's
    next plan.
    """
    from repro import obs

    fn = TASKS[task_name]
    results: List = []
    seconds: List[float] = []
    for job in subjobs:
        tick: dict = {}
        with obs.stopwatch(tick):
            results.append(fn(graph, trigger_csr, *job))
        seconds.append(tick["seconds"])
    return results, seconds


#: The registry name the pool uses to ship grouped micro-shards.
GROUPED_TASK = "grouped_shards"


def _kill_worker(graph, trigger_csr, seed_seq, count) -> None:
    """Test hook: hard-kill the executing worker (crash-recovery tests)."""
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


#: Name → task registry; submissions carry the name, workers resolve it.
TASKS = {
    fn.__name__: fn
    for fn in (
        rr_shard,
        uic_welfare_shard,
        uic_adoption_shard,
        comic_spread_shard,
        personalized_welfare_shard,
        grouped_shards,
        _kill_worker,
    )
}
