"""Zero-copy graph publication over POSIX shared memory.

The sharded store builder and the sharded forward estimators fan work over
a process pool.  Pickling an :class:`~repro.graph.digraph.InfluenceGraph`
into every worker — what the first sharded builder did via pool
``initargs`` — costs a full serialize/deserialize of all six CSR arrays
per worker spawn and a private copy per worker.  This module removes both
costs: :func:`publish_graph` copies the CSR arrays (and, when the run
samples under a generic triggering model, the compiled
:class:`~repro.diffusion.triggering.TriggerCSR`) into **one**
``multiprocessing.shared_memory`` segment, and :func:`attach_graph`
reconstructs read-only numpy views over that segment in O(1), whatever
the graph size.  Workers attach once and cache the attachment; every
shard task after the first touches the parent's physical pages directly.

The wire format is a small picklable *spec* dict — segment name plus
``(offset, dtype, shape)`` per array — which is all a task submission has
to carry.  Segment lifetime is owned by the publishing side (the
:class:`~repro.parallel.pool.WorkerPool`): workers ``close()`` but never
``unlink()``.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.diffusion.triggering import TriggerCSR
from repro.graph.digraph import InfluenceGraph

__all__ = [
    "SEGMENT_PREFIX",
    "attach_graph",
    "publish_graph",
]

#: Every segment this layer creates carries this name prefix, so tests (and
#: operators) can audit ``/dev/shm`` for leaks with one glob.
SEGMENT_PREFIX = "repro-shm"

#: The six CSR arrays of an InfluenceGraph, in wire order.
_GRAPH_FIELDS = (
    "_out_indptr",
    "_out_targets",
    "_out_probs",
    "_in_indptr",
    "_in_sources",
    "_in_probs",
)

#: The four flat arrays of a compiled TriggerCSR, in wire order.
_TRIGGER_FIELDS = (
    "cand_indptr",
    "shifted_cum",
    "member_indptr",
    "member_sources",
)

#: Array alignment inside the segment (cache-line friendly, dtype-safe).
_ALIGN = 64

_COUNTER = [0]


def _next_name() -> str:
    """A collision-resistant, auditable segment name."""
    import os

    _COUNTER[0] += 1
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{_COUNTER[0]}"


def _layout(
    arrays: List[np.ndarray],
) -> Tuple[int, List[Tuple[int, str, Tuple[int, ...]]]]:
    """Assign aligned offsets; returns ``(total_bytes, entries)``."""
    offset = 0
    entries: List[Tuple[int, str, Tuple[int, ...]]] = []
    for array in arrays:
        offset = -(-offset // _ALIGN) * _ALIGN
        entries.append((offset, array.dtype.str, array.shape))
        offset += array.nbytes
    # SharedMemory refuses zero-size segments (an edgeless graph's member
    # arrays are empty but the indptr arrays never are, so this is belt
    # and braces).
    return max(offset, 1), entries


def publish_graph(
    graph: InfluenceGraph,
    trigger_csr: Optional[TriggerCSR] = None,
) -> Tuple[Optional[shared_memory.SharedMemory], dict]:
    """Copy a graph's CSR arrays into one fresh shared-memory segment.

    Returns ``(shm, spec)``: the live segment (the caller owns its
    lifetime — ``close()`` + ``unlink()`` when done) and the picklable
    spec :func:`attach_graph` consumes.  ``trigger_csr`` optionally rides
    along in the same segment for runs sampling under a generic
    triggering model.

    Graphs loaded from a ``.graph`` file (:mod:`repro.graph.bigcsr`)
    short-circuit: their CSR arrays are already backed by a file every
    worker can map, so no segment is created at all — the returned
    handle is ``None`` and the spec points workers at the backing file
    (``kind: "file"``).  A ``trigger_csr`` forces the copying path, as
    the compiled trigger arrays live only in this process.
    """
    file_spec = getattr(graph, "_mmap_spec", None)
    if file_spec is not None and trigger_csr is None:
        return None, dict(file_spec)
    graph_arrays = [
        np.ascontiguousarray(getattr(graph, field))
        for field in _GRAPH_FIELDS
    ]
    trigger_arrays = (
        [
            np.ascontiguousarray(getattr(trigger_csr, field))
            for field in _TRIGGER_FIELDS
        ]
        if trigger_csr is not None
        else []
    )
    arrays = graph_arrays + trigger_arrays
    size, entries = _layout(arrays)
    shm = shared_memory.SharedMemory(
        name=_next_name(), create=True, size=size
    )
    for array, (offset, dtype, shape) in zip(arrays, entries):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        view[...] = array
    del view, array  # noqa: F821 - drop buffer exports before returning
    spec = {
        "name": shm.name,
        "num_nodes": int(graph.num_nodes),
        "graph": entries[: len(_GRAPH_FIELDS)],
        "trigger": entries[len(_GRAPH_FIELDS) :] or None,
    }
    return shm, spec


def _views(
    shm: shared_memory.SharedMemory,
    entries: List[Tuple[int, str, Tuple[int, ...]]],
) -> List[np.ndarray]:
    views = []
    for offset, dtype, shape in entries:
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        view.flags.writeable = False  # one writer (nobody), many readers
        views.append(view)
    return views


def attach_graph(
    spec: dict,
) -> Tuple[
    InfluenceGraph, Optional[TriggerCSR], Optional[shared_memory.SharedMemory]
]:
    """Reconstruct a published graph as views over the shared segment.

    O(1) in the graph size: no arrays are copied or validated — the views
    alias the publisher's physical pages.  Returns the graph, the
    published :class:`TriggerCSR` (or ``None``), and the attached segment
    handle, which the caller must keep referenced while the graph is in
    use (the views borrow its buffer) and ``close()`` — never
    ``unlink()`` — when done.

    For a file-backed spec (``kind: "file"``, published from a
    ``.graph``-loaded graph) the arrays are memory-mapped straight from
    the backing file and the segment handle is ``None`` — the OS page
    cache already shares the physical pages across every worker.
    """
    if spec.get("kind") == "file":
        arrays = [
            np.memmap(
                spec["path"],
                dtype=np.dtype(dtype),
                mode="r",
                offset=offset,
                shape=tuple(shape),
            )
            for offset, dtype, shape in spec["graph"]
        ]
        return (
            InfluenceGraph.from_csr(spec["num_nodes"], *arrays),
            None,
            None,
        )
    try:
        # 3.13+: opt out of the per-process resource tracker — segment
        # lifetime is owned by the publisher, not the attaching worker.
        shm = shared_memory.SharedMemory(name=spec["name"], track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=spec["name"])
        _untrack(shm.name)
    graph = InfluenceGraph.from_csr(
        spec["num_nodes"], *_views(shm, spec["graph"])
    )
    trigger = (
        TriggerCSR(*_views(shm, spec["trigger"]))
        if spec["trigger"] is not None
        else None
    )
    return graph, trigger, shm


def _untrack(name: str) -> None:
    """Pre-3.13 workaround: unregister an attached segment.

    Without this, a *spawned* worker's own ``resource_tracker`` believes
    it owns the segment and tries to unlink it (again) at exit, spewing
    "leaked shared_memory" warnings for segments the publisher already
    cleaned up.  Forked workers share the publisher's tracker (set
    semantics — the attach-side register is a no-op), so unregistering
    there would strip the *publisher's* registration; skip it.
    """
    try:
        import multiprocessing
        from multiprocessing import resource_tracker

        if multiprocessing.get_start_method(allow_none=True) == "fork":
            return
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass
