"""Shared-memory parallel execution layer (the ``parallel`` backend).

Three pieces (DESIGN.md §6):

* :mod:`repro.parallel.shm` — publish a graph's CSR arrays (plus a
  compiled ``TriggerCSR`` when present) into one
  ``multiprocessing.shared_memory`` segment; workers attach zero-copy.
  Graphs loaded from a mmap'd ``.graph`` file
  (:mod:`repro.graph.bigcsr`) skip the segment entirely — workers map
  the backing file, sharing pages through the OS cache.
* :mod:`repro.parallel.pool` — the persistent, lazily-started
  :class:`WorkerPool` (one per process via :func:`get_pool`), reused
  across calls, with crash recovery and guaranteed segment cleanup.
* :mod:`repro.parallel.tasks` — the shard task functions; identical
  in-process and pooled results, so shard structure alone (never worker
  count) determines every number.

``parallel`` is a first-class :class:`~repro.engine.EngineContext`
backend next to ``sequential``/``batched``: in-process sampling layers
treat it exactly like ``batched`` (same vectorized kernels), while the
sharded store builder and the forward Monte-Carlo estimators additionally
fan their shards over the pool.  Forward estimators shard their worlds
deterministically with :func:`forward_shard_counts` and seed each shard
from a ``SeedSequence`` child, so an estimate depends only on
``(seed, num_samples)`` — never on how many workers happened to serve it.
The pool may *regroup* consecutive micro-shards into fewer dispatches
using wall-clock feedback (``$REPRO_SHARD_TARGET_MS``); each micro-shard
keeps its own seed and arguments, so this is invisible in the results.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

import numpy as np

from repro import obs
from repro.parallel.pool import (
    PROCESSES_ENV,
    SHARD_TARGET_ENV,
    WorkerPool,
    default_processes,
    get_pool,
    pool_stats,
    shard_target_seconds,
    shutdown_pool,
)
from repro.parallel.shm import SEGMENT_PREFIX, attach_graph, publish_graph

__all__ = [
    "FORWARD_SHARDS",
    "PROCESSES_ENV",
    "SEGMENT_PREFIX",
    "SHARD_TARGET_ENV",
    "WorkerPool",
    "attach_graph",
    "default_processes",
    "forward_shard_counts",
    "get_pool",
    "lineage_fallback",
    "pool_stats",
    "publish_graph",
    "run_forward_shards",
    "shard_target_seconds",
    "shutdown_pool",
]

#: Maximum forward-simulation shards per estimate.  Fixed (not derived
#: from the worker count!) so shard streams — and therefore results — are
#: a pure function of ``(seed, num_samples)``.  16 shards keep a pool of
#: up to 16 workers busy while each dispatch still amortizes its IPC.
FORWARD_SHARDS = 16

#: The pinned no-lineage fallback text (tests assert on this template).
LINEAGE_FALLBACK_MESSAGE = (
    "{caller}: the parallel backend shards worlds over SeedSequence "
    "children, but this EngineContext carries no integer-seed lineage; "
    "falling back to the batched engine. Construct the context from an "
    "integer seed to run sharded."
)


def forward_shard_counts(num_samples: int) -> List[int]:
    """Deterministic world-shard sizes for one forward estimate."""
    shards = min(int(num_samples), FORWARD_SHARDS)
    base, extra = divmod(int(num_samples), shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


def lineage_fallback(caller: str) -> None:
    """Warn that a lineage-less parallel context degrades to batched."""
    warnings.warn(
        LINEAGE_FALLBACK_MESSAGE.format(caller=caller),
        UserWarning,
        stacklevel=3,
    )


def run_forward_shards(
    task: str,
    graph,
    ctx,
    num_samples: int,
    rest: tuple,
    *,
    triggering=None,
    processes: Optional[int] = None,
) -> np.ndarray:
    """Fan one forward estimate's worlds over the pool; concatenated values.

    Shards the ``num_samples`` worlds with :func:`forward_shard_counts`,
    seeds shard ``i`` from the context lineage's next ``SeedSequence``
    children, and runs ``task`` (a per-world-array task from
    :mod:`repro.parallel.tasks`) on every shard.  The concatenation is in
    shard order, so downstream means/stderrs see one well-defined sample.
    """
    counts = forward_shard_counts(num_samples)
    children = ctx.seed_seq.spawn(len(counts))
    jobs = [
        (child, count) + tuple(rest)
        for child, count in zip(children, counts)
    ]
    with obs.span(
        "parallel.forward", task=task, samples=int(num_samples),
        shards=len(counts),
    ):
        parts = get_pool(processes).map_shards(
            task, graph, jobs, triggering=triggering
        )
    return np.concatenate(parts)
