"""A persistent, lazily-started worker pool over shared-memory graphs.

One :class:`WorkerPool` per process (the :func:`get_pool` singleton),
reused across calls: the ``ProcessPoolExecutor`` is created on the first
pooled dispatch and kept warm, and each distinct graph is published into
shared memory exactly once (keyed by object identity, cleaned up by a
``weakref.finalize`` when the graph is garbage-collected).  A shard call
therefore pays worker spawn and graph transfer only once per process,
not once per build — the two overheads that made the first sharded
builder *lose* to the serial path.

Dispatch contract (:meth:`WorkerPool.map_shards`):

* ``processes <= 1`` (or a single job) runs the shards in-process through
  the *same* task functions with the *same* original graph — byte-for-
  byte the results of the pooled path, which is what keeps sharded
  results deterministic in ``(seed, num_shards)`` and independent of the
  worker count.
* a :class:`BrokenProcessPool` (a worker was killed, OOMed, or died in C
  code) tears the pool down — executor shut down, **every shared-memory
  segment unlinked** so nothing leaks in ``/dev/shm`` — and the dispatch
  is retried once on a fresh pool before the error propagates.

Pool shutdown (explicit :func:`shutdown_pool`, pool reconfiguration, or
the ``atexit`` hook) likewise unlinks every published segment.
"""

from __future__ import annotations

import atexit
import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.parallel import tasks as _tasks
from repro.parallel.shm import attach_graph, publish_graph

__all__ = [
    "PROCESSES_ENV",
    "WorkerPool",
    "default_processes",
    "get_pool",
    "pool_stats",
    "shutdown_pool",
]

_TASKS_DISPATCHED = obs.counter(
    "repro_parallel_tasks_dispatched_total",
    "Shard tasks executed by pool workers (not the in-process fallback)",
    labels=("task",),
)
_POOL_RESTARTS = obs.counter(
    "repro_parallel_pool_restarts_total",
    "Worker-pool teardowns forced by a BrokenProcessPool crash recovery",
)
_DISPATCH_SECONDS = obs.histogram(
    "repro_parallel_dispatch_seconds",
    "Wall-clock of one map_shards dispatch (all shards, either backend)",
    labels=("task",),
)

#: Environment override for the pool's worker count (0 = in-process).
PROCESSES_ENV = "REPRO_PARALLEL_PROCESSES"


def default_processes() -> int:
    """Worker count: ``$REPRO_PARALLEL_PROCESSES`` > effective cores."""
    env = os.environ.get(PROCESSES_ENV)
    if env:
        count = int(env)
        if count < 0:
            raise ValueError(
                f"${PROCESSES_ENV} must be >= 0, got {count}"
            )
        return count
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker attachment cache: segment name -> (shm, graph, trigger_csr).
#: Bounded so a long-lived pool cycling through many graphs cannot pin an
#: unbounded number of segments.
_ATTACHED: Dict[str, tuple] = {}
_ATTACH_CAP = 8


def _attached(spec: dict) -> tuple:
    name = spec["name"]
    entry = _ATTACHED.get(name)
    if entry is None:
        graph, trigger_csr, shm = attach_graph(spec)
        while len(_ATTACHED) >= _ATTACH_CAP:
            # FIFO eviction; the numpy views keep the evicted mapping
            # alive until their graph is collected, so dropping the cache
            # entry is safe even mid-task.
            _ATTACHED.pop(next(iter(_ATTACHED)))
        entry = (shm, graph, trigger_csr)
        _ATTACHED[name] = entry
    return entry


def _run_task(payload: Tuple[str, Optional[dict], tuple, Optional[dict]]):
    """Pool entry point: resolve the task by name, attach, run.

    Returns ``(result, span_dict)``: ``span_dict`` is ``None`` unless the
    parent shipped trace metadata, in which case it carries this shard's
    wall-clock, queue wait, and worker pid for the parent to adopt.
    """
    task_name, spec, args, trace_meta = payload
    _, graph, trigger_csr = _attached(spec)
    fn = _tasks.TASKS[task_name]
    return obs.record_remote(trace_meta, fn, graph, trigger_csr, *args)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _unlink_quietly(shm) -> None:
    try:
        shm.close()
        shm.unlink()
    except Exception:  # already gone (interpreter teardown, double reset)
        pass


class WorkerPool:
    """Persistent process pool + shared-memory graph registry."""

    def __init__(self, processes: Optional[int] = None):
        self._processes = (
            default_processes() if processes is None else max(0, int(processes))
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        # publish cache: (id(graph), id(trigger_csr) | None) -> (shm, spec)
        self._segments: Dict[tuple, tuple] = {}
        self._trigger_csrs: Dict[tuple, object] = {}
        self._tasks_dispatched = 0
        self._restarts = 0

    @property
    def processes(self) -> int:
        """Configured worker count (0/1 = everything runs in-process)."""
        return self._processes

    @property
    def tasks_dispatched(self) -> int:
        """Shard tasks actually executed by pool workers (not in-process).

        Benchmarks assert on this to fail loudly when a supposedly
        multi-process measurement silently took the in-process fallback.
        """
        return self._tasks_dispatched

    @property
    def restarts(self) -> int:
        """Crash recoveries: pool teardowns forced by BrokenProcessPool."""
        return self._restarts

    def stats(self) -> Dict[str, int]:
        """Counters for ``/v1/stats`` and ``repro obs``."""
        return {
            "processes": self._processes,
            "tasks_dispatched": self._tasks_dispatched,
            "restarts": self._restarts,
            "segments": len(self._segments),
        }

    @property
    def segment_names(self) -> List[str]:
        """Names of the currently published segments (leak tests)."""
        return [shm.name for shm, _ in self._segments.values()]

    # ------------------------------------------------------------------
    # Graph publication
    # ------------------------------------------------------------------
    def _publish(self, graph, trigger_csr) -> dict:
        key = (id(graph), id(trigger_csr) if trigger_csr is not None else None)
        entry = self._segments.get(key)
        if entry is None:
            shm, spec = publish_graph(graph, trigger_csr)
            self._segments[key] = (shm, spec)
            # Unpublish when the graph dies: keyed by identity, so a
            # recycled id() must never resolve to a stale segment.
            weakref.finalize(graph, self._drop_segment, key)
            entry = (shm, spec)
        return entry[1]

    def _drop_segment(self, key) -> None:
        entry = self._segments.pop(key, None)
        if entry is not None:
            _unlink_quietly(entry[0])

    def _trigger_csr_for(self, graph, triggering):
        from repro.diffusion.triggering import (
            build_trigger_csr,
            has_trigger_distribution,
            needs_trigger_csr,
        )

        if triggering is None or not needs_trigger_csr(triggering):
            return None
        if not has_trigger_distribution(triggering):
            return None  # sequential-only model; shards fall back per set
        key = (id(graph), id(triggering))
        csr = self._trigger_csrs.get(key)
        if csr is None:
            csr = build_trigger_csr(graph, triggering)
            self._trigger_csrs[key] = csr
            weakref.finalize(graph, self._trigger_csrs.pop, key, None)
        return csr

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def map_shards(
        self,
        task: str,
        graph,
        jobs: Sequence[tuple],
        *,
        triggering=None,
    ) -> List:
        """Run ``task(graph, trigger_csr, *job)`` for every job, in order.

        ``task`` names a :data:`repro.parallel.tasks.TASKS` entry.
        ``triggering`` (an already-resolved model, or ``None``) only
        controls whether a compiled :class:`TriggerCSR` is published
        alongside the graph — the jobs themselves carry whatever model
        arguments their task needs.  Results are returned in job order
        and are identical whichever side executed them.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if task not in _tasks.TASKS:
            raise ValueError(f"unknown shard task {task!r}")
        with _DISPATCH_SECONDS.timer(task=task):
            return self._map_shards_timed(task, graph, jobs, triggering)

    def _map_shards_timed(self, task, graph, jobs, triggering) -> List:
        trigger_csr = self._trigger_csr_for(graph, triggering)
        if self._processes <= 1 or len(jobs) == 1:
            fn = _tasks.TASKS[task]
            results = []
            for index, job in enumerate(jobs):
                with obs.span(
                    "parallel.task", task=task, shard=index, mode="inline"
                ):
                    results.append(fn(graph, trigger_csr, *job))
            return results

        def _payloads(spec):
            return [
                (
                    task,
                    spec,
                    tuple(job),
                    obs.remote_span_payload(
                        "parallel.task", task=task, shard=index, mode="pool"
                    ),
                )
                for index, job in enumerate(jobs)
            ]

        spec = self._publish(graph, trigger_csr)
        try:
            shipped = self._submit(_payloads(spec))
        except BrokenProcessPool:
            # A worker died mid-flight.  Tear everything down (unlinking
            # the segments — no /dev/shm leak survives a crash), then
            # retry once on a fresh pool; a second failure propagates,
            # again leaving nothing behind in /dev/shm.
            self.reset()
            self._restarts += 1
            _POOL_RESTARTS.inc()
            spec = self._publish(graph, trigger_csr)
            try:
                shipped = self._submit(_payloads(spec))
            except BrokenProcessPool:
                self.reset()
                self._restarts += 1
                _POOL_RESTARTS.inc()
                raise
        self._tasks_dispatched += len(jobs)
        _TASKS_DISPATCHED.inc(len(jobs), task=task)
        results = []
        for result, span_dict in shipped:
            obs.adopt(span_dict)
            results.append(result)
        return results

    def _submit(self, payloads) -> List:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._processes
            )
        return list(self._executor.map(_run_task, payloads))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Shut the executor down and unlink every published segment.

        The pool object stays usable: the next dispatch lazily starts a
        fresh executor and republishes whatever graphs it needs.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        for shm, _ in self._segments.values():
            _unlink_quietly(shm)
        self._segments.clear()

    def reconfigure(self, processes: int) -> None:
        """Change the worker count (tears down the current executor)."""
        processes = max(0, int(processes))
        if processes == self._processes:
            return
        self.reset()
        self._processes = processes

    def shutdown(self) -> None:
        """Tear everything down (terminal; get a new pool via get_pool)."""
        self.reset()
        self._trigger_csrs.clear()


_POOL: Optional[WorkerPool] = None


def get_pool(processes: Optional[int] = None) -> WorkerPool:
    """The process-wide pool, lazily created.

    ``processes=None`` reuses the existing pool as-is (creating it at
    :func:`default_processes` if absent); an explicit count reconfigures
    a pool whose count differs.  Worker count never affects results —
    only wall-clock — so callers that don't care simply pass ``None``.
    """
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool(processes)
        atexit.register(_shutdown_at_exit)
    elif processes is not None:
        _POOL.reconfigure(processes)
    return _POOL


def pool_stats() -> Dict[str, int]:
    """Stats of the process-wide pool without forcing its creation.

    All-zero counters (and ``active: 0``) when no pool exists — the
    serving stats endpoint reports this on processes that never ran a
    pooled dispatch.
    """
    if _POOL is None:
        return {
            "active": 0,
            "processes": 0,
            "tasks_dispatched": 0,
            "restarts": 0,
            "segments": 0,
        }
    stats: Dict[str, int] = {"active": 1}
    stats.update(_POOL.stats())
    return stats


def shutdown_pool() -> None:
    """Shut down and forget the process-wide pool (tests, reconfigure)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter teardown
    try:
        shutdown_pool()
    except Exception:
        pass
