"""A persistent, lazily-started worker pool over shared-memory graphs.

One :class:`WorkerPool` per process (the :func:`get_pool` singleton),
reused across calls: the ``ProcessPoolExecutor`` is created on the first
pooled dispatch and kept warm, and each distinct graph is published into
shared memory exactly once (keyed by object identity, cleaned up by a
``weakref.finalize`` when the graph is garbage-collected).  A shard call
therefore pays worker spawn and graph transfer only once per process,
not once per build — the two overheads that made the first sharded
builder *lose* to the serial path.

Dispatch contract (:meth:`WorkerPool.map_shards`):

* ``processes <= 1`` (or a single job) runs the shards in-process through
  the *same* task functions with the *same* original graph — byte-for-
  byte the results of the pooled path, which is what keeps sharded
  results deterministic in ``(seed, num_shards)`` and independent of the
  worker count.
* multi-process dispatches regroup *consecutive* micro-shards into
  fewer, larger submissions using per-task wall-clock feedback
  (:class:`_AdaptiveSharder`, tunable via ``$REPRO_SHARD_TARGET_MS``).
  Grouping changes only which worker runs a micro-shard — every
  micro-shard keeps its own arguments and seed — so results stay
  byte-identical to ungrouped dispatch.
* a :class:`BrokenProcessPool` (a worker was killed, OOMed, or died in C
  code) tears the pool down — executor shut down, **every shared-memory
  segment unlinked** so nothing leaks in ``/dev/shm`` — and the dispatch
  is retried once on a fresh pool before the error propagates.

Pool shutdown (explicit :func:`shutdown_pool`, pool reconfiguration, or
the ``atexit`` hook) likewise unlinks every published segment.
"""

from __future__ import annotations

import atexit
import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.parallel import tasks as _tasks
from repro.parallel.shm import attach_graph, publish_graph

__all__ = [
    "PROCESSES_ENV",
    "SHARD_TARGET_ENV",
    "WorkerPool",
    "default_processes",
    "get_pool",
    "pool_stats",
    "shard_target_seconds",
    "shutdown_pool",
]

_TASKS_DISPATCHED = obs.counter(
    "repro_parallel_tasks_dispatched_total",
    "Shard tasks executed by pool workers (not the in-process fallback)",
    labels=("task",),
)
_POOL_RESTARTS = obs.counter(
    "repro_parallel_pool_restarts_total",
    "Worker-pool teardowns forced by a BrokenProcessPool crash recovery",
)
_DISPATCH_SECONDS = obs.histogram(
    "repro_parallel_dispatch_seconds",
    "Wall-clock of one map_shards dispatch (all shards, either backend)",
    labels=("task",),
)

#: Environment override for the pool's worker count (0 = in-process).
PROCESSES_ENV = "REPRO_PARALLEL_PROCESSES"

#: Environment override for the adaptive-sharding target milliseconds per
#: dispatched task (0 disables grouping: every micro-shard ships alone).
SHARD_TARGET_ENV = "REPRO_SHARD_TARGET_MS"

#: Default per-dispatch target when the environment doesn't say otherwise:
#: large enough that IPC/pickle overhead is noise, small enough that a
#: straggler group can't serialize the pool.
_DEFAULT_SHARD_TARGET_SECONDS = 0.2


def shard_target_seconds() -> float:
    """Adaptive-sharding target: ``$REPRO_SHARD_TARGET_MS`` > 200ms."""
    env = os.environ.get(SHARD_TARGET_ENV)
    if not env:
        return _DEFAULT_SHARD_TARGET_SECONDS
    millis = float(env)
    if millis < 0:
        raise ValueError(f"${SHARD_TARGET_ENV} must be >= 0, got {env}")
    return millis / 1000.0


def default_processes() -> int:
    """Worker count: ``$REPRO_PARALLEL_PROCESSES`` > effective cores."""
    env = os.environ.get(PROCESSES_ENV)
    if env:
        count = int(env)
        if count < 0:
            raise ValueError(
                f"${PROCESSES_ENV} must be >= 0, got {count}"
            )
        return count
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker attachment cache: segment name -> (shm, graph, trigger_csr).
#: Bounded so a long-lived pool cycling through many graphs cannot pin an
#: unbounded number of segments.
_ATTACHED: Dict[str, tuple] = {}
_ATTACH_CAP = 8


def _attached(spec: dict) -> tuple:
    name = spec["name"]
    entry = _ATTACHED.get(name)
    if entry is None:
        graph, trigger_csr, shm = attach_graph(spec)
        while len(_ATTACHED) >= _ATTACH_CAP:
            # FIFO eviction; the numpy views keep the evicted mapping
            # alive until their graph is collected, so dropping the cache
            # entry is safe even mid-task.
            _ATTACHED.pop(next(iter(_ATTACHED)))
        entry = (shm, graph, trigger_csr)
        _ATTACHED[name] = entry
    return entry


def _run_task(payload: Tuple[str, Optional[dict], tuple, Optional[dict]]):
    """Pool entry point: resolve the task by name, attach, run.

    Returns ``(result, span_dict, seconds)``: ``span_dict`` is ``None``
    unless the parent shipped trace metadata, in which case it carries
    this shard's wall-clock, queue wait, and worker pid for the parent to
    adopt; ``seconds`` is the task's own wall-clock, which the parent
    feeds back into the adaptive sharder.
    """
    task_name, spec, args, trace_meta = payload
    _, graph, trigger_csr = _attached(spec)
    fn = _tasks.TASKS[task_name]
    tick: Dict[str, float] = {}
    with obs.stopwatch(tick):
        result, span_dict = obs.record_remote(
            trace_meta, fn, graph, trigger_csr, *args
        )
    return result, span_dict, tick["seconds"]


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _unlink_quietly(shm) -> None:
    if shm is None:  # file-backed publication: nothing to unlink
        return
    try:
        shm.close()
        shm.unlink()
    except Exception:  # already gone (interpreter teardown, double reset)
        pass


def _job_worlds(job: tuple) -> int:
    """Monte-Carlo worlds a shard job covers (the cost proxy).

    Every shard task follows the ``(seed_seq, count, *rest)`` argument
    convention, so the count sits at index 1; jobs that don't look like
    that count as one world each.
    """
    if len(job) > 1 and isinstance(job[1], int):
        return max(int(job[1]), 1)
    return 1


class _AdaptiveSharder:
    """Wall-clock feedback → how many micro-shards to ship per task.

    The forward estimators always split work into
    :data:`~repro.parallel.FORWARD_SHARDS` fixed micro-shards so results
    stay a pure function of ``(seed, num_samples)``.  On a small run each
    micro-shard lasts microseconds and IPC dominates; on a web-scale
    graph one micro-shard alone can run for seconds.  This class keeps an
    exponentially-weighted average of observed seconds-per-world for each
    task and greedily packs *consecutive* micro-shards into dispatch
    groups that each land near the target wall-clock.  Grouping only
    changes which process executes a micro-shard, never its arguments or
    its seed — each group replays its members one by one — so results are
    byte-identical to singleton dispatch.
    """

    #: EWMA weight of the newest observation.
    _GAIN = 0.3

    def __init__(self) -> None:
        self._rate: Dict[str, float] = {}  # task -> EWMA seconds per world

    def observe(self, task: str, worlds: int, seconds: float) -> None:
        """Feed one executed micro-shard's wall-clock back in."""
        if worlds <= 0 or seconds <= 0.0:
            return
        rate = seconds / worlds
        prev = self._rate.get(task)
        self._rate[task] = (
            rate
            if prev is None
            else prev + self._GAIN * (rate - prev)
        )

    def plan(
        self,
        task: str,
        jobs: Sequence[tuple],
        processes: int,
        target_seconds: float,
    ) -> List[List[int]]:
        """Group job indices (consecutive, order-preserving) for dispatch.

        Without timing history — or with grouping disabled — every job
        ships alone, which is exactly the pre-adaptive dispatch.  A group
        never exceeds ``ceil(len(jobs) / processes)`` members, so the
        pool always has at least ``processes`` groups to load-balance.
        """
        rate = self._rate.get(task)
        if rate is None or rate <= 0.0 or target_seconds <= 0.0:
            return [[index] for index in range(len(jobs))]
        max_members = -(-len(jobs) // max(processes, 1))
        groups: List[List[int]] = []
        current: List[int] = []
        current_seconds = 0.0
        for index, job in enumerate(jobs):
            estimate = _job_worlds(job) * rate
            if current and (
                current_seconds + estimate > target_seconds
                or len(current) >= max_members
            ):
                groups.append(current)
                current, current_seconds = [], 0.0
            current.append(index)
            current_seconds += estimate
        if current:
            groups.append(current)
        return groups


class WorkerPool:
    """Persistent process pool + shared-memory graph registry."""

    def __init__(self, processes: Optional[int] = None):
        self._processes = (
            default_processes() if processes is None else max(0, int(processes))
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        # publish cache: (id(graph), id(trigger_csr) | None) -> (shm, spec)
        self._segments: Dict[tuple, tuple] = {}
        self._trigger_csrs: Dict[tuple, object] = {}
        self._sharder = _AdaptiveSharder()
        self._tasks_dispatched = 0
        self._restarts = 0

    @property
    def processes(self) -> int:
        """Configured worker count (0/1 = everything runs in-process)."""
        return self._processes

    @property
    def tasks_dispatched(self) -> int:
        """Shard tasks actually executed by pool workers (not in-process).

        Benchmarks assert on this to fail loudly when a supposedly
        multi-process measurement silently took the in-process fallback.
        """
        return self._tasks_dispatched

    @property
    def restarts(self) -> int:
        """Crash recoveries: pool teardowns forced by BrokenProcessPool."""
        return self._restarts

    def stats(self) -> Dict[str, int]:
        """Counters for ``/v1/stats`` and ``repro obs``."""
        return {
            "processes": self._processes,
            "tasks_dispatched": self._tasks_dispatched,
            "restarts": self._restarts,
            "segments": len(self._segments),
        }

    @property
    def segment_names(self) -> List[str]:
        """Names of the currently published segments (leak tests).

        File-backed publications (``.graph`` mmaps) create no segment
        and therefore never appear here.
        """
        return [
            shm.name
            for shm, _ in self._segments.values()
            if shm is not None
        ]

    # ------------------------------------------------------------------
    # Graph publication
    # ------------------------------------------------------------------
    def _publish(self, graph, trigger_csr) -> dict:
        key = (id(graph), id(trigger_csr) if trigger_csr is not None else None)
        entry = self._segments.get(key)
        if entry is None:
            shm, spec = publish_graph(graph, trigger_csr)
            self._segments[key] = (shm, spec)
            # Unpublish when the graph dies: keyed by identity, so a
            # recycled id() must never resolve to a stale segment.
            weakref.finalize(graph, self._drop_segment, key)
            entry = (shm, spec)
        return entry[1]

    def _drop_segment(self, key) -> None:
        entry = self._segments.pop(key, None)
        if entry is not None:
            _unlink_quietly(entry[0])

    def _trigger_csr_for(self, graph, triggering):
        from repro.diffusion.triggering import (
            build_trigger_csr,
            has_trigger_distribution,
            needs_trigger_csr,
        )

        if triggering is None or not needs_trigger_csr(triggering):
            return None
        if not has_trigger_distribution(triggering):
            return None  # sequential-only model; shards fall back per set
        key = (id(graph), id(triggering))
        csr = self._trigger_csrs.get(key)
        if csr is None:
            csr = build_trigger_csr(graph, triggering)
            self._trigger_csrs[key] = csr
            weakref.finalize(graph, self._trigger_csrs.pop, key, None)
        return csr

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def map_shards(
        self,
        task: str,
        graph,
        jobs: Sequence[tuple],
        *,
        triggering=None,
    ) -> List:
        """Run ``task(graph, trigger_csr, *job)`` for every job, in order.

        ``task`` names a :data:`repro.parallel.tasks.TASKS` entry.
        ``triggering`` (an already-resolved model, or ``None``) only
        controls whether a compiled :class:`TriggerCSR` is published
        alongside the graph — the jobs themselves carry whatever model
        arguments their task needs.  Results are returned in job order
        and are identical whichever side executed them.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if task not in _tasks.TASKS:
            raise ValueError(f"unknown shard task {task!r}")
        with _DISPATCH_SECONDS.timer(task=task):
            return self._map_shards_timed(task, graph, jobs, triggering)

    def _map_shards_timed(self, task, graph, jobs, triggering) -> List:
        trigger_csr = self._trigger_csr_for(graph, triggering)
        if self._processes <= 1 or len(jobs) == 1:
            fn = _tasks.TASKS[task]
            results = []
            for index, job in enumerate(jobs):
                with obs.span(
                    "parallel.task", task=task, shard=index, mode="inline"
                ):
                    results.append(fn(graph, trigger_csr, *job))
            return results

        groups = self._sharder.plan(
            task, jobs, self._processes, shard_target_seconds()
        )

        def _payloads(spec):
            payloads = []
            for group in groups:
                if len(group) == 1:
                    index = group[0]
                    payloads.append(
                        (
                            task,
                            spec,
                            tuple(jobs[index]),
                            obs.remote_span_payload(
                                "parallel.task",
                                task=task,
                                shard=index,
                                mode="pool",
                            ),
                        )
                    )
                else:
                    payloads.append(
                        (
                            _tasks.GROUPED_TASK,
                            spec,
                            (task, [tuple(jobs[i]) for i in group]),
                            obs.remote_span_payload(
                                "parallel.task",
                                task=task,
                                shard=group[0],
                                shards=len(group),
                                mode="pool-grouped",
                            ),
                        )
                    )
            return payloads

        spec = self._publish(graph, trigger_csr)
        try:
            shipped = self._submit(_payloads(spec))
        except BrokenProcessPool:
            # A worker died mid-flight.  Tear everything down (unlinking
            # the segments — no /dev/shm leak survives a crash), then
            # retry once on a fresh pool; a second failure propagates,
            # again leaving nothing behind in /dev/shm.
            self.reset()
            self._restarts += 1
            _POOL_RESTARTS.inc()
            spec = self._publish(graph, trigger_csr)
            try:
                shipped = self._submit(_payloads(spec))
            except BrokenProcessPool:
                self.reset()
                self._restarts += 1
                _POOL_RESTARTS.inc()
                raise
        # Counted in micro-shards, not dispatch groups: the counter's
        # contract is "shard tasks executed by pool workers" and grouped
        # dispatch still executes every micro-shard.
        self._tasks_dispatched += len(jobs)
        _TASKS_DISPATCHED.inc(len(jobs), task=task)
        ordered: List = [None] * len(jobs)
        for group, (result, span_dict, seconds) in zip(groups, shipped):
            obs.adopt(span_dict)
            if len(group) == 1:
                index = group[0]
                ordered[index] = result
                self._sharder.observe(
                    task, _job_worlds(jobs[index]), seconds
                )
            else:
                sub_results, sub_seconds = result
                for index, sub_result, sub_sec in zip(
                    group, sub_results, sub_seconds
                ):
                    ordered[index] = sub_result
                    self._sharder.observe(
                        task, _job_worlds(jobs[index]), sub_sec
                    )
        return ordered

    def _submit(self, payloads) -> List:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._processes
            )
        return list(self._executor.map(_run_task, payloads))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Shut the executor down and unlink every published segment.

        The pool object stays usable: the next dispatch lazily starts a
        fresh executor and republishes whatever graphs it needs.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        for shm, _ in self._segments.values():
            _unlink_quietly(shm)
        self._segments.clear()

    def reconfigure(self, processes: int) -> None:
        """Change the worker count (tears down the current executor)."""
        processes = max(0, int(processes))
        if processes == self._processes:
            return
        self.reset()
        self._processes = processes

    def shutdown(self) -> None:
        """Tear everything down (terminal; get a new pool via get_pool)."""
        self.reset()
        self._trigger_csrs.clear()


_POOL: Optional[WorkerPool] = None


def get_pool(processes: Optional[int] = None) -> WorkerPool:
    """The process-wide pool, lazily created.

    ``processes=None`` reuses the existing pool as-is (creating it at
    :func:`default_processes` if absent); an explicit count reconfigures
    a pool whose count differs.  Worker count never affects results —
    only wall-clock — so callers that don't care simply pass ``None``.
    """
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool(processes)
        atexit.register(_shutdown_at_exit)
    elif processes is not None:
        _POOL.reconfigure(processes)
    return _POOL


def pool_stats() -> Dict[str, int]:
    """Stats of the process-wide pool without forcing its creation.

    All-zero counters (and ``active: 0``) when no pool exists — the
    serving stats endpoint reports this on processes that never ran a
    pooled dispatch.
    """
    if _POOL is None:
        return {
            "active": 0,
            "processes": 0,
            "tasks_dispatched": 0,
            "restarts": 0,
            "segments": 0,
        }
    stats: Dict[str, int] = {"active": 1}
    stats.update(_POOL.stats())
    return stats


def shutdown_pool() -> None:
    """Shut down and forget the process-wide pool (tests, reconfigure)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter teardown
    try:
        shutdown_pool()
    except Exception:
        pass
