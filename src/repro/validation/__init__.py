"""Validation utilities: assumption checkers and the paper's counterexamples.

The paper's guarantee (Theorem 2) rests on specific assumptions — monotone
supermodular valuation, additive price, additive zero-mean noise — and its
Theorem 1 shows by explicit construction that expected social welfare is
neither submodular nor supermodular.  This subpackage makes both sides
programmatic:

* :mod:`repro.validation.checkers` — verify a user's
  :class:`~repro.utility.model.UtilityModel` satisfies the guarantee's
  assumptions, measure PRIMA's prefix quality on a given graph, and estimate
  bundleGRD's empirical approximation ratio on brute-forceable instances;
* :mod:`repro.validation.counterexamples` — the two constructions from the
  proof of Theorem 1, packaged as runnable instances whose marginal-welfare
  arithmetic exhibits the violations exactly.
"""

from repro.validation.checkers import (
    AssumptionReport,
    check_model_assumptions,
    empirical_approximation_ratio,
    verify_prefix_property,
)
from repro.validation.counterexamples import (
    MarginalComparison,
    non_submodularity_instance,
    non_supermodularity_instance,
)

__all__ = [
    "AssumptionReport",
    "MarginalComparison",
    "check_model_assumptions",
    "empirical_approximation_ratio",
    "non_submodularity_instance",
    "non_supermodularity_instance",
    "verify_prefix_property",
]
