"""Assumption and guarantee checkers.

The ``(1 − 1/e − ε)`` guarantee of Theorem 2 requires the utility model to
satisfy: monotone supermodular valuation, additive price, additive zero-mean
noise.  :func:`check_model_assumptions` verifies all three (the first two
exactly, the noise statistically) and reports per-assumption verdicts, so a
user can tell whether bundleGRD runs in its proven regime or as a heuristic.

:func:`verify_prefix_property` measures PRIMA's Definition-1 behaviour on a
concrete graph, and :func:`empirical_approximation_ratio` compares bundleGRD
against the brute-force optimum on brute-forceable instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bundlegrd import bundle_grd
from repro.engine import EngineContext
from repro.core.exact import brute_force_optimum
from repro.core.welmax import WelMaxInstance
from repro.diffusion.ic import estimate_spread
from repro.diffusion.welfare import estimate_welfare
from repro.graph.digraph import InfluenceGraph
from repro.rrset.imm import imm
from repro.rrset.prima import prima
from repro.utility.model import UtilityModel
from repro.utility.price import AdditivePrice
from repro.utility.valuation import is_monotone, is_supermodular


@dataclass(frozen=True)
class AssumptionReport:
    """Per-assumption verdicts for one utility model."""

    valuation_monotone: bool
    valuation_supermodular: bool
    price_additive: bool
    noise_zero_mean: bool
    noise_mean_estimates: Tuple[float, ...]

    @property
    def guarantee_applies(self) -> bool:
        """Whether Theorem 2's preconditions all hold."""
        return (
            self.valuation_monotone
            and self.valuation_supermodular
            and self.price_additive
            and self.noise_zero_mean
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.guarantee_applies:
            return "all assumptions hold: the (1 - 1/e - eps) guarantee applies"
        failed = [
            name
            for name, ok in (
                ("monotone valuation", self.valuation_monotone),
                ("supermodular valuation", self.valuation_supermodular),
                ("additive price", self.price_additive),
                ("zero-mean noise", self.noise_zero_mean),
            )
            if not ok
        ]
        return (
            "guarantee does NOT apply (bundleGRD runs as a heuristic); "
            "failing: " + ", ".join(failed)
        )


def check_model_assumptions(
    model: UtilityModel,
    noise_samples: int = 4000,
    noise_tolerance_sigmas: float = 4.0,
    rng: Optional[np.random.Generator] = None,
) -> AssumptionReport:
    """Check Theorem 2's preconditions on a utility model.

    Valuation properties are checked exactly over the ``2^k`` lattice; price
    additivity is structural (:class:`AdditivePrice` is additive by
    construction, anything else is checked pointwise against the sum of its
    singleton prices); zero-mean noise is tested by sampling, flagging items
    whose empirical mean deviates more than ``noise_tolerance_sigmas``
    standard errors.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    monotone = is_monotone(model.valuation)
    supermodular = is_supermodular(model.valuation)

    price = model.price
    if isinstance(price, AdditivePrice):
        additive = True
    else:
        additive = True
        singles = [price.price(1 << i) for i in range(model.num_items)]
        for mask in range(1 << model.num_items):
            expected = sum(
                singles[i] for i in range(model.num_items) if mask >> i & 1
            )
            if abs(price.price(mask) - expected) > 1e-9:
                additive = False
                break

    samples = np.array(
        [model.sample_noise_world(rng) for _ in range(noise_samples)]
    )
    means = samples.mean(axis=0)
    stds = samples.std(axis=0)
    stderr = np.where(stds > 0, stds / np.sqrt(noise_samples), 1e-12)
    zero_mean = bool(
        np.all(np.abs(means) <= noise_tolerance_sigmas * stderr + 1e-9)
    )
    return AssumptionReport(
        valuation_monotone=monotone,
        valuation_supermodular=supermodular,
        price_additive=additive,
        noise_zero_mean=zero_mean,
        noise_mean_estimates=tuple(float(m) for m in means),
    )


@dataclass(frozen=True)
class PrefixQuality:
    """Spread of a PRIMA prefix vs a dedicated IMM run, per budget."""

    budget: int
    prefix_spread: float
    dedicated_spread: float

    @property
    def ratio(self) -> float:
        """Prefix spread over dedicated spread (≈1 means prefix-preserving)."""
        if self.dedicated_spread <= 0:
            return 1.0
        return self.prefix_spread / self.dedicated_spread


def verify_prefix_property(
    graph: InfluenceGraph,
    budgets: Sequence[int],
    epsilon: float = 0.5,
    ell: float = 1.0,
    num_samples: int = 300,
    rng_seed: int = 0,
) -> List[PrefixQuality]:
    """Measure Definition 1 empirically: every prefix vs dedicated IMM."""
    result = prima(
        graph,
        budgets,
        epsilon=epsilon,
        ell=ell,
        ctx=EngineContext.create(rng=np.random.default_rng(rng_seed)),
    )
    spread_rng = np.random.default_rng(rng_seed + 1)
    qualities: List[PrefixQuality] = []
    for k in sorted(set(int(b) for b in budgets)):
        k = min(k, graph.num_nodes)
        prefix_spread = estimate_spread(
            graph, result.seeds_for_budget(k), num_samples, spread_rng
        )
        dedicated = imm(
            graph, k, epsilon=epsilon, ell=ell,
            ctx=EngineContext.create(rng=np.random.default_rng(rng_seed + 2)),
        )
        dedicated_spread = estimate_spread(
            graph, dedicated.seeds, num_samples, spread_rng
        )
        qualities.append(
            PrefixQuality(
                budget=k,
                prefix_spread=prefix_spread,
                dedicated_spread=dedicated_spread,
            )
        )
    return qualities


def empirical_approximation_ratio(
    instance: WelMaxInstance,
    epsilon: float = 0.5,
    num_samples: int = 300,
    rng_seed: int = 0,
) -> float:
    """bundleGRD's welfare over the brute-force optimum (tiny instances only).

    The search enumerates all budget-respecting allocations; keep
    ``Π_i C(n, b_i)`` small.  Theorem 2 predicts a ratio of at least
    ``1 − 1/e − ε`` with high probability.
    """
    optimum = brute_force_optimum(
        instance, num_samples=num_samples, rng_seed=rng_seed
    )
    greedy = bundle_grd(
        instance.graph,
        instance.budgets,
        epsilon=epsilon,
        rng=np.random.default_rng(rng_seed),
    )
    greedy_welfare = estimate_welfare(
        instance.graph,
        instance.model,
        greedy.allocation,
        num_samples=num_samples,
        ctx=EngineContext.create(rng=np.random.default_rng(rng_seed)),
    ).mean
    if optimum.welfare <= 0:
        return 1.0
    return greedy_welfare / optimum.welfare
