"""The Theorem 1 counterexamples, as runnable instances.

Theorem 1 proves expected social welfare is monotone but neither submodular
nor supermodular, via two constructions:

* **Non-submodularity** — a single node and two items whose individual
  utilities are negative but whose bundle utility is positive.  Adding the
  pair ``(u, i2)`` to the empty allocation gains nothing, while adding it
  after ``(u, i1)`` unlocks the bundle: the marginal *grows* with the
  allocation, breaking submodularity.
* **Non-supermodularity** — two nodes connected by a probability-1 edge and
  a single positive-utility item.  Adding ``(v2, i)`` to the empty allocation
  gains the item's utility; adding it after ``(v1, i)`` gains nothing
  (``v2`` adopts through propagation anyway): the marginal *shrinks*,
  breaking supermodularity.

With zero noise (a degenerate case of the paper's bounded-noise condition
``|N(i)| ≤ |V(i) − P(i)|``) both instances are fully deterministic, so the
violations are exact, not statistical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.engine import EngineContext
from repro.diffusion.welfare import estimate_welfare
from repro.graph.digraph import InfluenceGraph
from repro.graph.generators import isolated_nodes, two_node_edge
from repro.utility.model import UtilityModel
from repro.utility.noise import ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


@dataclass(frozen=True)
class MarginalComparison:
    """Marginal welfare of one extra pair at two nested allocations.

    Submodularity would require ``marginal_at_large ≤ marginal_at_small``;
    supermodularity the reverse.  The two instances below violate one each.
    """

    graph: InfluenceGraph
    model: UtilityModel
    small: Allocation
    large: Allocation
    extra_pair: Tuple[int, int]
    marginal_at_small: float
    marginal_at_large: float

    @property
    def violates_submodularity(self) -> bool:
        """Whether the marginal strictly grows with the allocation."""
        return self.marginal_at_large > self.marginal_at_small + 1e-9

    @property
    def violates_supermodularity(self) -> bool:
        """Whether the marginal strictly shrinks with the allocation."""
        return self.marginal_at_large < self.marginal_at_small - 1e-9


def _marginals(
    graph: InfluenceGraph,
    model: UtilityModel,
    small: Allocation,
    large: Allocation,
    extra_pair: Tuple[int, int],
    num_samples: int,
) -> Tuple[float, float]:
    def rho(allocation: Allocation) -> float:
        return estimate_welfare(
            graph,
            model,
            allocation,
            num_samples=num_samples,
            ctx=EngineContext.create(rng=np.random.default_rng(0)),
        ).mean

    node, item = extra_pair
    at_small = rho(small.with_pair(node, item)) - rho(small)
    at_large = rho(large.with_pair(node, item)) - rho(large)
    return at_small, at_large


def non_submodularity_instance(num_samples: int = 8) -> MarginalComparison:
    """The single-node, two-item construction breaking submodularity.

    ``P(i1) = P(i2) = 2``, ``V(i1) = V(i2) = 1`` (individual utilities −1),
    ``V({i1, i2}) = 5`` (bundle utility +1); zero noise.
    """
    graph = isolated_nodes(1)
    model = UtilityModel(
        TableValuation(2, {0b01: 1.0, 0b10: 1.0, 0b11: 5.0}),
        AdditivePrice([2.0, 2.0]),
        ZeroNoise(2),
    )
    small = Allocation.empty(2)
    large = Allocation([(0, 0)], num_items=2)
    extra = (0, 1)
    at_small, at_large = _marginals(
        graph, model, small, large, extra, num_samples
    )
    return MarginalComparison(
        graph=graph,
        model=model,
        small=small,
        large=large,
        extra_pair=extra,
        marginal_at_small=at_small,
        marginal_at_large=at_large,
    )


def non_supermodularity_instance(num_samples: int = 8) -> MarginalComparison:
    """The two-node, one-item construction breaking supermodularity.

    Edge ``v1 → v2`` with probability 1; ``V(i) = 2 > P(i) = 1`` (utility
    +1); zero noise.
    """
    graph = two_node_edge(1.0)
    model = UtilityModel(
        TableValuation(1, {0b1: 2.0}),
        AdditivePrice([1.0]),
        ZeroNoise(1),
    )
    small = Allocation.empty(1)
    large = Allocation([(0, 0)], num_items=1)
    extra = (1, 0)
    at_small, at_large = _marginals(
        graph, model, small, large, extra, num_samples
    )
    return MarginalComparison(
        graph=graph,
        model=model,
        small=small,
        large=large,
        extra_pair=extra,
        marginal_at_small=at_small,
        marginal_at_large=at_large,
    )
