"""Span-based tracing: one tree per run, across threads and processes.

A *span* is a named wall-clock interval with attributes and children.
The current span rides a :class:`contextvars.ContextVar`, so nesting is
lexical in synchronous code and follows task creation in asyncio (each
``asyncio.Task`` snapshots the context at spawn).  Process boundaries —
the :mod:`repro.parallel` worker pool — cannot share a ContextVar, so
spans cross them by value: the parent stamps a
:func:`remote_span_payload` into the task payload, the worker brackets
its work with :func:`record_remote` and ships the finished span back as
a plain dict, and the parent re-attaches it with :func:`adopt`.  The
result is one coherent tree for a pooled forward estimate: the root
``parallel.forward`` span holds one child per shard with that shard's
wall-clock, queue wait, and worker pid.

Tracing is **off by default** and zero-cost when off: :func:`span`
returns the module-level :data:`NOOP_SPAN` singleton — no allocation, no
clock read, no ContextVar write.  Tests pin that identity.  Enable with
``REPRO_TRACE=1`` in the environment or :func:`enable_tracing` in code.

Spans never touch RNG state; instrumented runs are byte-identical to
bare runs (pinned in ``tests/test_obs.py``).
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "NOOP_SPAN",
    "Span",
    "TRACE_ENV",
    "adopt",
    "clear_finished",
    "disable_tracing",
    "enable_tracing",
    "finished_roots",
    "record_remote",
    "remote_span_payload",
    "render_span_tree",
    "span",
    "tracing_enabled",
]

#: Environment variable that switches tracing on (any non-empty value
#: other than ``0``).
TRACE_ENV = "REPRO_TRACE"

_FORCED: Optional[bool] = None


def tracing_enabled() -> bool:
    """True when spans are being recorded (env var or explicit enable)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(TRACE_ENV, "0") not in ("", "0")


def enable_tracing() -> None:
    """Force tracing on for this process (overrides the env var)."""
    global _FORCED
    _FORCED = True


def disable_tracing() -> None:
    """Force tracing off and drop any collected roots."""
    global _FORCED
    _FORCED = False
    clear_finished()
    _CURRENT.set(None)


class Span:
    """One timed interval: name, attributes, children, duration.

    Created by :func:`span` (context-manager use) or :meth:`start` /
    :meth:`finish` pairs (the worker side, where the interval brackets a
    function call rather than a ``with`` block).
    """

    __slots__ = (
        "name", "attrs", "children", "duration_s", "pid", "_start", "_token"
    )

    def __init__(self, name: str, **attrs: Any):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs)
        self.children: List["Span"] = []
        self.duration_s: Optional[float] = None
        self.pid = os.getpid()
        self._start: Optional[float] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (shard index, sample counts, byte sizes)."""
        self.attrs.update(attrs)
        return self

    def start(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def finish(self) -> "Span":
        if self._start is not None and self.duration_s is None:
            self.duration_s = time.perf_counter() - self._start
        return self

    # -- serialization across process boundaries -----------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "attrs": self.attrs,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        out = cls(data["name"], **data.get("attrs", {}))
        out.duration_s = data.get("duration_s")
        out.pid = data.get("pid", out.pid)
        out.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return out

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        parent = _CURRENT.get()
        if parent is not None:
            parent.children.append(self)
        self._token = _CURRENT.set(self)
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.finish()
        _CURRENT.reset(self._token)
        if _CURRENT.get() is None:
            _record_root(self)

    def __repr__(self) -> str:
        dur = "live" if self.duration_s is None else f"{self.duration_s:.4f}s"
        return f"Span({self.name!r}, {dur}, children={len(self.children)})"


class _NoopSpan:
    """The do-nothing span handed out when tracing is disabled.

    A single module-level instance: ``span(...) is NOOP_SPAN`` is pinned
    by tests as the zero-cost-when-disabled contract.  Every method is a
    no-op returning ``self`` so instrumented code never branches on the
    tracing state.
    """

    __slots__ = ()

    name = "noop"
    attrs: Dict[str, Any] = {}
    children: List[Any] = []
    duration_s = None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def start(self) -> "_NoopSpan":
        return self

    def finish(self) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def __repr__(self) -> str:
        return "NoopSpan()"


NOOP_SPAN = _NoopSpan()

_CURRENT: ContextVar[Optional[Span]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Finished root spans, oldest first, bounded so a long-lived server
#: with tracing on cannot grow without bound.
_FINISHED: List[Span] = []
_FINISHED_CAP = 256


def _record_root(root: Span) -> None:
    _FINISHED.append(root)
    if len(_FINISHED) > _FINISHED_CAP:
        del _FINISHED[: len(_FINISHED) - _FINISHED_CAP]


def span(name: str, **attrs: Any):
    """Open a span as a context manager; no-op when tracing is off.

    >>> with span("rrset.kpt", round=3):
    ...     ...
    """
    if not tracing_enabled():
        return NOOP_SPAN
    return Span(name, **attrs)


def current_span():
    """The innermost live span, or :data:`NOOP_SPAN` outside any."""
    live = _CURRENT.get()
    return live if live is not None else NOOP_SPAN


def adopt(span_dict: Optional[Dict[str, Any]]) -> None:
    """Attach a worker-serialized span dict under the current span.

    The parent side of cross-process propagation: the pool calls this
    with each completed task's span payload.  A ``None`` payload (worker
    ran with tracing off) or no live parent span is a silent no-op.
    """
    if span_dict is None:
        return
    parent = _CURRENT.get()
    if parent is None:
        if tracing_enabled():
            _record_root(Span.from_dict(span_dict))
        return
    parent.children.append(Span.from_dict(span_dict))


def remote_span_payload(name: str, **attrs: Any) -> Optional[Dict[str, Any]]:
    """Trace metadata to ship with a pool task, or ``None`` when off.

    Stamps the enqueue time so the worker can report queue wait; the
    clock is ``time.time`` because ``perf_counter`` epochs are not
    comparable across processes.
    """
    if not tracing_enabled():
        return None
    return {"name": name, "attrs": dict(attrs), "enqueued_at": time.time()}


def record_remote(
    payload: Optional[Dict[str, Any]],
    fn: Callable[..., Any],
    *args: Any,
) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Worker side: run ``fn(*args)`` inside the shipped span.

    Returns ``(result, span_dict)``; the span dict is ``None`` when the
    payload was ``None`` (tracing off at dispatch time).  The recorded
    span carries the shard's wall-clock (``duration_s``), the worker's
    pid, and ``queue_wait_s`` measured from the parent's enqueue stamp.
    """
    if payload is None:
        return fn(*args), None
    started_at = time.time()
    remote = Span(payload["name"], **payload.get("attrs", {}))
    remote.set(queue_wait_s=max(0.0, started_at - payload["enqueued_at"]))
    remote.start()
    try:
        result = fn(*args)
    finally:
        remote.finish()
    return result, remote.to_dict()


def finished_roots() -> Tuple[Span, ...]:
    """Completed root spans recorded in this process, oldest first."""
    return tuple(_FINISHED)


def clear_finished() -> None:
    _FINISHED.clear()


def render_span_tree(root: Span, indent: int = 0) -> str:
    """Human-readable span tree, one line per span.

    ``repro obs`` and the ``REPRO_TRACE=1`` CLI epilogue print this::

        parallel.forward 0.8123s samples=4096
          parallel.task 0.0512s shard=0 pid=4242 queue_wait_s=0.0031
          ...
    """
    dur = "  -  " if root.duration_s is None else f"{root.duration_s:.4f}s"
    attrs = " ".join(
        f"{key}={_fmt_attr(value)}" for key, value in sorted(root.attrs.items())
    )
    line = "  " * indent + f"{root.name} {dur}"
    if root.pid != os.getpid():
        line += f" pid={root.pid}"
    if attrs:
        line += f" {attrs}"
    lines = [line]
    for child in root.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
