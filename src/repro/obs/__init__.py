"""repro.obs — stdlib-only metrics, spans, and sanctioned output.

See DESIGN.md §9.  Three capabilities, one package:

* **Metrics** (:mod:`repro.obs.metrics`): process-wide registry of
  counters, gauges, and bounded-bucket histograms with Prometheus-text
  exposition (``/v1/metrics``, ``repro obs``) and a compact snapshot
  folded into ``/v1/stats``.
* **Spans** (:mod:`repro.obs.trace`): ``with span("rrset.kpt"):``
  contextvar tracing, off by default and zero-cost when off, serialized
  across the worker-pool boundary so pooled runs yield one tree.
* **Output discipline**: :func:`emit` is the one sanctioned stdout path
  and :func:`stopwatch` the one sanctioned ad-hoc timer outside this
  package — the RL008 lint rule keeps raw ``print()`` and ``time.*``
  reads out of the rest of ``src/repro``.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import IO, Iterator, MutableMapping, Optional

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
    counter,
    gauge,
    histogram,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    TRACE_ENV,
    adopt,
    clear_finished,
    current_span,
    disable_tracing,
    enable_tracing,
    finished_roots,
    record_remote,
    remote_span_payload,
    render_span_tree,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "REGISTRY",
    "SIZE_BUCKETS",
    "Span",
    "TRACE_ENV",
    "adopt",
    "clear_finished",
    "counter",
    "current_span",
    "disable_tracing",
    "emit",
    "enable_tracing",
    "finished_roots",
    "gauge",
    "histogram",
    "parse_prometheus",
    "record_remote",
    "remote_span_payload",
    "render_prometheus",
    "render_span_tree",
    "span",
    "stopwatch",
    "tracing_enabled",
]


def emit(text: str, *, stream: Optional[IO[str]] = None) -> None:
    """Write a line of human-facing output (the sanctioned ``print``).

    Library code reports through this funnel rather than calling
    ``print`` directly (RL008), so output stays greppable to one choke
    point and tests can redirect it by passing ``stream``.
    """
    out = sys.stdout if stream is None else stream
    out.write(text + "\n")


@contextmanager
def stopwatch(
    sink: MutableMapping[str, float], key: str = "seconds"
) -> Iterator[None]:
    """Record the block's wall-clock into ``sink[key]`` (seconds).

    The experiments runner's phase timer, hosted here so experiment code
    never reads ``time.perf_counter`` directly.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        sink[key] = time.perf_counter() - start
