"""Process-wide metrics: counters, gauges, bounded-bucket histograms.

One :class:`MetricsRegistry` per process (the module-level
:data:`REGISTRY`), holding every metric the instrumented layers create at
import time.  Metrics are deliberately primitive — a dict update under
one lock — because they sit on hot paths: a counter increment must cost
no more than a function call, never allocate per observation, and never
touch an RNG stream (byte-reproducibility of instrumented runs is pinned
in ``tests/test_obs.py``).

Exposition is Prometheus text format 0.0.4 (:meth:`MetricsRegistry
.render`), the lingua franca every scraper understands; the strict
:func:`parse_prometheus` inverse exists so tests and the serving smoke
job can assert the output *parses*, not merely that some substring
appears.  Histograms use a fixed, bounded bucket list chosen at
registration — observation is a bisect into a preallocated row, so
cardinality cannot grow at runtime.

Wall-clock reads live here and in :mod:`repro.obs.trace` only: the RL008
lint rule keeps ``time.time``/``time.perf_counter`` (and ``print``) out
of the rest of ``src/repro`` so that every timing and reporting path
goes through this layer.
"""

from __future__ import annotations

import json
import re
import threading
import time
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "SIZE_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "parse_prometheus",
    "render_prometheus",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for request/phase latencies, in seconds.
#: Sub-millisecond through minute-scale — the serving layer lives at the
#: low end, store builds at the high end.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default buckets for size-ish distributions (batch sizes, shard counts).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(
    names: Tuple[str, ...], values: Tuple[str, ...], extra: str = ""
) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Shared shape: name, help text, label names, per-labelset values."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = label_names
        self._lock = lock
        self._values: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def render(self) -> Iterator[str]:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing sample (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._values.get(key, 0.0))

    def render(self) -> Iterator[str]:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            suffix = _label_suffix(self.label_names, key)
            yield f"{self.name}{suffix} {_format_value(float(value))}"


class Gauge(_Metric):
    """A sample that can go up and down (queue depths, open handles)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._values.get(key, 0.0))

    render = Counter.render


class _HistogramTimer:
    """``with histogram.timer():`` — observe the block's wall-clock."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: "Histogram", labels: Dict[str, object]):
        self._histogram = histogram
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.observe(
            time.perf_counter() - self._start, **self._labels
        )


class Histogram(_Metric):
    """Bounded-bucket distribution: cumulative counts, sum and count.

    ``buckets`` are the finite upper bounds; the ``+Inf`` bucket is
    implicit.  Per labelset state is one preallocated list — observing is
    a bisect plus three in-place updates, no allocation.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        lock: threading.Lock,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, label_names, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or sorted(bounds) != list(bounds):
            raise ValueError(
                f"histogram {name!r} buckets must be non-empty ascending, "
                f"got {buckets!r}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                # [per-bucket counts..., +Inf count, sum, count]
                state = [0] * (len(self.buckets) + 1) + [0.0, 0]
                self._values[key] = state
            state[bisect_left(self.buckets, value)] += 1
            state[-2] += value
            state[-1] += 1

    def timer(self, **labels: object) -> _HistogramTimer:
        return _HistogramTimer(self, labels)

    def snapshot(self, **labels: object) -> Dict[str, float]:
        """``{"count": ..., "sum": ...}`` for one labelset (tests/stats)."""
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                return {"count": 0, "sum": 0.0}
            return {"count": int(state[-1]), "sum": float(state[-2])}

    def render(self) -> Iterator[str]:
        with self._lock:
            items = sorted(
                (key, list(state)) for key, state in self._values.items()
            )
        for key, state in items:
            cumulative = 0
            for bound, count in zip(self.buckets, state):
                cumulative += count
                suffix = _label_suffix(
                    self.label_names, key, f'le="{_format_value(bound)}"'
                )
                yield f"{self.name}_bucket{suffix} {cumulative}"
            total = int(state[-1])
            suffix = _label_suffix(self.label_names, key, 'le="+Inf"')
            yield f"{self.name}_bucket{suffix} {total}"
            plain = _label_suffix(self.label_names, key)
            yield f"{self.name}_sum{plain} {_format_value(float(state[-2]))}"
            yield f"{self.name}_count{plain} {total}"


class MetricsRegistry:
    """Name → metric table with get-or-create registration.

    Registration is idempotent: asking for an existing name with the same
    kind and labels returns the existing instance (so module-level
    handles survive re-imports and tests), while a kind or label mismatch
    is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, cls: type, name: str, help_text: str,
                  labels: Sequence[str], **kwargs: object) -> _Metric:
        label_names = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.label_names != label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help_text, label_names, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        metric = self._register(Counter, name, help_text, labels)
        return metric  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        metric = self._register(Gauge, name, help_text, labels)
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help_text, labels, buckets=buckets
        )  # type: ignore[return-value]

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every metric's samples; registrations stay (tests)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.clear()

    def render(self) -> str:
        """The full registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            if metric.help_text:
                lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """Compact JSON-able view for ``/v1/stats``: name → value(s).

        Counters and gauges map labelsets to numbers; histograms report
        ``{count, sum}`` per labelset.  Label keys are rendered as
        ``label=value`` comma strings (or ``""`` for the bare series).
        """
        out: Dict[str, object] = {}
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            with self._lock:
                items = sorted(metric._values.items())
            series: Dict[str, object] = {}
            for key, state in items:
                label = ",".join(
                    f"{n}={v}" for n, v in zip(metric.label_names, key)
                )
                if isinstance(metric, Histogram):
                    series[label] = {
                        "count": int(state[-1]),  # type: ignore[index]
                        "sum": float(state[-2]),  # type: ignore[index]
                    }
                else:
                    series[label] = float(state)  # type: ignore[arg-type]
            if series:
                out[metric.name] = (
                    series[""] if list(series) == [""] else series
                )
        return out


#: The process-wide registry every instrumented layer registers into.
REGISTRY = MetricsRegistry()


def counter(
    name: str, help_text: str = "", labels: Sequence[str] = ()
) -> Counter:
    """Get-or-create a counter in the process registry."""
    return REGISTRY.counter(name, help_text, labels)


def gauge(name: str, help_text: str = "", labels: Sequence[str] = ()) -> Gauge:
    """Get-or-create a gauge in the process registry."""
    return REGISTRY.gauge(name, help_text, labels)


def histogram(
    name: str,
    help_text: str = "",
    labels: Sequence[str] = (),
    buckets: Sequence[float] = LATENCY_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram in the process registry."""
    return REGISTRY.histogram(name, help_text, labels, buckets=buckets)


def render_prometheus() -> str:
    """The process registry as Prometheus text (the scrape payload)."""
    return REGISTRY.render()


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Strictly parse exposition text back into ``{name: {labels: value}}``.

    Raises ``ValueError`` on any line that is neither a comment nor a
    well-formed sample — the shape tests and the serving smoke job use to
    assert ``/v1/metrics`` emits *valid* Prometheus text, not just text.
    Histogram series parse as their expanded ``_bucket``/``_sum``/
    ``_count`` sample names.
    """
    samples: Dict[str, Dict[str, float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: bad comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: bad sample {line!r}")
        raw_labels = match.group("labels") or ""
        parsed = _LABEL_PAIR_RE.findall(raw_labels)
        reassembled = ",".join(f'{k}="{v}"' for k, v in parsed)
        if reassembled != raw_labels:
            raise ValueError(f"line {lineno}: bad labels {raw_labels!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {match.group('value')!r}"
            ) from exc
        key = json.dumps(dict(parsed), sort_keys=True) if parsed else ""
        samples.setdefault(match.group("name"), {})[key] = value
    return samples
