"""The unified execution context of the two-sided engine.

Every layer of the reproduction — RR sampling (PRIMA/IMM/TIM/SSA, the
GAP-aware Com-IC phases), the forward Monte-Carlo engines, the experiment
drivers, the CLI and the persistent sketch store — shares three pieces of
cross-cutting execution state:

* the **backend** choice (``sequential`` | ``batched`` | ``parallel``),
  historically resolved per call site from an explicit kwarg or
  ``$REPRO_RR_BACKEND``;
* the **randomness lineage** — a ``numpy.random.Generator`` plus, when the
  caller named an integer seed, the ``SeedSequence`` it came from, so
  per-world child streams can be spawned reproducibly;
* the **forward-world cursor** — the monotone pairing counter of the
  GAP-aware Com-IC sampler (RR set ``j`` is paired with forward world
  ``j mod |worlds|`` *across* the KPT and θ phases, and across a sketch
  store save/load/extend round trip).

:class:`EngineContext` owns all three.  It is a frozen dataclass: the
backend and triggering model are resolved exactly once at construction
(explicit argument > ``$REPRO_RR_BACKEND`` > ``batched``), and the only
mutable state it carries — the RNG stream and the world cursor — advances
through the held objects, never through rebinding.  One context therefore
names one reproducible execution: two runs handed equal contexts consume
identical randomness and identical world pairings on every layer.

Every public entry point routes its arguments through
:func:`ensure_context`: ``ctx=`` is the one supported spelling of
execution state, ``rng=`` rides into a fresh context unchanged (it was
never deprecated), and the removed legacy ``backend=`` / ``seed=``
keywords raise a :class:`TypeError` naming ``ctx=`` as the replacement —
the one-release deprecation window of the EngineContext migration is
over.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "LEGACY_KWARG_MESSAGE",
    "EngineContext",
    "WorldCursor",
    "ensure_context",
    "is_batched",
    "reject_legacy_kwarg",
    "resolve_backend",
]

#: Environment variable naming the default engine backend.
BACKEND_ENV = "REPRO_RR_BACKEND"

#: Recognized backend names.
BACKENDS = ("sequential", "batched", "parallel")

#: The pinned removal text (tests assert on this exact template).
LEGACY_KWARG_MESSAGE = (
    "{caller}: the legacy {kwarg} keyword was removed with the "
    "EngineContext migration; build an EngineContext "
    "(repro.engine.EngineContext.create(...)) and pass it as ctx= instead."
)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name: explicit > ``$REPRO_RR_BACKEND`` > batched.

    Raises :class:`ValueError` naming the valid backends and, when the
    offending value came from the environment, the ``$REPRO_RR_BACKEND``
    setting that supplied it — so a typo in the environment fails loudly at
    context construction instead of somewhere downstream.
    """
    if backend is None:
        env_value = os.environ.get(BACKEND_ENV) or None
        if env_value is None:
            return "batched"
        if env_value not in BACKENDS:
            raise ValueError(
                f"invalid RR backend {env_value!r} from ${BACKEND_ENV}; "
                f"valid backends are {BACKENDS}"
            )
        return env_value
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown RR backend {backend!r}; valid backends are {BACKENDS}"
        )
    return backend


def is_batched(backend: str) -> bool:
    """Whether a *resolved* backend name uses the vectorized kernels.

    ``batched`` and ``parallel`` share the numpy frontier kernels;
    ``sequential`` is the per-set/per-world Python reference path.  This
    is the one place backend capability is read off the name — raw
    ``backend != "sequential"`` string comparisons elsewhere are flagged
    by ``repro lint`` (RL002).  Unknown names raise ``ValueError`` so a
    typo cannot silently select a capability.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown RR backend {backend!r}; valid backends are {BACKENDS}"
        )
    return backend != "sequential"


class WorldCursor:
    """Monotone forward-world pairing cursor of the GAP-aware sampler.

    ``position`` counts every GAP RR set drawn so far; RR set ``j``
    (counting from the very first KPT sample) is paired with forward world
    ``(position at phase start + j) mod |worlds|``.  The cursor is the one
    piece of engine state that is *deliberately* mutable: the θ phase must
    continue from the KPT phase's offset, and a store-backed extension must
    continue from the persisted offset, which is exactly what sharing one
    cursor object achieves.
    """

    __slots__ = ("position",)

    def __init__(self, position: int = 0):
        self.position = int(position)

    def advance(self, count: int) -> int:
        """Consume ``count`` pairings; returns the pre-advance position."""
        if count < 0:
            raise ValueError(f"cannot advance cursor by {count}")
        start = self.position
        self.position += int(count)
        return start

    def __repr__(self) -> str:
        return f"WorldCursor(position={self.position})"


@dataclass(frozen=True, eq=False)
class EngineContext:
    """One reproducible execution: backend + RNG lineage + world cursor.

    Construct through :meth:`create` (which resolves the backend and seed
    exactly once) rather than the raw constructor.  Fields:

    ``backend``
        Resolved backend name — always one of :data:`BACKENDS`, never
        ``None``; the environment is *not* consulted again after
        construction.
    ``rng``
        The sampling stream every phase draws from, in call order.
    ``seed_seq``
        The ``SeedSequence`` the context was created from when the caller
        named an integer seed, else ``None``.  Carrying the lineage is what
        lets :meth:`spawn_generators` hand out independent per-world child
        streams that depend only on ``(seed, child index)`` — the
        reproducibility contract of the forward estimators.
    ``cursor``
        The shared :class:`WorldCursor` (see there).
    ``triggering``
        Optional resolved :class:`~repro.diffusion.triggering
        .TriggeringModel` the RR layers sample under (``None`` = IC fast
        path).
    """

    backend: str
    rng: np.random.Generator
    seed_seq: Optional[np.random.SeedSequence] = None
    cursor: WorldCursor = field(default_factory=WorldCursor)
    triggering: Optional[object] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        backend: Optional[str] = None,
        seed: Optional[Union[int, np.integer]] = None,
        rng: Optional[Union[np.random.Generator, int, np.integer]] = None,
        triggering=None,
        world_cursor: int = 0,
    ) -> "EngineContext":
        """Build a context, resolving backend/seed/triggering exactly once.

        ``seed`` and ``rng`` are mutually exclusive.  An integer (``seed``
        or an integer passed as ``rng`` — the historical convenience)
        establishes a ``SeedSequence`` lineage: ``ctx.rng`` is
        ``default_rng(SeedSequence(seed))`` — the same stream as
        ``default_rng(seed)`` — and per-world children can be spawned.  A
        ``Generator`` is adopted as-is with no lineage (its history is
        unknown); ``None`` falls back to the historical default stream,
        ``default_rng(0)``, also without lineage so that legacy
        byte-identical paths stay byte-identical.

        ``triggering`` accepts ``None``, a name (``"ic"`` / ``"lt"``) or a
        ``TriggeringModel`` instance; names are resolved here, once.
        """
        if seed is not None and rng is not None:
            raise ValueError("pass either seed= or rng=, not both")
        if rng is not None and isinstance(rng, (int, np.integer)):
            seed, rng = int(rng), None
        seed_seq: Optional[np.random.SeedSequence] = None
        if seed is not None:
            seed_seq = np.random.SeedSequence(int(seed))
            generator = np.random.default_rng(seed_seq)
        elif rng is not None:
            generator = rng
        else:
            generator = np.random.default_rng(0)
        trig = None
        if triggering is not None:
            from repro.diffusion.triggering import resolve_triggering

            trig = resolve_triggering(triggering)
        return cls(
            backend=resolve_backend(backend),
            rng=generator,
            seed_seq=seed_seq,
            cursor=WorldCursor(world_cursor),
            triggering=trig,
        )

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_stream(
        self,
        seed: Optional[Union[int, np.integer]] = None,
        rng: Optional[Union[np.random.Generator, int, np.integer]] = None,
        world_cursor: int = 0,
    ) -> "EngineContext":
        """Same policy (backend, triggering), fresh randomness and cursor.

        The experiment drivers use this to give every (algorithm, budget)
        run its own stream while the CLI-chosen backend applies
        fleet-wide.  The stream must be named explicitly (``seed`` or
        ``rng``): silently falling back to the default seed-0 stream
        would hand out byte-identical "fresh" streams.
        """
        if seed is None and rng is None:
            raise ValueError(
                "with_stream needs an explicit seed= or rng=; a derived "
                "context with the default stream would duplicate every "
                "other default-stream derivation"
            )
        derived = EngineContext.create(
            backend=self.backend,
            seed=seed,
            rng=rng,
            world_cursor=world_cursor,
        )
        return EngineContext(
            backend=derived.backend,
            rng=derived.rng,
            seed_seq=derived.seed_seq,
            cursor=derived.cursor,
            triggering=self.triggering,
        )

    def with_triggering(self, triggering) -> "EngineContext":
        """Same stream and cursor, different (resolved) triggering model."""
        trig = None
        if triggering is not None:
            from repro.diffusion.triggering import resolve_triggering

            trig = resolve_triggering(triggering)
        return EngineContext(
            backend=self.backend,
            rng=self.rng,
            seed_seq=self.seed_seq,
            cursor=self.cursor,
            triggering=trig,
        )

    def spawn_generators(self, count: int) -> List[np.random.Generator]:
        """``count`` independent child generators from the seed lineage.

        Child ``i`` depends only on ``(seed, i + children spawned so
        far)`` — ``SeedSequence.spawn`` guarantees stream independence.
        Requires the context to carry a lineage (constructed from an
        integer seed); contexts adopted from a bare ``Generator`` cannot
        spawn reproducible children, and asking is a bug.
        """
        if self.seed_seq is None:
            raise ValueError(
                "this EngineContext was built from a Generator (or the "
                "default stream) and carries no SeedSequence lineage; "
                "construct it from an integer seed to spawn child streams"
            )
        children = self.seed_seq.spawn(int(count))
        return [np.random.default_rng(child) for child in children]

    @property
    def has_lineage(self) -> bool:
        """Whether per-world child streams can be spawned reproducibly."""
        return self.seed_seq is not None

    @property
    def is_batched(self) -> bool:
        """Whether this context's backend uses the vectorized kernels.

        True for ``batched`` and ``parallel`` (which share the numpy
        frontier kernels), False for ``sequential``.  The one supported
        spelling of backend capability checks — see :func:`is_batched`.
        """
        return is_batched(self.backend)

    @property
    def is_parallel(self) -> bool:
        """Whether this context additionally fans work over the pool."""
        return self.backend == "parallel"

    def __repr__(self) -> str:
        lineage = (
            f"seed_seq.entropy={self.seed_seq.entropy}"
            if self.seed_seq is not None
            else "no lineage"
        )
        return (
            f"EngineContext(backend={self.backend!r}, {lineage}, "
            f"cursor={self.cursor.position}, "
            f"triggering={self.triggering!r})"
        )


def reject_legacy_kwarg(caller: str, kwarg: str) -> None:
    """Raise the pinned removed-legacy-kwarg TypeError."""
    raise TypeError(LEGACY_KWARG_MESSAGE.format(caller=caller, kwarg=kwarg))


def ensure_context(
    ctx: Optional[EngineContext],
    *,
    backend: Optional[str] = None,
    seed: Optional[Union[int, np.integer]] = None,
    rng: Optional[Union[np.random.Generator, int, np.integer]] = None,
    triggering=None,
    caller: str = "this function",
) -> EngineContext:
    """Resolve an entry point's execution state into one context.

    Every public entry point calls this first.  With ``ctx`` given it is
    returned as-is (combining it with an ``rng=`` value is a
    :class:`TypeError` — two sources of truth for the same state is
    exactly the drift the context exists to prevent; an
    entry-point-specific ``triggering`` argument is the one exception and
    overlays the context when the context itself carries none — two
    *different* triggering sources are a :class:`TypeError` like every
    other conflict).  Without ``ctx`` an equivalent context is built from
    ``rng=`` (never deprecated — it rides into the context unchanged).
    The removed legacy ``backend=`` / ``seed=`` keywords raise a
    :class:`TypeError` naming ``ctx=`` as the supported spelling, whether
    or not a context was passed.
    """
    if ctx is not None:
        if backend is not None:
            reject_legacy_kwarg(caller, "backend=")
        if seed is not None:
            reject_legacy_kwarg(caller, "seed=")
        if rng is not None:
            raise TypeError(
                f"{caller}: pass either ctx= or rng=, not both"
            )
        if triggering is not None:
            if ctx.triggering is not None:
                raise TypeError(
                    f"{caller}: the context already carries a triggering "
                    "model; pass either ctx= or triggering=, not both"
                )
            return ctx.with_triggering(triggering)
        return ctx
    if backend is not None:
        reject_legacy_kwarg(caller, "backend=")
    if seed is not None:
        reject_legacy_kwarg(caller, "seed=")
    return EngineContext.create(
        rng=rng,
        triggering=triggering,
    )
