"""Unified execution context shared by every engine layer (DESIGN.md §5)."""

from repro.engine.context import (
    BACKEND_ENV,
    BACKENDS,
    LEGACY_KWARG_MESSAGE,
    EngineContext,
    WorldCursor,
    ensure_context,
    is_batched,
    reject_legacy_kwarg,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "LEGACY_KWARG_MESSAGE",
    "EngineContext",
    "WorldCursor",
    "ensure_context",
    "is_batched",
    "reject_legacy_kwarg",
    "resolve_backend",
]
