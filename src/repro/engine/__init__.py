"""Unified execution context shared by every engine layer (DESIGN.md §5)."""

from repro.engine.context import (
    BACKEND_ENV,
    BACKENDS,
    DEPRECATION_MESSAGE,
    EngineContext,
    WorldCursor,
    ensure_context,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "DEPRECATION_MESSAGE",
    "EngineContext",
    "WorldCursor",
    "ensure_context",
    "resolve_backend",
]
