"""bundleGRD — Algorithm 1 of the paper.

The greedy bundle allocation: run the prefix-preserving seed selection PRIMA
once with the full budget vector to obtain an ordered set ``S`` of
``b = max_i b_i`` nodes, then assign every item ``i`` to the *top* ``b_i``
nodes of ``S``.  Nested prefixes mean maximal bundling: a node ranked ``r``
receives every item with ``b_i > r`` — and Theorem 2 shows the resulting
expected social welfare is within ``(1 − 1/e − ε)`` of optimal with
probability ``1 − 1/n^ℓ``, even though welfare is neither submodular nor
supermodular.

Notably the algorithm never reads valuations, prices or noise — mutual
complementarity alone justifies bundling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.graph.digraph import InfluenceGraph
from repro.rrset.prima import PRIMAResult, prima


@dataclass(frozen=True)
class BundleGRDResult:
    """bundleGRD's output: the allocation plus the underlying PRIMA run."""

    allocation: Allocation
    seed_order: Tuple[int, ...]
    prima_result: PRIMAResult

    @property
    def num_rr_sets(self) -> int:
        """RR sets of the final PRIMA collection (the memory metric)."""
        return self.prima_result.num_rr_sets


def bundle_grd(
    graph: InfluenceGraph,
    budgets: Sequence[int],
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    seed_order: Optional[Sequence[int]] = None,
    triggering=None,
    *,
    ctx=None,
) -> BundleGRDResult:
    """Run bundleGRD (Algorithm 1).

    Parameters
    ----------
    graph:
        The social network ``G``.
    budgets:
        Per-item budget vector ``b`` (item ``i``'s budget at index ``i``).
    epsilon, ell:
        PRIMA's approximation slack and confidence exponent (paper defaults
        0.5 and 1).
    rng:
        Randomness source for RR-set sampling.
    seed_order:
        Pre-computed prefix-preserving seed order; when given, PRIMA is not
        re-invoked.  Accepts a node sequence or any *store-backed* order — a
        :class:`~repro.store.SketchStore` / :class:`~repro.store.
        OracleService` (anything exposing ``seed_order``); store-backed
        sources carrying a ``verify_graph`` hook are fingerprint-checked
        against ``graph`` first, so a stale persisted order raises instead
        of silently mis-allocating.  This mirrors the influence-oracle
        usage the prefix property enables.
    triggering:
        ``None``/``"ic"`` (default), ``"lt"`` or a
        :class:`~repro.diffusion.triggering.TriggeringModel` instance —
        bundleGRD carries over unchanged to any triggering model (§5).

    Returns
    -------
    BundleGRDResult
        The allocation 𝒮: item ``i`` seeded on the top ``b_i`` nodes.
    """
    from repro.engine import ensure_context

    ctx = ensure_context(
        ctx, rng=rng, triggering=triggering, caller="bundle_grd"
    )
    budgets = [int(b) for b in budgets]
    if not budgets:
        raise ValueError("budgets must be non-empty")
    if any(b < 0 for b in budgets):
        raise ValueError(f"budgets must be non-negative: {budgets}")
    b_max = max(budgets)

    if seed_order is not None and hasattr(seed_order, "seed_order"):
        # Store-backed order (SketchStore / OracleService): check the
        # persisted artifact actually belongs to this graph, then unwrap.
        # Plain node sequences (list/tuple/ndarray/range/...) pass through.
        seed_order.verify_graph(graph)
        seed_order = seed_order.seed_order

    if seed_order is not None:
        order = tuple(int(v) for v in seed_order)
        if len(order) < b_max:
            raise ValueError(
                f"seed_order has {len(order)} nodes but max budget is {b_max}"
            )
        prima_result = PRIMAResult(
            seeds=order,
            budgets=tuple(sorted(budgets, reverse=True)),
            num_rr_sets=0,
            num_rr_sets_search=0,
            lower_bounds=(),
            coverage_fraction=0.0,
            epsilon=epsilon,
            ell=ell,
        )
    else:
        prima_result = prima(graph, budgets, epsilon=epsilon, ell=ell, ctx=ctx)
        order = prima_result.seeds

    pairs = [
        (node, item)
        for item, budget in enumerate(budgets)
        for node in order[: min(budget, len(order))]
    ]
    allocation = Allocation(pairs, num_items=len(budgets))
    return BundleGRDResult(
        allocation=allocation,
        seed_order=tuple(order),
        prima_result=prima_result,
    )
