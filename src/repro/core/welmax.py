"""The WelMax problem (Problem 1 of the paper).

Given ``G = (V, E, p)``, the utility model ``Param = (V, P, N)`` and a budget
vector ``b``, find an allocation ``𝒮*`` with ``|S_i| ≤ b_i`` maximizing the
expected social welfare ``ρ(𝒮)``.  WelMax is NP-hard (Proposition 1: IC
influence maximization is the single-item, zero-price, zero-noise special
case).

:class:`WelMaxInstance` bundles the three ingredients, validates them, and
exposes the welfare/adoption estimators so algorithms and experiments share
one entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.engine import EngineContext
from repro.diffusion.welfare import WelfareEstimate, estimate_adoption, estimate_welfare
from repro.graph.digraph import InfluenceGraph
from repro.utility.model import UtilityModel


@dataclass(frozen=True)
class WelMaxInstance:
    """One instance of the WelMax problem."""

    graph: InfluenceGraph
    model: UtilityModel
    budgets: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.budgets) != self.model.num_items:
            raise ValueError(
                f"budget vector has {len(self.budgets)} entries for a "
                f"universe of {self.model.num_items} items"
            )
        if any(int(b) < 0 for b in self.budgets):
            raise ValueError(f"budgets must be non-negative: {self.budgets}")

    @classmethod
    def create(
        cls,
        graph: InfluenceGraph,
        model: UtilityModel,
        budgets: Sequence[int],
    ) -> "WelMaxInstance":
        """Build an instance from any budget sequence."""
        return cls(graph=graph, model=model, budgets=tuple(int(b) for b in budgets))

    @property
    def num_items(self) -> int:
        """Size of the item universe."""
        return self.model.num_items

    @property
    def max_budget(self) -> int:
        """``b = max_i b_i`` — what bundleGRD hands to PRIMA."""
        return max(self.budgets) if self.budgets else 0

    def check(self, allocation: Allocation) -> None:
        """Raise if the allocation violates the instance's constraints."""
        if allocation.num_items != self.num_items:
            raise ValueError("allocation is over a different item universe")
        if not allocation.respects_budgets(self.budgets):
            raise ValueError(
                f"allocation exceeds budgets {self.budgets}: "
                f"counts {allocation.item_counts()}"
            )
        for node in allocation.seed_nodes():
            if node >= self.graph.num_nodes:
                raise ValueError(f"seed node {node} outside the graph")

    def welfare(
        self,
        allocation: Allocation,
        num_samples: int = 200,
        rng: Optional[np.random.Generator] = None,
    ) -> WelfareEstimate:
        """MC estimate of ``ρ(𝒮)`` for a feasible allocation."""
        self.check(allocation)
        return estimate_welfare(
            self.graph,
            self.model,
            allocation,
            num_samples=num_samples,
            ctx=EngineContext.create(rng=rng),
        )

    def adoption(
        self,
        allocation: Allocation,
        num_samples: int = 200,
        rng: Optional[np.random.Generator] = None,
    ) -> WelfareEstimate:
        """MC estimate of total expected adoptions (the baselines' metric)."""
        self.check(allocation)
        return estimate_adoption(
            self.graph,
            self.model,
            allocation,
            num_samples=num_samples,
            ctx=EngineContext.create(rng=rng),
        )
