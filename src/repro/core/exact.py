"""Brute-force optimum for tiny WelMax instances.

WelMax is NP-hard, but on instances with a handful of nodes and items the
optimal allocation can be found by enumerating all budget-respecting
allocations and estimating each one's expected welfare.  The test suite uses
this to validate bundleGRD's ``(1 − 1/e − ε)`` guarantee empirically, and the
examples use it to show how far greedy is from optimal on toy networks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.engine import EngineContext
from repro.core.welmax import WelMaxInstance
from repro.diffusion.welfare import estimate_welfare


@dataclass(frozen=True)
class ExactResult:
    """The optimal allocation found, its welfare and the search size."""

    allocation: Allocation
    welfare: float
    num_candidates: int


def enumerate_allocations(
    num_nodes: int, budgets: Sequence[int]
) -> Iterator[Allocation]:
    """All allocations with ``|S_i| ≤ b_i`` over ``num_nodes`` nodes.

    The count is ``Π_i Σ_{j≤b_i} C(n, j)`` — exponential; callers must keep
    instances tiny.  Only *maximal* per-item seed sets are enumerated
    (``|S_i| = min(b_i, n)``), which is without loss of optimality because
    expected welfare is monotone (Theorem 1).
    """
    nodes = range(num_nodes)
    per_item_choices: List[List[Tuple[int, ...]]] = []
    for budget in budgets:
        size = min(int(budget), num_nodes)
        per_item_choices.append(list(itertools.combinations(nodes, size)))
    for combo in itertools.product(*per_item_choices):
        yield Allocation.from_item_seed_sets(combo)


def brute_force_optimum(
    instance: WelMaxInstance,
    num_samples: int = 300,
    rng_seed: int = 0,
) -> ExactResult:
    """Exhaustively find the welfare-maximizing allocation.

    Every candidate is evaluated with the *same* RNG seed so that Monte-Carlo
    noise is common across candidates (common random numbers), making the
    argmax stable at moderate sample counts.
    """
    best_allocation: Optional[Allocation] = None
    best_welfare = -float("inf")
    count = 0
    for allocation in enumerate_allocations(
        instance.graph.num_nodes, instance.budgets
    ):
        count += 1
        estimate = estimate_welfare(
            instance.graph,
            instance.model,
            allocation,
            num_samples=num_samples,
            ctx=EngineContext.create(rng=np.random.default_rng(rng_seed)),
        )
        if estimate.mean > best_welfare:
            best_welfare = estimate.mean
            best_allocation = allocation
    if best_allocation is None:
        raise ValueError("no feasible allocation enumerated")
    return ExactResult(
        allocation=best_allocation,
        welfare=best_welfare,
        num_candidates=count,
    )
