"""Seed allocations.

An allocation ``𝒮 ⊆ V × I`` assigns seed nodes to items subject to per-item
budgets: ``|S_i| ≤ b_i`` for every item ``i`` (§3.2.1).  This class is the
common currency between bundleGRD, the baselines, the UIC simulator and the
welfare estimator.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.utility.itemsets import Mask

Pair = Tuple[int, int]


class Allocation:
    """An immutable set of ``(node, item)`` seed pairs."""

    __slots__ = ("_pairs", "_num_items")

    def __init__(self, pairs: Iterable[Pair], num_items: int):
        cleaned = set()
        for node, item in pairs:
            node, item = int(node), int(item)
            if item < 0 or item >= num_items:
                raise ValueError(
                    f"item {item} outside universe of {num_items} items"
                )
            if node < 0:
                raise ValueError(f"node {node} must be non-negative")
            cleaned.add((node, item))
        self._pairs: FrozenSet[Pair] = frozenset(cleaned)
        self._num_items = num_items

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, num_items: int) -> "Allocation":
        """The empty allocation."""
        return cls((), num_items)

    @classmethod
    def from_item_seed_sets(
        cls, seed_sets: Sequence[Sequence[int]]
    ) -> "Allocation":
        """Build from one seed list per item (index = item id)."""
        pairs = [
            (node, item)
            for item, seeds in enumerate(seed_sets)
            for node in seeds
        ]
        return cls(pairs, len(seed_sets))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_items(self) -> int:
        """Size of the item universe."""
        return self._num_items

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The raw ``(node, item)`` pairs."""
        return self._pairs

    def seed_nodes(self) -> Set[int]:
        """All seed nodes ``S_𝒮``."""
        return {node for node, _ in self._pairs}

    def seeds_of_item(self, item: int) -> Set[int]:
        """Seed nodes of one item ``S_i``."""
        return {node for node, it in self._pairs if it == item}

    def items_of_node(self, node: int) -> Mask:
        """Items allocated to a node, as a bitmask ``I_v``."""
        mask = 0
        for nd, item in self._pairs:
            if nd == node:
                mask |= 1 << item
        return mask

    def item_counts(self) -> List[int]:
        """Number of seeds assigned per item."""
        counts = [0] * self._num_items
        for _, item in self._pairs:
            counts[item] += 1
        return counts

    def respects_budgets(self, budgets: Sequence[int]) -> bool:
        """Whether ``|S_i| ≤ b_i`` holds for every item."""
        if len(budgets) != self._num_items:
            raise ValueError(
                f"budget vector has {len(budgets)} entries for "
                f"{self._num_items} items"
            )
        counts = self.item_counts()
        return all(c <= int(b) for c, b in zip(counts, budgets))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "Allocation") -> "Allocation":
        """Union of two allocations over the same universe."""
        if other.num_items != self._num_items:
            raise ValueError("allocations are over different item universes")
        return Allocation(self._pairs | other._pairs, self._num_items)

    def with_pair(self, node: int, item: int) -> "Allocation":
        """Allocation with one extra pair (used by greedy procedures)."""
        return Allocation(self._pairs | {(int(node), int(item))}, self._num_items)

    def __iter__(self) -> Iterator[Pair]:
        return iter(sorted(self._pairs))

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return (int(pair[0]), int(pair[1])) in self._pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return (
            self._pairs == other._pairs and self._num_items == other._num_items
        )

    def __hash__(self) -> int:
        return hash((self._pairs, self._num_items))

    def __le__(self, other: "Allocation") -> bool:
        """Subset relation between allocations."""
        return self._pairs <= other._pairs

    def __repr__(self) -> str:
        return (
            f"Allocation(num_items={self._num_items}, "
            f"pairs={len(self._pairs)})"
        )
