"""The paper's primary contribution: WelMax and bundleGRD.

:mod:`repro.core.allocation` defines seed allocations (relations over
``V × I`` with per-item budgets), :mod:`repro.core.welmax` states the
social-welfare-maximization problem, :mod:`repro.core.bundlegrd` implements
Algorithm 1 (the greedy bundle allocation with the ``(1 − 1/e − ε)``
guarantee), and :mod:`repro.core.exact` provides a brute-force optimum for
tiny instances, used to validate the approximation ratio empirically.
"""

from repro.core.allocation import Allocation
from repro.core.bundlegrd import BundleGRDResult, bundle_grd
from repro.core.exact import brute_force_optimum
from repro.core.welmax import WelMaxInstance

__all__ = [
    "Allocation",
    "BundleGRDResult",
    "WelMaxInstance",
    "brute_force_optimum",
    "bundle_grd",
]
