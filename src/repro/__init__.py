"""repro — a full reproduction of the UIC social-welfare-maximization system.

Reproduces Banerjee, Chen & Lakshmanan, *"Maximizing Welfare in Social
Networks under a Utility Driven Influence Diffusion Model"* (SIGMOD 2019):
the UIC diffusion model, the WelMax problem, the bundleGRD
``(1 - 1/e - eps)``-approximation (Algorithm 1), the prefix-preserving
multi-budget IMM extension PRIMA (Algorithm 2), the block-accounting analysis
machinery, all six experimental baselines, and the complete evaluation
harness.

Quickstart::

    import numpy as np
    from repro import (
        bundle_grd, WelMaxInstance, UtilityModel,
        TableValuation, AdditivePrice, GaussianNoise,
    )
    from repro.graph.generators import random_wc_graph

    graph = random_wc_graph(2000, 8, seed=7)
    model = UtilityModel(
        TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0}),
        AdditivePrice([3.0, 4.0]),
        GaussianNoise([1.0, 1.0]),
    )
    instance = WelMaxInstance.create(graph, model, budgets=[20, 20])
    result = bundle_grd(graph, instance.budgets, rng=np.random.default_rng(0))
    print(instance.welfare(result.allocation).mean)
"""

from repro.core.allocation import Allocation
from repro.core.bundlegrd import BundleGRDResult, bundle_grd
from repro.core.exact import brute_force_optimum
from repro.core.welmax import WelMaxInstance
from repro.diffusion.uic import UICResult, simulate_uic
from repro.diffusion.welfare import estimate_adoption, estimate_welfare
from repro.graph.digraph import InfluenceGraph
from repro.rrset.imm import imm
from repro.rrset.prima import prima
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise, NoiseModel, ZeroNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import (
    AdditiveValuation,
    ConeValuation,
    LevelwiseValuation,
    TableValuation,
    ValuationFunction,
)

__version__ = "1.0.0"

__all__ = [
    "AdditivePrice",
    "AdditiveValuation",
    "Allocation",
    "BundleGRDResult",
    "ConeValuation",
    "GaussianNoise",
    "InfluenceGraph",
    "LevelwiseValuation",
    "NoiseModel",
    "TableValuation",
    "UICResult",
    "UtilityModel",
    "ValuationFunction",
    "WelMaxInstance",
    "ZeroNoise",
    "brute_force_optimum",
    "bundle_grd",
    "estimate_adoption",
    "estimate_welfare",
    "imm",
    "prima",
    "simulate_uic",
]
