"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro table2
    python -m repro fig4 --config 1 --scale 0.05 --samples 60
    python -m repro fig7 --config 6 --budgets 100 300 500
    python -m repro table6 --scale 0.05
    python -m repro fig5 --rr-backend sequential       # legacy RR sampler
    python -m repro all --scale 0.02 --samples 20      # quick full sweep

    # the persistent influence oracle (repro.store): preprocess once ...
    python -m repro oracle build --graph g.txt --store g.sketch \
        --max-budget 50 --rr-sets 100000 --shards 8 --processes 8
    # ... then answer queries from the file in any later process
    python -m repro oracle query --graph g.txt --store g.sketch \
        --budgets 10 25 --spread --allocate 25 10
    python -m repro oracle extend --graph g.txt --store g.sketch --add 50000
    # put a fleet of stores behind a socket: async HTTP serving with
    # request coalescing, LRU mmap management and hot-swap on reload
    python -m repro serve --store-root stores/ --port 8732
    # Com-IC (GAP-aware) sketch stores: the RR-SIM+/RR-CIM pipeline
    # compiled once, served warm, theta-extended cursor-exactly
    python -m repro oracle build --graph g.txt --store c.sketch \
        --model comic --max-budget 10 --gap 0.1 0.4 0.1 0.4

Every subcommand prints the regenerated rows in the same shape the paper
reports.  Scales refer to the dataset stand-ins (DESIGN.md §11).  The engine
backend is selectable per run (``--rr-backend`` or ``$REPRO_RR_BACKEND``):
``batched`` (vectorized, default), ``parallel`` (the batched kernels
fanned over the shared-memory worker pool for sharded builds and forward
Monte-Carlo), or ``sequential`` (the historical per-world/per-set Python
loops, byte-reproducible against pre-vectorization seeds).  The single
knob covers every RR-based phase —
PRIMA/IMM/TIM/SSA sampling, TIM's width-based KPT estimation, the
GAP-aware Com-IC sampling of RR-SIM+/RR-CIM — *and* every forward
Monte-Carlo phase: welfare/adoption estimation, Com-IC spread estimation
and the baselines' forward adopter worlds (DESIGN.md §3).  Internally the
choice is carried by one :class:`repro.engine.EngineContext` per run
(DESIGN.md §5) — the CLI exports ``$REPRO_RR_BACKEND`` around each
subcommand so algorithms without an explicit context argument resolve
the same backend at context construction.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.rrset.batch import BACKEND_ENV, BACKENDS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset node-count multiplier (default 0.05)",
    )
    parser.add_argument(
        "--samples", type=int, default=60,
        help="Monte-Carlo samples per welfare estimate (default 60)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--rr-backend", choices=BACKENDS, default=None,
        help="engine backend: 'batched' (vectorized numpy frontier "
        "expansion, the default), 'parallel' (batched kernels plus the "
        "shared-memory worker pool for sharded builds and forward "
        "Monte-Carlo; worker count via $REPRO_PARALLEL_PROCESSES) or "
        "'sequential' (historical per-set/per-world Python loops). "
        "Applies to all RR phases (incl. KPT estimation and the "
        "GAP-aware Com-IC sampler) and to all forward Monte-Carlo "
        "phases (welfare/spread estimation, forward adopter worlds). "
        "Also settable via $REPRO_RR_BACKEND.",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="network statistics")

    fig4 = sub.add_parser("fig4", help="two-item welfare (configs 1-4)")
    fig4.add_argument("--config", type=int, default=1, choices=(1, 2, 3, 4))
    fig4.add_argument(
        "--no-comic", action="store_true",
        help="skip the slow RR-SIM+/RR-CIM baselines",
    )
    _add_common(fig4)

    fig5 = sub.add_parser("fig5", help="running times (config 1)")
    fig5.add_argument("--networks", nargs="+", default=None)
    _add_common(fig5)

    fig6 = sub.add_parser("fig6", help="RR-set counts (config 1)")
    fig6.add_argument("--networks", nargs="+", default=None)
    _add_common(fig6)

    fig7 = sub.add_parser("fig7", help="multi-item welfare (configs 5-8)")
    fig7.add_argument("--config", type=int, default=5, choices=(5, 6, 7, 8))
    fig7.add_argument("--budgets", type=int, nargs="+", default=(100, 300, 500))
    _add_common(fig7)

    fig8a = sub.add_parser("fig8a", help="running time vs number of items")
    fig8a.add_argument("--items", type=int, nargs="+", default=(1, 3, 5, 8, 10))
    _add_common(fig8a)

    fig8bc = sub.add_parser("fig8bc", help="real-Param budget sweep")
    fig8bc.add_argument("--budgets", type=int, nargs="+", default=(100, 300, 500))
    _add_common(fig8bc)

    fig8d = sub.add_parser("fig8d", help="budget-skew study")
    fig8d.add_argument("--total", type=int, default=500)
    _add_common(fig8d)

    fig9 = sub.add_parser("fig9abc", help="bundleGRD vs BDHS externality")
    fig9.add_argument("--network", default="orkut")
    _add_common(fig9)

    fig9d = sub.add_parser("fig9d", help="scalability sweep")
    fig9d.add_argument("--budget", type=int, default=50)
    _add_common(fig9d)

    sub.add_parser("table5", help="learned auction parameters")

    oracle = sub.add_parser(
        "oracle",
        help="persistent influence-oracle store (build once, query forever)",
    )
    osub = oracle.add_subparsers(dest="oracle_command", required=True)

    def _oracle_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--graph", required=True, metavar="FILE",
            help="edge-list file (weighted 'u v p' lines; see graph.io) "
            "or a mmap'd .graph CSR file from 'repro graph ingest'",
        )
        p.add_argument(
            "--store", required=True, metavar="FILE",
            help="sketch-store file path",
        )
        p.add_argument(
            "--rr-backend", choices=BACKENDS, default=None,
            help="RR sampling backend (also $REPRO_RR_BACKEND)",
        )

    build = osub.add_parser(
        "build", help="preprocess a graph into an on-disk oracle store"
    )
    _oracle_common(build)
    build.add_argument("--max-budget", type=int, required=True,
                       help="largest seed budget the oracle must serve")
    build.add_argument("--epsilon", type=float, default=0.5)
    build.add_argument("--ell", type=float, default=1.0)
    build.add_argument("--seed", type=int, default=0, help="RNG seed")
    build.add_argument(
        "--rr-sets", type=int, default=None,
        help="size θ of the persisted spread-estimation collection "
        "(prima model only; default 10000)",
    )
    build.add_argument(
        "--shards", type=int, default=1,
        help="sample the estimation collection in this many shards",
    )
    build.add_argument(
        "--processes", type=int, default=0,
        help="process-pool size for sharded builds (0 = in-process)",
    )
    build.add_argument(
        "--triggering", choices=("ic", "lt"), default=None,
        help="triggering model persisted with the store (default IC)",
    )
    build.add_argument(
        "--model", choices=("prima", "comic"), default="prima",
        help="sketch model: 'prima' (plain influence oracle) or 'comic' "
        "(GAP-aware Com-IC sketches via the RR-SIM+/RR-CIM pipeline; "
        "--max-budget is the selected item's budget)",
    )
    build.add_argument(
        "--gap", type=float, nargs=4, default=(0.1, 0.3, 0.1, 0.3),
        metavar=("QA0", "QAB", "QB0", "QBA"),
        help="Com-IC GAP parameters q_A|0 q_A|B q_B|0 q_B|A "
        "(comic model only)",
    )
    build.add_argument(
        "--select-item", type=int, choices=(0, 1), default=0,
        help="item whose seeds the comic sketch selects (comic only)",
    )
    build.add_argument(
        "--fixed-budget", type=int, default=None,
        help="IMM budget for the other item's fixed seeds "
        "(comic only; default --max-budget)",
    )
    build.add_argument(
        "--forward-worlds", type=int, default=20,
        help="forward Com-IC worlds estimating the GAP boost (comic only)",
    )
    build.add_argument(
        "--comic-variant", choices=("rr-sim", "rr-cim"), default="rr-sim",
        help="comic pipeline: rr-sim (RR-SIM+) or rr-cim (extra forward "
        "pass)",
    )

    extend = osub.add_parser(
        "extend", help="grow a store's RR collection without rebuilding"
    )
    _oracle_common(extend)
    extend.add_argument(
        "--add", type=int, required=True,
        help="number of RR sets to append (incremental θ-extension)",
    )

    query = osub.add_parser(
        "query", help="answer seed/spread/allocation queries from a store"
    )
    _oracle_common(query)
    query.add_argument(
        "--budgets", type=int, nargs="+", default=(10,),
        help="budgets to answer seed-prefix queries for",
    )
    query.add_argument(
        "--spread", action="store_true",
        help="also print the estimated spread of every returned prefix",
    )
    query.add_argument(
        "--allocate", type=int, nargs="+", default=None, metavar="B",
        help="run bundleGRD on the stored order for this budget vector",
    )
    query.add_argument(
        "--no-mmap", action="store_true",
        help="materialize store arrays in RAM instead of memory-mapping",
    )

    graph_cmd = sub.add_parser(
        "graph",
        help="web-scale graph files: stream-ingest edge lists into "
        "mmap'd .graph CSR files",
    )
    gsub = graph_cmd.add_subparsers(dest="graph_command", required=True)
    ingest = gsub.add_parser(
        "ingest",
        help="two-pass streaming ingest of a SNAP-style edge list",
    )
    ingest.add_argument(
        "--edges", required=True, metavar="FILE",
        help="SNAP-style edge list ('u v' or 'u v p' lines; #/%% comments)",
    )
    ingest.add_argument(
        "--out", required=True, metavar="FILE",
        help="output .graph CSR file path",
    )
    ingest.add_argument(
        "--num-nodes", type=int, default=None,
        help="override the node count (default: max id + 1)",
    )
    info = gsub.add_parser(
        "info", help="print a .graph file's header without loading arrays"
    )
    info.add_argument("path", metavar="FILE", help=".graph file")

    serve = sub.add_parser(
        "serve",
        help="async HTTP serving layer over a fleet of sketch stores",
    )
    serve.add_argument(
        "--store-root", action="append", required=True, metavar="DIR",
        help="directory scanned (recursively) for *.sketch stores; "
        "repeatable — keys are file stems",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8732,
        help="bind port; 0 picks a free port (printed on stdout)",
    )
    serve.add_argument(
        "--lru-size", type=int, default=8,
        help="max simultaneously mmap'd stores (LRU eviction beyond)",
    )
    serve.add_argument(
        "--coalesce-window", type=float, default=2.0, metavar="MS",
        help="spread-query coalescing window in milliseconds; "
        "0 disables coalescing (default 2.0)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a coalesced batch at this many queries (also bounds "
        "the batched kernel's scratch memory at max-batch x theta bytes)",
    )
    serve.add_argument(
        "--no-mmap", action="store_true",
        help="materialize store arrays in RAM instead of memory-mapping",
    )
    serve.add_argument(
        "--graph", default=None, metavar="FILE",
        help="verify at startup that every discovered store was built "
        "from this graph (edge list or .graph CSR file); mismatches "
        "abort before the server binds",
    )

    table6 = sub.add_parser("table6", help="RR-set count parity")
    table6.add_argument("--total", type=int, default=500)
    _add_common(table6)

    all_cmd = sub.add_parser("all", help="run every experiment (slow)")
    _add_common(all_cmd)

    obs_cmd = sub.add_parser(
        "obs",
        help="observability: dump the metrics catalogue or scrape a server",
    )
    obs_cmd.add_argument(
        "--scrape", default=None, metavar="HOST:PORT",
        help="fetch /v1/metrics from a live 'repro serve' endpoint "
        "(validated as Prometheus text) instead of dumping this "
        "process's registry",
    )

    lint = sub.add_parser(
        "lint",
        help="AST-based invariant checker (determinism, ctx-threading, ...)",
        add_help=False,
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to the checker ('repro lint --help' there)",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # The checker has its own argparse; dispatch before parsing so its
    # options pass through verbatim (REMAINDER stopped eating leading
    # options on 3.12+).
    if argv[:1] == ["lint"]:
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    backend = getattr(args, "rr_backend", None)
    if not backend:
        return _run_with_trace(args)
    # RRCollection resolves $REPRO_RR_BACKEND at construction time, so
    # exporting reconfigures every algorithm the subcommand runs; restored
    # afterwards so in-process callers don't inherit the choice.
    # repro-lint: disable=RL002 --rr-backend is the documented process knob
    saved = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = backend  # repro-lint: disable=RL002 see above
    try:
        return _run_with_trace(args)
    finally:
        if saved is None:
            # repro-lint: disable=RL002 restore half of the same bracket
            os.environ.pop(BACKEND_ENV, None)
        else:
            # repro-lint: disable=RL002 restore half of the same bracket
            os.environ[BACKEND_ENV] = saved


def _run_with_trace(args: argparse.Namespace) -> int:
    """Run a subcommand; with ``REPRO_TRACE=1``, print its span trees."""
    from repro import obs

    code = _run(args)
    if obs.tracing_enabled():
        for root in obs.finished_roots():
            print(obs.render_span_tree(root), flush=True)
        obs.clear_finished()
    return code


def _run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import print_table

    if args.command == "table2":
        from repro.graph.datasets import table2_rows

        print_table(list(table2_rows(scale=0.05)), title="Table 2")
        return 0

    if args.command == "fig4":
        from repro.experiments._two_item import TWO_ITEM_ALGORITHMS, runs_as_rows
        from repro.experiments.fig4_welfare import run_fig4

        algorithms = tuple(
            a
            for a in TWO_ITEM_ALGORITHMS
            if not (args.no_comic and a in ("RR-SIM+", "RR-CIM"))
        )
        runs = run_fig4(
            args.config,
            scale=args.scale,
            num_samples=args.samples,
            seed=args.seed,
            algorithms=algorithms,
        )
        print_table(runs_as_rows(runs), title=f"Fig 4 — Configuration {args.config}")
        return 0

    if args.command in ("fig5", "fig6"):
        from repro.experiments._two_item import runs_as_rows
        from repro.experiments.fig5_runtime import FIG5_NETWORKS, run_fig5
        from repro.experiments.fig6_rrsets import run_fig6

        networks = tuple(args.networks) if args.networks else FIG5_NETWORKS
        runner = run_fig5 if args.command == "fig5" else run_fig6
        kwargs = dict(networks=networks, scale=args.scale, seed=args.seed)
        if args.command == "fig5":
            kwargs["num_samples"] = args.samples
        panels = runner(**kwargs)
        for network, runs in panels.items():
            print_table(
                runs_as_rows(runs),
                title=f"{'Fig 5' if args.command == 'fig5' else 'Fig 6'} — {network}",
            )
        return 0

    if args.command == "fig7":
        from repro.experiments.fig7_multi_item import run_fig7, runs_as_rows

        runs = run_fig7(
            args.config,
            scale=args.scale,
            total_budgets=tuple(args.budgets),
            num_samples=args.samples,
            seed=args.seed,
        )
        print_table(runs_as_rows(runs), title=f"Fig 7 — Configuration {args.config}")
        return 0

    if args.command == "fig8a":
        from repro.experiments.fig8_real import run_items_runtime

        runs = run_items_runtime(
            scale=args.scale, item_counts=tuple(args.items), seed=args.seed
        )
        rows = [
            {
                "algorithm": r.algorithm,
                "num_items": r.num_items,
                "seconds": round(r.seconds, 3),
            }
            for r in runs
        ]
        print_table(rows, title="Fig 8(a) — items vs runtime")
        return 0

    if args.command == "fig8bc":
        from repro.experiments.fig8_real import run_real_param_sweep

        runs = run_real_param_sweep(
            scale=args.scale,
            total_budgets=tuple(args.budgets),
            num_samples=args.samples,
            seed=args.seed,
        )
        rows = [
            {
                "algorithm": r.algorithm,
                "total_budget": r.total_budget,
                "welfare": round(r.welfare, 1),
                "seconds": round(r.seconds, 3),
            }
            for r in runs
        ]
        print_table(rows, title="Fig 8(b, c) — real Param sweep")
        return 0

    if args.command == "fig8d":
        from repro.experiments.fig8_real import run_budget_skew

        runs = run_budget_skew(
            scale=args.scale,
            total_budget=args.total,
            num_samples=args.samples,
            seed=args.seed,
        )
        rows = [
            {
                "distribution": r.distribution,
                "budgets": "/".join(str(b) for b in r.budgets),
                "welfare": round(r.welfare, 1),
                "seconds": round(r.seconds, 3),
            }
            for r in runs
        ]
        print_table(rows, title="Fig 8(d) — budget skew")
        return 0

    if args.command == "fig9abc":
        from repro.experiments.fig9_bdhs import result_rows, run_fig9_bdhs

        result = run_fig9_bdhs(
            args.network,
            scale=args.scale,
            num_samples=args.samples,
            seed=args.seed,
        )
        print_table(result_rows(result), title=f"Fig 9 — {args.network}")
        return 0

    if args.command == "fig9d":
        from repro.experiments.fig9_scalability import (
            run_fig9_scalability,
            runs_as_rows,
        )

        runs = run_fig9_scalability(
            scale=args.scale,
            budget=args.budget,
            num_samples=args.samples,
            seed=args.seed,
        )
        print_table(runs_as_rows(runs), title="Fig 9(d) — scalability")
        return 0

    if args.command == "graph":
        return _run_graph(args)

    if args.command == "oracle":
        return _run_oracle(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "obs":
        return _run_obs(args)

    if args.command == "table5":
        from repro.utility.learned import table5_rows

        print_table(list(table5_rows()), title="Table 5 — learned parameters")
        return 0

    if args.command == "table6":
        from repro.experiments.table6_rrsets import rows_as_dicts, run_table6

        rows = run_table6(
            scale=args.scale, total_budget=args.total, seed=args.seed
        )
        print_table(rows_as_dicts(rows), title="Table 6 — RR-set counts")
        return 0

    if args.command == "all":
        for command in (
            ["table2"],
            ["fig4", "--config", "1", "--no-comic"],
            ["fig7", "--config", "5", "--budgets", "100", "200"],
            ["fig8d", "--total", "100"],
            ["table5"],
            ["table6", "--total", "100"],
        ):
            extra = (
                ["--scale", str(args.scale), "--samples", str(args.samples)]
                if command[0] not in ("table2", "table5")
                else []
            )
            main(command + extra)
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _run_obs(args: argparse.Namespace) -> int:
    """``repro obs`` — the metrics catalogue, local or scraped live."""
    from repro import obs

    if args.scrape:
        host, _, port = args.scrape.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit("--scrape takes HOST:PORT")
        from repro.serving.client import ServingClient

        with ServingClient(host, int(port)) as client:
            text = client.metrics_text()
        obs.parse_prometheus(text)  # refuse to relay malformed exposition
        print(text, end="", flush=True)
        return 0
    # Import every instrumented layer so its registrations land in the
    # registry; a fresh CLI process then prints the complete catalogue
    # of HELP/TYPE lines even before any samples exist.
    import repro.diffusion.welfare  # noqa: F401
    import repro.parallel.pool  # noqa: F401
    import repro.rrset.prima  # noqa: F401
    import repro.serving.app  # noqa: F401
    import repro.store.builder  # noqa: F401

    print(obs.render_prometheus(), end="", flush=True)
    return 0


def _graph_source_kind(path: str) -> str:
    """How ``--graph`` error messages name the source format."""
    from repro.graph.bigcsr import is_graph_file

    return ".graph CSR file" if is_graph_file(path) else "edge list"


def _load_graph_source(path: str):
    """Load a ``--graph`` argument: mmap'd ``.graph`` file or edge list."""
    from repro.graph.bigcsr import GraphFileError, is_graph_file, load_graph
    from repro.graph.io import read_edge_list

    if is_graph_file(path):
        try:
            return load_graph(path)
        except GraphFileError as exc:
            raise SystemExit(f"cannot load .graph CSR file: {exc}")
    graph, _ = read_edge_list(path)
    return graph


def _graph_source_fingerprint(path: str) -> str:
    """Fingerprint of a ``--graph`` source; O(1) for ``.graph`` files."""
    from repro.graph.bigcsr import (
        GraphFileError,
        graph_file_fingerprint,
        is_graph_file,
    )
    from repro.graph.io import graph_fingerprint

    if is_graph_file(path):
        try:
            return graph_file_fingerprint(path)
        except GraphFileError as exc:
            raise SystemExit(f"cannot load .graph CSR file: {exc}")
    return graph_fingerprint(_load_graph_source(path))


def _run_graph(args: argparse.Namespace) -> int:
    """``repro graph ingest|info`` — the web-scale .graph file path."""
    from repro.graph.bigcsr import (
        GraphFileError,
        GraphIngestError,
        ingest_edge_list,
        read_graph_header,
    )

    if args.graph_command == "ingest":
        try:
            stats = ingest_edge_list(
                args.edges, args.out, num_nodes=args.num_nodes
            )
        except GraphIngestError as exc:
            raise SystemExit(f"ingest failed: {exc}")
        print(
            f"ingested {args.out}: n={stats.num_nodes} "
            f"m={stats.num_edges} records={stats.records} "
            f"self_loops={stats.self_loops} duplicates={stats.duplicates} "
            f"weighted={stats.weighted}"
        )
        return 0

    if args.graph_command == "info":
        try:
            header = read_graph_header(args.path)
        except GraphFileError as exc:
            raise SystemExit(str(exc))
        meta = header["meta"]
        print(f"format_version={header['format_version']}")
        print(f"num_nodes={meta.get('num_nodes')}")
        print(f"num_edges={meta.get('num_edges')}")
        print(f"fingerprint={meta.get('fingerprint')}")
        ingest = meta.get("ingest")
        if ingest:
            print(
                "ingest: "
                + " ".join(f"{k}={v}" for k, v in sorted(ingest.items()))
            )
        return 0

    raise AssertionError(
        f"unhandled graph command {args.graph_command}"
    )  # pragma: no cover


def _run_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — the async oracle serving layer (repro.serving)."""
    from repro.serving import ServingApp, StoreRouter

    router = StoreRouter(max_open=args.lru_size, mmap=not args.no_mmap)
    keys = []
    for root in args.store_root:
        keys.extend(router.add_root(root))
    if not keys:
        raise SystemExit(
            "no *.sketch stores found under "
            + ", ".join(args.store_root)
            + " — build one with 'repro oracle build'"
        )
    if args.graph is not None:
        expected = _graph_source_fingerprint(args.graph)
        for key in sorted(keys):
            with router.lease(key) as handle:
                actual = handle.fingerprint
            if actual != expected:
                raise SystemExit(
                    f"store {key!r} was not built from the "
                    f"{_graph_source_kind(args.graph)} {args.graph} "
                    f"(store fingerprint {actual[:16]}…, graph "
                    f"{expected[:16]}…) — rebuild the store or drop "
                    "--graph"
                )
    app = ServingApp(
        router,
        host=args.host,
        port=args.port,
        window=args.coalesce_window / 1000.0,
        max_batch=args.max_batch,
        coalesce=args.coalesce_window > 0,
    )

    def ready(host: str, port: int) -> None:
        print(f"serving {len(keys)} stores on {host}:{port}", flush=True)
        print("keys: " + " ".join(sorted(keys)), flush=True)

    summary = app.run(ready=ready, install_signal_handlers=True)
    print(
        "clean shutdown: stores={stores} leaked={leaked} "
        "requests={requests} swaps={swaps} evictions={evictions}".format(
            **summary
        ),
        flush=True,
    )
    return 0 if summary["leaked"] == 0 else 1


def _run_oracle(args: argparse.Namespace) -> int:
    """``repro oracle build|extend|query`` — the repro.store serving layer."""
    from repro.engine import EngineContext
    from repro.store import (
        OracleService,
        SketchStore,
        StaleStoreError,
        build_comic_store,
        build_sharded,
        build_store,
        extend_store,
    )

    graph = _load_graph_source(args.graph)

    if args.oracle_command == "build":
        # One context names the whole build: backend resolved once
        # (explicit flag > $REPRO_RR_BACKEND > batched), seed-rooted
        # lineage for sharded child streams.
        ctx = EngineContext.create(backend=args.rr_backend, seed=args.seed)
        # One resolved default shared by both prima build branches (the
        # builders' own signature default, spelled once).
        rr_sets = args.rr_sets if args.rr_sets is not None else 10_000
        if args.model == "comic":
            if args.shards > 1:
                raise SystemExit(
                    "comic stores build single-stream; drop --shards"
                )
            if args.rr_sets is not None:
                raise SystemExit(
                    "comic stores persist the GAP θ phase itself; "
                    "--rr-sets does not apply, drop it"
                )
            if args.triggering is not None:
                raise SystemExit(
                    "comic stores sample under the Com-IC GAP model; "
                    "--triggering does not apply, drop it"
                )
            from repro.diffusion.comic import ComICModel

            store = build_comic_store(
                graph,
                ComICModel(*args.gap),
                args.max_budget,
                select_item=args.select_item,
                fixed_budget=args.fixed_budget,
                epsilon=args.epsilon,
                ell=args.ell,
                num_forward_worlds=args.forward_worlds,
                extra_forward_pass=args.comic_variant == "rr-cim",
                ctx=ctx,
            )
        elif args.shards > 1:
            store = build_sharded(
                graph,
                args.max_budget,
                num_shards=args.shards,
                processes=args.processes,
                epsilon=args.epsilon,
                ell=args.ell,
                estimation_rr_sets=rr_sets,
                triggering=args.triggering,
                ctx=ctx,
            )
        else:
            store = build_store(
                graph,
                args.max_budget,
                epsilon=args.epsilon,
                ell=args.ell,
                estimation_rr_sets=rr_sets,
                triggering=args.triggering,
                ctx=ctx,
            )
        store.save(args.store)
        print(
            f"built {args.store}: model={store.model} n={store.num_nodes} "
            f"max_budget={store.max_budget} rr_sets={store.num_sets} "
            f"total_width={store.total_width} "
            f"fingerprint={store.fingerprint[:16]}"
        )
        return 0

    if args.oracle_command == "extend":
        store = SketchStore.load(args.store, mmap=False)
        # No context here: an extension's execution state is the
        # persisted one; --rr-backend is the explicit override knob.
        try:
            extended = extend_store(
                store, graph, args.add, backend=args.rr_backend
            )
        except StaleStoreError as exc:
            raise SystemExit(
                f"store {args.store} was not built from the "
                f"{_graph_source_kind(args.graph)} {args.graph}: {exc}"
            )
        extended.save(args.store)
        print(
            f"extended {args.store}: rr_sets {store.num_sets} -> "
            f"{extended.num_sets}"
        )
        return 0

    if args.oracle_command == "query":
        try:
            service = OracleService.open(
                args.store, graph, mmap=not args.no_mmap
            )
        except StaleStoreError as exc:
            raise SystemExit(
                f"store {args.store} was not built from the "
                f"{_graph_source_kind(args.graph)} {args.graph}: {exc}"
            )
        for budget in args.budgets:
            seeds = service.seeds(int(budget))
            print(f"seeds[{budget}] = {' '.join(str(s) for s in seeds)}")
            if args.spread:
                print(f"spread[{budget}] = {service.estimate_spread(seeds):.3f}")
        if args.allocate is not None:
            if service.model != "prima":
                raise SystemExit(
                    "bundleGRD allocation needs a PRIMA store; this is a "
                    f"{service.model!r} store (seed/spread queries only)"
                )
            result = service.allocate(args.allocate)
            for item, budget in enumerate(args.allocate):
                nodes = sorted(result.allocation.seeds_of_item(item))
                print(
                    f"item[{item}] (budget {budget}) = "
                    f"{' '.join(str(v) for v in nodes)}"
                )
        return 0

    raise AssertionError(
        f"unhandled oracle command {args.oracle_command}"
    )  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
