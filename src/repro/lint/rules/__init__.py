"""Rule modules; importing this package registers every rule.

Each module defines one rule class decorated with
:func:`repro.lint.engine.rule`, which adds it to the global ``RULES``
registry as an import side effect.  Adding a rule = adding a module here
(plus fixtures under ``tests/lint_fixtures/`` — see CONTRIBUTING.md).
"""

from repro.lint.rules import (  # noqa: F401
    bench_gates,
    ctx_threading,
    determinism,
    no_sleep,
    obs_discipline,
    shm_safety,
    store_format,
    test_hygiene,
)
