"""RL002 — ctx-threading: execution state flows through EngineContext.

The EngineContext migration (DESIGN.md §5) made ``ctx=`` the one spelling
of backend/seed/triggering state.  This rule keeps it that way:

* **params** — functions under ``rrset/``, ``diffusion/``, ``baselines/``
  and ``store/`` may not (re)introduce working ``backend=`` / ``seed=``
  keywords.  A parameter with those names is allowed only as a *tombstone*
  or engine hand-off: every read of it must be an ``is None`` presence
  guard or an argument to the engine's own entry points
  (``ensure_context``, ``reject_legacy_kwarg``, ``_builder_context``,
  ``EngineContext.create``, ``is_batched``, ``SeedSequence``).
* **resolution** — no call to ``resolve_backend`` and no read/write of
  ``os.environ["REPRO_RR_BACKEND"]`` outside ``repro.engine``: backend
  resolution happens exactly once, at context construction.
* **capability checks** — raw ``backend != "sequential"`` string
  comparisons must go through ``EngineContext.is_batched`` (or the
  module-level ``repro.engine.is_batched`` for bare backend names).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint._ast_utils import (
    arg_nodes,
    call_name,
    is_none_check,
    walk_functions,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintFile, Rule, rule

_CTX_DIRS = (
    "src/repro/rrset/",
    "src/repro/diffusion/",
    "src/repro/baselines/",
    "src/repro/store/",
)

#: Callees a backend=/seed= parameter may legitimately flow into: the
#: engine's context constructors and capability helpers.
_ALLOWED_SINKS = {
    "ensure_context",
    "reject_legacy_kwarg",
    "_builder_context",
    "create",  # EngineContext.create
    "is_batched",
    "SeedSequence",  # np.random.SeedSequence lineage roots
}

_BACKEND_ENV_NAME = "REPRO_RR_BACKEND"


def _in_engine(rel_path: str) -> bool:
    return rel_path.startswith("src/repro/engine/")


@rule
class CtxThreadingRule(Rule):
    rule_id = "RL002"
    title = "backend/seed state must thread through EngineContext"

    def scope(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/") and not _in_engine(rel_path)

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        in_ctx_dirs = file.rel_path.startswith(_CTX_DIRS)
        if in_ctx_dirs:
            yield from self._check_params(file)
            yield from self._check_sequential_compares(file)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                name = call_name(node) or ""
                if name.rsplit(".", maxsplit=1)[-1] == "resolve_backend":
                    yield file.diagnostic(
                        self.rule_id,
                        node,
                        "resolve_backend() outside repro.engine re-reads "
                        "$REPRO_RR_BACKEND after context construction; "
                        "build an EngineContext and use ctx.backend",
                    )
            yield from self._check_environ(file, node)

    # ------------------------------------------------------------------
    # (a) backend=/seed= parameters
    # ------------------------------------------------------------------
    def _check_params(self, file: LintFile) -> Iterable[Diagnostic]:
        for func in walk_functions(file.tree):
            args = func.args
            params = args.posonlyargs + args.args + args.kwonlyargs
            for param in params:
                if param.arg not in ("backend", "seed"):
                    continue
                bad = self._disallowed_loads(file, func, param.arg)
                if bad is None:
                    yield file.diagnostic(
                        self.rule_id,
                        param,
                        f"{func.name}() accepts {param.arg}= but never "
                        "routes it through the engine — a silently "
                        "ignored execution-state kwarg",
                    )
                elif bad:
                    yield file.diagnostic(
                        self.rule_id,
                        param,
                        f"{func.name}() reintroduces a working "
                        f"{param.arg}= kwarg (read at line "
                        f"{bad[0].lineno}); execution state must arrive "
                        "as ctx= and resolve via EngineContext",
                    )

    def _disallowed_loads(
        self, file: LintFile, func: ast.AST, name: str
    ) -> "List[ast.Name] | None":
        """Loads of ``name`` in ``func`` that bypass the engine.

        Returns ``None`` when the parameter is never read at all (its own
        kind of violation), else the list of offending Name loads.
        """
        loads = [
            node
            for node in ast.walk(func)
            if isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ]
        if not loads:
            return None
        # ``backend = ctx.backend`` rebinds the name to the *resolved*
        # value; loads after that line read the context, not the kwarg.
        rebind_line = None
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == name
            ):
                rebind_line = node.lineno
                break
        offending: List[ast.Name] = []
        for load in loads:
            if rebind_line is not None and load.lineno > rebind_line:
                continue
            if not self._load_allowed(file, load, name):
                offending.append(load)
        return offending

    def _load_allowed(self, file: LintFile, load: ast.Name, name: str) -> bool:
        for ancestor in file.ancestors(load):
            if isinstance(ancestor, ast.Compare) and is_none_check(ancestor, name):
                return True
            if isinstance(ancestor, ast.Call):
                callee = (call_name(ancestor) or "").rsplit(".", maxsplit=1)[-1]
                if callee in _ALLOWED_SINKS and any(
                    load is arg or load in ast.walk(arg)
                    for arg in arg_nodes(ancestor)
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    # (c) $REPRO_RR_BACKEND access
    # ------------------------------------------------------------------
    def _check_environ(self, file: LintFile, node: ast.AST) -> Iterable[Diagnostic]:
        def is_backend_key(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Constant):
                return expr.value == _BACKEND_ENV_NAME
            return isinstance(expr, ast.Name) and expr.id == "BACKEND_ENV"

        if isinstance(node, ast.Subscript):
            target = call_name_like(node.value)
            if target in ("os.environ", "environ") and is_backend_key(node.slice):
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    "os.environ[$REPRO_RR_BACKEND] outside repro.engine; "
                    "the environment is read exactly once, at "
                    "EngineContext construction",
                )
        elif isinstance(node, ast.Call):
            name = call_name(node) or ""
            if name in (
                "os.environ.get",
                "environ.get",
                "os.environ.pop",
                "environ.pop",
                "os.environ.setdefault",
                "environ.setdefault",
                "os.getenv",
                "getenv",
            ) and any(is_backend_key(arg) for arg in node.args[:1]):
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    "os.environ access to $REPRO_RR_BACKEND outside "
                    "repro.engine; the environment is read exactly once, "
                    "at EngineContext construction",
                )

    # ------------------------------------------------------------------
    # (d) raw backend string comparisons
    # ------------------------------------------------------------------
    def _check_sequential_compares(self, file: LintFile) -> Iterable[Diagnostic]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(
                isinstance(op, ast.Constant) and op.value == "sequential"
                for op in operands
            ):
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    'raw backend == "sequential" comparison; use '
                    "ctx.is_batched / repro.engine.is_batched so "
                    "capability checks have one definition",
                )


def call_name_like(node: ast.AST) -> str:
    """Dotted rendering of a Name/Attribute chain ('' when neither)."""
    from repro.lint._ast_utils import dotted_name

    return dotted_name(node) or ""
