"""RL006 — benchmark gates go through ``_bench_utils.min_speedup``.

Every gated benchmark asserts a wall-clock ratio, and CI relaxes all of
those gates at once through ``$REPRO_BENCH_MIN_SPEEDUP`` (shared runners
make wall-clock noisy).  That only works if every bench reads its floor
through :func:`benchmarks._bench_utils.min_speedup` — a bench that
hard-codes ``assert speedup > 1.5`` or reads the environment variable
itself silently escapes the CI relaxation and flakes the tier-1 matrix.

Flagged in ``benchmarks/bench_*.py``:

* an ordering comparison between a wall-clock expression (identifier or
  row-key vocabulary: ``speedup``, ``qps``, ``throughput``) and a
  numeric literal or all-constant arithmetic — the gate must be a
  ``min_speedup(...)`` value bound to a name;
* any expression-position use of the literal ``"REPRO_BENCH_MIN_SPEEDUP"``
  (``os.environ[...]``, ``os.getenv(...)``) — the env knob has exactly
  one reader, :func:`min_speedup`.

Quality ratios (spread/welfare ablation bounds) are deliberately out of
vocabulary: they compare estimators, not clocks, and their bounds are
paper-derived constants.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintFile, Rule, rule

#: Identifier/row-key substrings that mark a value as wall-clock derived.
_WALLCLOCK_VOCAB = ("speedup", "qps", "throughput")

#: The shared gate knob; only ``_bench_utils.min_speedup`` may read it.
_GATE_ENV = "REPRO_BENCH_MIN_SPEEDUP"


def _is_constant_number(node: ast.AST) -> bool:
    """A numeric literal, possibly signed or built by constant arithmetic."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, ast.UnaryOp):
        return _is_constant_number(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_constant_number(node.left) and _is_constant_number(node.right)
    return False


def _mentions_wallclock(node: ast.AST) -> bool:
    """Does the expression carry wall-clock vocabulary anywhere?

    Checks identifiers (``speedup``), attributes (``stats.qps``) and
    string keys (``row["warm_speedup"]``) alike.
    """
    for sub in ast.walk(node):
        text = None
        if isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            text = sub.value
        if text is not None:
            lowered = text.lower()
            if any(word in lowered for word in _WALLCLOCK_VOCAB):
                return True
    return False


@rule
class BenchGateRule(Rule):
    rule_id = "RL006"
    title = "bench wall-clock gates must come from _bench_utils.min_speedup"

    def scope(self, rel_path: str) -> bool:
        return rel_path.startswith("benchmarks/bench_") and rel_path.endswith(
            ".py"
        )

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(file, node)
            elif (
                isinstance(node, ast.Constant)
                and node.value == _GATE_ENV
                and isinstance(
                    file.parent_of(node), (ast.Subscript, ast.Call)
                )
            ):
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    f"direct read of ${_GATE_ENV}; the env knob has one "
                    "reader — call _bench_utils.min_speedup(default) "
                    "instead",
                )

    def _check_compare(
        self, file: LintFile, node: ast.Compare
    ) -> Iterable[Diagnostic]:
        if not any(
            isinstance(op, (ast.Gt, ast.GtE, ast.Lt, ast.LtE))
            for op in node.ops
        ):
            return
        operands = [node.left] + list(node.comparators)
        if not any(_mentions_wallclock(operand) for operand in operands):
            return
        for operand in operands:
            if _is_constant_number(operand):
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    "wall-clock ratio gated against a hard-coded number; "
                    "bind the floor via _bench_utils.min_speedup(default) "
                    "so $REPRO_BENCH_MIN_SPEEDUP can relax it in CI",
                )
                return
