"""RL008 — observability discipline: clocks and stdout go through obs.

``src/repro`` has exactly one sanctioned wall-clock and exactly one
sanctioned stdout path, both in :mod:`repro.obs`: histograms time
themselves (``Histogram.timer``), spans time themselves, ad-hoc phase
timing is ``obs.stopwatch``, and human-facing lines go through
``obs.emit``.  A raw ``time.perf_counter()`` scattered in engine code is
timing the registry can't see; a raw ``print`` is output tests can't
redirect and servers can't suppress.  Flagged outside ``src/repro/obs/``
and the CLI front-ends (``*/cli.py``):

* calls to the :mod:`time` module's clocks — ``time.time``,
  ``time.monotonic``, ``time.perf_counter``, ``time.process_time`` and
  their ``_ns`` variants — whether attribute calls or names bound via
  ``from time import ...`` (aliases included);
* ``print(...)`` calls.

``time.sleep`` is *not* this rule's business (RL007 covers naps, and
only in tests); neither is reading clocks inside ``repro.obs`` itself,
which is the whole point of the choke point.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable

from repro.lint._ast_utils import call_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintFile, Rule, rule

_CLOCK_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}

_CLOCK_ADVICE = (
    "wall-clock reads in engine code bypass the metrics registry; time "
    "the block with a repro.obs histogram timer, a span, or obs.stopwatch"
)
_PRINT_ADVICE = (
    "raw print() in library code cannot be redirected or suppressed; "
    "report through obs.emit (or return the data to the caller)"
)


def _clock_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> clock function for ``from time import ...`` bindings."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_ATTRS:
                    aliases[alias.asname or alias.name] = alias.name
    return aliases


@rule
class ObsDisciplineRule(Rule):
    rule_id = "RL008"
    title = "clocks and stdout go through repro.obs (timers/span/emit)"

    def scope(self, rel_path: str) -> bool:
        if not rel_path.startswith("src/repro/"):
            return False
        if rel_path.startswith("src/repro/obs/"):
            return False
        return not rel_path.endswith("cli.py")

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        aliases = _clock_aliases(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in ("print", "builtins.print"):
                yield file.diagnostic(
                    self.rule_id, node, f"print() call; {_PRINT_ADVICE}"
                )
            elif name is not None and "." in name:
                module, _, leaf = name.rpartition(".")
                if module == "time" and leaf in _CLOCK_ATTRS:
                    yield file.diagnostic(
                        self.rule_id,
                        node,
                        f"time.{leaf}() read; {_CLOCK_ADVICE}",
                    )
            elif name in aliases:
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    f"{name}() (imported from time) read; {_CLOCK_ADVICE}",
                )
