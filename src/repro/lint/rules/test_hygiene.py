"""RL005 — test hygiene: no bare float equality on estimates.

Spread and welfare values in this repo are Monte-Carlo estimates: two
correct implementations agree in distribution, not to the last ulp, and
a bare ``==`` against a float literal passes or fails with the numpy
build.  Tests must pin them the way DESIGN.md prescribes — pinned-seed
z-equivalence (``pytest.approx`` with a derived tolerance) or the
golden-byte helpers that compare serialized stores.

The rule keys off the estimator vocabulary of the non-literal operand
(``spread``, ``welfare``, ``sigma``, ``estimate``, ``influence``) so
exact-value checks on deterministic accessors — table lookups, config
fields, prices — stay clean.  Flagged in ``tests/``:

* ``==`` / ``!=`` between an estimate expression and a numeric literal
  (exact boundary values ``0`` and ``1`` are legitimate: an empty seed
  set spreads exactly zero);
* the same against an all-constant arithmetic expression
  (``5 / 3``-style re-derivations, the same trap with extra steps).

Comparing one estimator run against another at identical seeds is *not*
flagged: byte-determinism of same-lineage runs is itself a pinned
contract here.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintFile, Rule, rule

#: Identifier substrings that mark a value as a Monte-Carlo estimate.
_ESTIMATE_VOCAB = ("spread", "welfare", "sigma", "estimate", "influence")

#: Exact boundary values estimates legitimately hit.
_EXACT_OK = (0, 1)


def _is_numeric_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_numeric_literal(node.operand)
    return False


def _literal_value(node: ast.AST) -> float:
    if isinstance(node, ast.UnaryOp):
        value = _literal_value(node.operand)
        return -value if isinstance(node.op, ast.USub) else value
    assert isinstance(node, ast.Constant)
    return node.value


def _is_constant_arithmetic(node: ast.AST) -> bool:
    """An expression built purely from numeric literals (``5 / 3``)."""
    if isinstance(node, ast.BinOp):
        return _is_constant_arithmetic(node.left) and _is_constant_arithmetic(
            node.right
        )
    if isinstance(node, ast.UnaryOp):
        return _is_constant_arithmetic(node.operand)
    return isinstance(node, ast.Constant) and isinstance(node.value, (int, float))


def _is_structural(node: ast.AST) -> bool:
    """Integer-valued structure checks (``len(spreads)``, ``x.shape[0]``)."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "len":
            return True
    if isinstance(node, ast.Subscript):
        return _is_structural(node.value)
    if isinstance(node, ast.Attribute) and node.attr in (
        "shape",
        "size",
        "ndim",
        "nbytes",
    ):
        return True
    return False


def _is_estimate_expr(node: ast.AST) -> bool:
    """Does the expression mention estimator vocabulary anywhere?"""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if any(word in lowered for word in _ESTIMATE_VOCAB):
                return True
    return False


@rule
class TestHygieneRule(Rule):
    rule_id = "RL005"
    title = "no bare float == on spread/welfare estimates in tests"

    def scope(self, rel_path: str) -> bool:
        return rel_path.startswith("tests/")

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if not any(
                _is_estimate_expr(op) and not _is_structural(op)
                for op in operands
            ):
                continue
            for operand in operands:
                if _is_numeric_literal(operand):
                    if _literal_value(operand) in _EXACT_OK:
                        continue
                    yield file.diagnostic(
                        self.rule_id,
                        node,
                        f"bare equality between an estimate and "
                        f"{_literal_value(operand)!r}; estimates are "
                        "Monte-Carlo values — use pytest.approx with a "
                        "pinned-seed tolerance or the golden-byte "
                        "helpers",
                    )
                    break
                if (
                    isinstance(operand, ast.BinOp)
                    and _is_constant_arithmetic(operand)
                ):
                    yield file.diagnostic(
                        self.rule_id,
                        node,
                        "equality between an estimate and a constant "
                        "expression; re-deriving the expected value "
                        "inline is the same ulp trap — use pytest.approx "
                        "or the golden-byte helpers",
                    )
                    break
