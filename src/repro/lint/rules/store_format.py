"""RL004 — store-format discipline: one definition of the on-disk layout.

The sketch-store format (magic, version, dtypes, 64-byte block
alignment) is defined once, in :mod:`repro.store.format`.  Re-spelling
any of those as an inline literal elsewhere under ``src/repro/store/``
is how reader and writer drift apart — the writer pads to one alignment,
the reader asserts another, and the mismatch only surfaces on a store
written by an older build.  Flagged outside ``format.py``:

* string dtype literals — ``dtype="<u8"``, ``.astype("int64")``,
  ``np.dtype("bool")`` — instead of ``INDEX_DTYPE`` / ``WORLDS_DTYPE`` /
  ``HEADER_LEN_DTYPE``;
* the format's own numpy dtypes (``np.int64``, ``np.bool_``) spelled
  directly in a ``dtype=`` keyword;
* bytes literals of magic length (≥4) — a re-spelled ``MAGIC``;
* the integer ``64`` in alignment arithmetic (``% 64``, ``// 64`` …)
  instead of ``ALIGN`` / ``align_up``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint._ast_utils import call_name, dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintFile, Rule, rule

_FORMAT_HOME = "src/repro/store/format.py"

#: The format's dtypes by their raw numpy spellings.
_FORMAT_NP_DTYPES = {
    "np.int64",
    "np.bool_",
    "numpy.int64",
    "numpy.bool_",
}


@rule
class StoreFormatRule(Rule):
    rule_id = "RL004"
    title = "store layout literals must come from repro.store.format"

    def scope(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/store/") and rel_path != _FORMAT_HOME

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(file, node)
            elif isinstance(node, ast.Constant):
                yield from self._check_constant(file, node)

    def _check_call(self, file: LintFile, node: ast.Call) -> Iterable[Diagnostic]:
        name = call_name(node) or ""
        leaf = name.rsplit(".", maxsplit=1)[-1]
        for kw in node.keywords:
            if kw.arg != "dtype":
                continue
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, (str, bool)
            ):
                yield file.diagnostic(
                    self.rule_id,
                    kw.value,
                    f"inline dtype literal {kw.value.value!r}; use the "
                    "named constant from repro.store.format so reader "
                    "and writer cannot drift",
                )
            elif (dotted_name(kw.value) or "") in _FORMAT_NP_DTYPES:
                yield file.diagnostic(
                    self.rule_id,
                    kw.value,
                    f"format dtype {dotted_name(kw.value)} spelled "
                    "inline; use INDEX_DTYPE / WORLDS_DTYPE from "
                    "repro.store.format",
                )
        if leaf == "astype" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                yield file.diagnostic(
                    self.rule_id,
                    arg,
                    f".astype({arg.value!r}) re-spells a format dtype; "
                    "use the named constant from repro.store.format",
                )
        if name in ("np.dtype", "numpy.dtype") and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant):
                yield file.diagnostic(
                    self.rule_id,
                    arg,
                    "np.dtype(literal) re-spells a format dtype; use "
                    "the named constant from repro.store.format",
                )

    def _check_constant(
        self, file: LintFile, node: ast.Constant
    ) -> Iterable[Diagnostic]:
        if isinstance(node.value, bytes) and len(node.value) >= 4:
            yield file.diagnostic(
                self.rule_id,
                node,
                f"bytes literal {node.value!r} looks like a re-spelled "
                "magic; compare against repro.store.format.MAGIC",
            )
        elif node.value == 64 and isinstance(node.value, int):
            parent = file.parent_of(node)
            if isinstance(parent, ast.BinOp) and isinstance(
                parent.op, (ast.Mod, ast.FloorDiv, ast.Add, ast.Sub)
            ):
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    "alignment arithmetic with a bare 64; use "
                    "repro.store.format.ALIGN / align_up so padding has "
                    "one definition",
                )
