"""RL003 — shm-safety: shared-memory attachments are read-only views.

Worker tasks (``repro.parallel.tasks``) receive the graph and trigger
CSR as zero-copy views over shared-memory segments owned by the parent
(``InfluenceGraph.from_csr`` attachments).  Writing through such a view
corrupts every sibling worker's input mid-flight — silently, since the
segment has no write barrier.  Flagged inside ``parallel/tasks.py``:

* subscript / in-place / mutating-method writes on names tainted by the
  task convention's shared parameters (``graph``, ``trigger_csr``) or by
  an ``InfluenceGraph.from_csr(...)`` result — unless the value was
  laundered through ``.copy()`` first;
* ``out=`` aliasing a tainted array in a numpy call, and ``np.copyto``
  with a tainted destination.

Everywhere else under ``src/repro``: raw ``multiprocessing.shared_memory``
usage outside ``parallel/shm.py`` — segment lifecycle (create, attach,
unlink, resource-tracker workarounds) has exactly one home.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint._ast_utils import call_name, root_name, walk_functions
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintFile, Rule, rule

_TASKS_FILE = "src/repro/parallel/tasks.py"
_SHM_HOME = "src/repro/parallel/shm.py"

#: Parameter names that carry shared-memory views under the task
#: convention ``task(graph, trigger_csr, seed_seq, count, *rest)``.
_SHARED_PARAMS = {"graph", "trigger_csr"}

#: ndarray methods that mutate in place.
_MUTATING_METHODS = {
    "fill",
    "sort",
    "partition",
    "put",
    "resize",
    "setfield",
    "itemset",
    "byteswap",
}


@rule
class ShmSafetyRule(Rule):
    rule_id = "RL003"
    title = "shared-memory attachments must not be written through"

    def scope(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/") and rel_path != _SHM_HOME

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        yield from self._check_shm_imports(file)
        if file.rel_path == _TASKS_FILE:
            for func in walk_functions(file.tree):
                yield from self._check_function_writes(file, func)

    # ------------------------------------------------------------------
    # multiprocessing.shared_memory containment
    # ------------------------------------------------------------------
    def _check_shm_imports(self, file: LintFile) -> Iterable[Diagnostic]:
        message = (
            "multiprocessing.shared_memory outside repro.parallel.shm; "
            "segment lifecycle (attach/close/unlink) lives there so "
            "leak handling has one audit point"
        )
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name.startswith("multiprocessing.shared_memory")
                    for alias in node.names
                ):
                    yield file.diagnostic(self.rule_id, node, message)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.startswith("multiprocessing.shared_memory"):
                    yield file.diagnostic(self.rule_id, node, message)
                elif module == "multiprocessing" and any(
                    alias.name == "shared_memory" for alias in node.names
                ):
                    yield file.diagnostic(self.rule_id, node, message)
            elif isinstance(node, ast.Attribute):
                if node.attr == "shared_memory" and root_name(node) in (
                    "multiprocessing",
                    "mp",
                ):
                    yield file.diagnostic(self.rule_id, node, message)

    # ------------------------------------------------------------------
    # write analysis over one task function
    # ------------------------------------------------------------------
    def _tainted_names(self, func: ast.AST) -> Set[str]:
        args = func.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        tainted = {p.arg for p in params if p.arg in _SHARED_PARAMS}
        # One propagation sweep per extra assignment is enough for the
        # straight-line task bodies this rule patrols.
        changed = True
        while changed:
            changed = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                if self._is_tainted_expr(node.value, tainted):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id not in tainted:
                            tainted.add(target.id)
                            changed = True
        return tainted

    def _is_tainted_expr(self, expr: ast.AST, tainted: Set[str]) -> bool:
        """Does ``expr`` alias shared memory (copies launder the taint)?"""
        if isinstance(expr, ast.Call):
            name = call_name(expr) or ""
            leaf = name.rsplit(".", maxsplit=1)[-1]
            if leaf in ("copy", "array", "ascontiguousarray", "tolist"):
                return False
            if leaf == "from_csr":
                return True
            return False
        root = root_name(expr)
        return root is not None and root in tainted

    def _check_function_writes(
        self, file: LintFile, func: ast.AST
    ) -> Iterable[Diagnostic]:
        tainted = self._tainted_names(func)
        if not tainted:
            return
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    # Writing *through* the view (x[i] = / x.attr = ...)
                    # is the hazard; rebinding a local name is not.
                    if isinstance(
                        target, (ast.Subscript, ast.Attribute)
                    ) and root_name(target) in tainted:
                        yield file.diagnostic(
                            self.rule_id,
                            target,
                            f"write through shared view "
                            f"'{root_name(target)}' mutates the parent's "
                            "segment under every sibling worker; operate "
                            "on a .copy()",
                        )
            elif isinstance(node, ast.AugAssign):
                if root_name(node.target) in tainted:
                    yield file.diagnostic(
                        self.rule_id,
                        node,
                        f"in-place update of shared view "
                        f"'{root_name(node.target)}' mutates the "
                        "parent's segment under every sibling worker; "
                        "operate on a .copy()",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call_writes(file, node, tainted)

    def _check_call_writes(
        self, file: LintFile, node: ast.Call, tainted: Set[str]
    ) -> Iterable[Diagnostic]:
        name = call_name(node) or ""
        leaf = name.rsplit(".", maxsplit=1)[-1]
        if (
            isinstance(node.func, ast.Attribute)
            and leaf in _MUTATING_METHODS
            and root_name(node.func.value) in tainted
        ):
            yield file.diagnostic(
                self.rule_id,
                node,
                f".{leaf}() mutates shared view "
                f"'{root_name(node.func.value)}' in place; operate on a "
                ".copy()",
            )
            return
        if leaf == "copyto" and node.args:
            dest = node.args[0]
            if root_name(dest) in tainted:
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    "np.copyto into a shared view writes the parent's "
                    "segment; allocate a local destination",
                )
        for kw in node.keywords:
            if kw.arg == "out" and root_name(kw.value) in tainted:
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    f"out= aliases shared view '{root_name(kw.value)}'; "
                    "numpy will write the parent's segment in place",
                )
