"""RL001 — determinism: every RNG must descend from an engine lineage.

Engine code (everything under ``src/repro``) may not mint randomness out
of thin air: byte-reproducibility of the whole stack rests on every
stream descending from an ``EngineContext`` ``SeedSequence`` lineage or
an explicit ``rng=`` / integer-seed parameter.  Flagged:

* ``np.random.default_rng()`` with no argument — an OS-entropy stream no
  seed can ever reproduce;
* any use of the legacy ``np.random.RandomState`` API or global
  ``np.random.seed`` state;
* importing the stdlib ``random`` module (process-global Mersenne
  state, invisible to the engine's lineage);
* wall-clock (``time.time`` and friends) used to construct RNG state.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint._ast_utils import call_name, dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintFile, Rule, rule

_RNG_CONSTRUCTORS = {"default_rng", "RandomState", "SeedSequence", "seed"}
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}


@rule
class DeterminismRule(Rule):
    rule_id = "RL001"
    title = "RNG streams must descend from an EngineContext lineage"

    def scope(self, rel_path: str) -> bool:
        return rel_path.startswith("src/repro/")

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield file.diagnostic(
                            self.rule_id,
                            node,
                            "stdlib 'random' is process-global state "
                            "outside the engine's SeedSequence lineage; "
                            "use EngineContext.spawn_generators or an "
                            "explicit rng= parameter",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield file.diagnostic(
                        self.rule_id,
                        node,
                        "stdlib 'random' is process-global state outside "
                        "the engine's SeedSequence lineage; use "
                        "EngineContext.spawn_generators or an explicit "
                        "rng= parameter",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(file, node)
            elif isinstance(node, ast.Attribute):
                # RandomState referenced without being called (aliased,
                # passed around) is the same legacy API by another route.
                if node.attr == "RandomState" and not isinstance(
                    file.parent_of(node), ast.Call
                ):
                    yield file.diagnostic(
                        self.rule_id,
                        node,
                        "np.random.RandomState is the legacy global-era "
                        "API; use np.random.default_rng with an explicit "
                        "seed or lineage",
                    )

    def _check_call(self, file: LintFile, node: ast.Call) -> Iterable[Diagnostic]:
        name = call_name(node)
        if name is None:
            return
        leaf = name.rsplit(".", maxsplit=1)[-1]
        if leaf == "default_rng" and not node.args and not node.keywords:
            yield file.diagnostic(
                self.rule_id,
                node,
                "unseeded np.random.default_rng() draws OS entropy no "
                "seed can reproduce; thread a ctx=/rng= stream or an "
                "explicit seed",
            )
        elif leaf == "RandomState":
            yield file.diagnostic(
                self.rule_id,
                node,
                "np.random.RandomState is the legacy global-era API; use "
                "np.random.default_rng with an explicit seed or lineage",
            )
        elif name in ("np.random.seed", "numpy.random.seed"):
            yield file.diagnostic(
                self.rule_id,
                node,
                "np.random.seed mutates the process-global legacy "
                "stream; engine code must pass Generators explicitly",
            )
        if leaf in _RNG_CONSTRUCTORS:
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and (dotted_name(inner.func) or "") in _CLOCK_CALLS
                ):
                    yield file.diagnostic(
                        self.rule_id,
                        inner,
                        f"wall-clock {dotted_name(inner.func)}() seeding "
                        "an RNG makes the run irreproducible by "
                        "construction; derive the seed from the "
                        "EngineContext lineage",
                    )
