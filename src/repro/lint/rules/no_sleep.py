"""RL007 — no ``time.sleep`` in ``tests/``: poll events, don't nap.

A ``time.sleep`` in a test is a race with a timer: too short and the
test flakes on a loaded CI runner, too long and the suite pays the wait
on every run forever.  Every "wait for X" in this repo has a
deterministic handle — ``threading.Event.wait`` with a timeout, the
serving app's ``wait_started``, subprocess ``communicate``, or a
bounded poll loop on an observable condition — all of which return the
moment the condition holds.

Flagged in ``tests/``: calls to ``time.sleep(...)`` and to a bare
``sleep(...)`` imported from :mod:`time` (aliases included).
``asyncio.sleep`` inside an event loop is *not* flagged: awaiting it
yields to the loop instead of blocking the process, and a zero-delay
``await asyncio.sleep(0)`` is the idiomatic "let the loop run once".
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintFile, Rule, rule

_ADVICE = (
    "blocking sleep in a test races the scheduler; wait on an Event, "
    "poll the observable condition with a deadline, or use the "
    "component's own readiness hook"
)


def _time_sleep_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to ``time.sleep`` via ``from time import ...``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    aliases.add(alias.asname or alias.name)
    return aliases


@rule
class NoSleepRule(Rule):
    rule_id = "RL007"
    title = "no time.sleep in tests/ — wait on events or poll with deadline"

    def scope(self, rel_path: str) -> bool:
        return rel_path.startswith("tests/")

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        aliases = _time_sleep_aliases(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield file.diagnostic(
                    self.rule_id, node, f"time.sleep in a test; {_ADVICE}"
                )
            elif isinstance(func, ast.Name) and func.id in aliases:
                yield file.diagnostic(
                    self.rule_id,
                    node,
                    f"sleep (imported from time) in a test; {_ADVICE}",
                )
