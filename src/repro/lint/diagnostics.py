"""Diagnostics and suppression comments of the invariant checker.

A diagnostic is one ``path:line:col: RLxxx message`` finding.  Suppressions
are source comments of the form::

    x = legacy_call()  # repro-lint: disable=RL002 documented legacy knob

naming one or more rule ids and a *mandatory* human reason.  A suppression
applies to findings on its own line; a comment standing alone on a line
applies to the next line instead (for findings inside multi-line
statements, put the trailing comment on the exact line the diagnostic
anchors to).  A reason-less suppression is itself a finding (RL000) — an
unexplained opt-out is convention drift by another name, exactly what the
checker exists to stop.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["Diagnostic", "SuppressionTable", "parse_suppressions"]

#: ``# repro-lint: disable=RL001[,RL002...] <reason>``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
    r"[ \t]*(.*)$"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, which rule, and what the contract violation is."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class SuppressionTable:
    """Per-line rule-id suppressions parsed from one file's comments."""

    #: line number -> set of suppressed rule ids on that line
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: (line, col, rule-id list) of suppressions written without a reason
    reasonless: List[Tuple[int, int, str]] = field(default_factory=list)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        return rule_id in self.by_line.get(line, ())


def parse_suppressions(source: str) -> SuppressionTable:
    """Scan a file's lines for ``repro-lint: disable`` comments.

    Pure line-regex parsing (no tokenizer): a suppression inside a string
    literal would be honored too, which is acceptable — the comment
    grammar is distinctive enough that the false-positive risk is nil,
    and the lint fixtures pin the behaviours that matter.
    """
    table = SuppressionTable()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",")}
        reason = match.group(2).strip()
        # A comment alone on its line shields the *next* line; a trailing
        # comment shields its own.
        stripped = text[: match.start()].strip()
        target = lineno if stripped else lineno + 1
        table.by_line.setdefault(target, set()).update(ids)
        if not reason:
            table.reasonless.append((lineno, match.start() + 1, match.group(1)))
    return table
