"""Rule engine of ``repro lint``: registry, file model, and the runner.

A rule is a class with a ``rule_id`` (``RLxxx``), a one-line ``title``, a
``scope(rel_path)`` predicate selecting the files it patrols, and a
``check(file)`` generator yielding :class:`Diagnostic` findings.  Rules
register themselves with the :func:`rule` decorator at import time
(:mod:`repro.lint.rules` imports every rule module), so ``RULES`` is the
single source of truth the CLI, the runner and ``--list-rules`` share.

The runner resolves every path *relative to a root directory* before
scoping — which is what lets the test fixtures mirror the repository
layout under ``tests/lint_fixtures/{bad,good}/`` and exercise
path-scoped rules (e.g. RL003's ``parallel/tasks.py`` write-safety) on
fixture files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Type

from repro.lint.diagnostics import (
    Diagnostic,
    SuppressionTable,
    parse_suppressions,
)

__all__ = [
    "DEFAULT_TARGETS",
    "EXCLUDED_DIR_NAMES",
    "LintFile",
    "RULES",
    "Rule",
    "iter_python_files",
    "lint_file",
    "rule",
    "run_lint",
]

#: Directories scanned when the CLI is invoked without explicit paths.
DEFAULT_TARGETS = ("src/repro", "tests", "benchmarks")

#: Directory names skipped everywhere (fixtures are deliberately bad code).
EXCLUDED_DIR_NAMES = {"__pycache__", "lint_fixtures", ".git"}


@dataclass
class LintFile:
    """One parsed file: source, AST (with parent links), and suppressions."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionTable

    _parents: Optional[Dict[ast.AST, ast.AST]] = None

    @classmethod
    def parse(cls, path: Path, rel_path: str) -> "LintFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            rel_path=rel_path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (links built lazily, once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[child] = outer
            self._parents = parents
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent_of(node)
        while current is not None:
            yield current
            current = self.parent_of(current)

    def diagnostic(self, rule_id: str, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """Base class: one invariant, one id, one path scope."""

    rule_id: str = "RL000"
    title: str = ""

    def scope(self, rel_path: str) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def check(self, file: LintFile) -> Iterable[Diagnostic]:
        raise NotImplementedError  # pragma: no cover - interface


#: rule id -> singleton rule instance (populated by the @rule decorator).
RULES: Dict[str, Rule] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Register a rule class; duplicate ids are a programming error."""
    instance = cls()
    if instance.rule_id in RULES:
        raise ValueError(f"duplicate lint rule id {instance.rule_id}")
    RULES[instance.rule_id] = instance
    return cls


def _ensure_rules_loaded() -> None:
    """Import the rule modules (registration is an import side effect)."""
    import repro.lint.rules  # noqa: F401


def iter_python_files(
    root: Path, targets: Iterable[str] = DEFAULT_TARGETS
) -> Iterator[Path]:
    """Yield ``*.py`` files under ``root``'s targets, excluded dirs pruned."""
    for target in targets:
        base = root / target
        if base.is_file() and base.suffix == ".py":
            yield base
            continue
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            parts = set(path.relative_to(root).parts[:-1])
            if parts & EXCLUDED_DIR_NAMES:
                continue
            yield path


def lint_file(
    path: Path,
    root: Path,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Diagnostic]:
    """Run every in-scope rule over one file; suppressions applied.

    Parse failures surface as an ``RL999`` diagnostic instead of an
    exception — a syntactically broken file must fail the lint job, not
    crash it.
    """
    _ensure_rules_loaded()
    rel_path = path.relative_to(root).as_posix()
    try:
        file = LintFile.parse(path, rel_path)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return [
            Diagnostic(
                path=rel_path,
                line=line,
                col=1,
                rule_id="RL999",
                message=f"file does not parse: {exc.__class__.__name__}: {exc}",
            )
        ]
    findings: List[Diagnostic] = []
    for candidate in rules if rules is not None else RULES.values():
        if not candidate.scope(rel_path):
            continue
        for diag in candidate.check(file):
            if file.suppressions.is_suppressed(diag.line, diag.rule_id):
                continue
            findings.append(diag)
    # Reason-less suppressions are findings themselves (RL000) and are
    # not suppressible: the reason *is* the point.
    for line, col, ids in file.suppressions.reasonless:
        findings.append(
            Diagnostic(
                path=rel_path,
                line=line,
                col=col,
                rule_id="RL000",
                message=(
                    f"suppression 'disable={ids}' has no reason; write "
                    "'# repro-lint: disable=RLxxx <why this is sound>'"
                ),
            )
        )
    return findings


def run_lint(
    root: Path,
    targets: Optional[Iterable[str]] = None,
    rules: Optional[Iterable[Rule]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Diagnostic]:
    """Lint every target under ``root``; returns sorted diagnostics."""
    _ensure_rules_loaded()
    root = Path(root).resolve()
    findings: List[Diagnostic] = []
    for path in iter_python_files(root, targets or DEFAULT_TARGETS):
        if progress is not None:
            progress(str(path))
        findings.extend(lint_file(path, root, rules))
    return sorted(findings)
