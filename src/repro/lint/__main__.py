"""``python -m repro.lint`` — same entry point as ``repro lint``."""

from repro.lint.cli import main

raise SystemExit(main())
