"""repro.lint — AST-based invariant checker for this repository.

Runnable as ``repro lint`` or ``python -m repro.lint``.  The checker
enforces the cross-cutting contracts the test suite cannot see from any
single call site: RNG-lineage determinism (RL001), EngineContext
threading (RL002), shared-memory write safety (RL003), on-disk format
discipline (RL004) and estimate-comparison hygiene in tests (RL005).
See DESIGN.md §7 for the invariants and CONTRIBUTING.md for how to add
a rule or write a suppression.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    SuppressionTable,
    parse_suppressions,
)
from repro.lint.engine import (
    DEFAULT_TARGETS,
    RULES,
    LintFile,
    Rule,
    iter_python_files,
    lint_file,
    rule,
    run_lint,
)

__all__ = [
    "DEFAULT_TARGETS",
    "Diagnostic",
    "LintFile",
    "RULES",
    "Rule",
    "SuppressionTable",
    "iter_python_files",
    "lint_file",
    "parse_suppressions",
    "rule",
    "run_lint",
]
