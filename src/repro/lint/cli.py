"""Command-line front end of the invariant checker.

Exit codes: 0 clean, 1 findings, 2 usage error — the same contract as
``ruff``, so CI treats the two jobs identically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import (
    DEFAULT_TARGETS,
    RULES,
    iter_python_files,
    run_lint,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant checker: determinism, ctx-threading, "
            "shm-safety, store-format and test-hygiene contracts."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help=(
            "files or directories to lint, relative to --root "
            f"(default: {' '.join(DEFAULT_TARGETS)})"
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root scopes are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--select",
        metavar="RLxxx[,RLxxx...]",
        help="run only the named rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line; print findings only",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    # Rule modules register on import; needed before --select/--list-rules.
    import repro.lint.rules  # noqa: F401

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].title}")
        return 0

    rules = None
    if args.select:
        selected = [part.strip() for part in args.select.split(",")]
        unknown = [rid for rid in selected if rid not in RULES]
        if unknown:
            print(
                f"repro lint: unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULES))})",
                file=sys.stderr,
            )
            return 2
        rules = [RULES[rid] for rid in selected]

    root = args.root.resolve()
    if not root.is_dir():
        print(f"repro lint: root {root} is not a directory", file=sys.stderr)
        return 2
    targets = tuple(args.targets) or DEFAULT_TARGETS
    for target in targets:
        if not (root / target).exists():
            print(
                f"repro lint: target {target!r} not found under {root}",
                file=sys.stderr,
            )
            return 2

    findings = run_lint(root, targets, rules)
    for diag in findings:
        print(diag.render())
    if not args.quiet:
        checked = sum(1 for _ in iter_python_files(root, targets))
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"repro lint: {len(findings)} {noun} in {checked} files",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
