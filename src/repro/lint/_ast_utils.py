"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

__all__ = [
    "arg_nodes",
    "call_name",
    "dotted_name",
    "is_none_check",
    "root_name",
    "walk_functions",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (``np.random.default_rng``)."""
    return dotted_name(node.func)


def root_name(node: ast.AST) -> Optional[str]:
    """Base identifier of a Name/Attribute/Subscript chain.

    ``graph.members[3:5]`` -> ``graph``; used for taint roots.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_none_check(compare: ast.Compare, name: str) -> bool:
    """``name is None`` / ``name is not None`` (either operand order)."""
    if len(compare.ops) != 1 or not isinstance(compare.ops[0], (ast.Is, ast.IsNot)):
        return False
    operands = [compare.left, compare.comparators[0]]
    has_name = any(isinstance(op, ast.Name) and op.id == name for op in operands)
    has_none = any(isinstance(op, ast.Constant) and op.value is None for op in operands)
    return has_name and has_none


def arg_nodes(call: ast.Call) -> Iterator[ast.AST]:
    """Every argument expression of a call (positional + keyword)."""
    yield from call.args
    for kw in call.keywords:
        yield kw.value


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """All function definitions (sync and async), at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
