"""Baseline algorithms of the paper's evaluation (§4.3.1.2).

* ``item_disj`` — one item per seed node, one big IMM call
  (:mod:`repro.baselines.item_disjoint`);
* ``bundle_disj`` — greedy bundles on disjoint seed sets, one IMM call per
  bundle (:mod:`repro.baselines.bundle_disjoint`);
* ``RR-SIM+`` / ``RR-CIM`` — the TIM-based two-item Com-IC algorithms of Lu
  et al. (:mod:`repro.baselines.rr_sim`, :mod:`repro.baselines.rr_cim`);
* ``BDHS-Step`` / ``BDHS-Concave`` — welfare maximization under
  friends-of-friends network externalities, in the restricted conversion the
  paper defines in §4.3.4.4 (:mod:`repro.baselines.bdhs`).
"""

from repro.baselines.bdhs import (
    bdhs_concave_welfare,
    bdhs_step_welfare,
    best_virtual_item,
)
from repro.baselines.bundle_disjoint import bundle_disjoint
from repro.baselines.item_disjoint import item_disjoint
from repro.baselines.marginal_greedy import marginal_greedy
from repro.baselines.rr_cim import rr_cim
from repro.baselines.rr_sim import rr_sim_plus

__all__ = [
    "bdhs_concave_welfare",
    "bdhs_step_welfare",
    "best_virtual_item",
    "bundle_disjoint",
    "item_disjoint",
    "marginal_greedy",
    "rr_cim",
    "rr_sim_plus",
]
