"""Shared machinery of the Com-IC baselines RR-SIM+ and RR-CIM.

Both algorithms reduce two-item Com-IC seed selection to max-coverage over
GAP-aware RR sets with TIM-scale sample sizes; they differ in how much
forward simulation they spend estimating the complementary boost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.diffusion.comic import ComICModel, simulate_comic
from repro.graph.digraph import InfluenceGraph
from repro.rrset.bounds import log_binomial
from repro.rrset.node_selection import greedy_max_coverage


@dataclass(frozen=True)
class ComICSeedSelection:
    """Selected seeds plus sampling statistics."""

    seeds: Tuple[int, ...]
    num_rr_sets: int
    coverage_fraction: float


def _forward_adopter_worlds(
    graph: InfluenceGraph,
    model: ComICModel,
    fixed_item: int,
    fixed_seeds: Sequence[int],
    num_worlds: int,
    rng: np.random.Generator,
) -> List[Set[int]]:
    """Adopter sets of the fixed item across sampled Com-IC worlds."""
    worlds: List[Set[int]] = []
    for _ in range(num_worlds):
        result = simulate_comic(
            graph,
            model,
            seeds_a=fixed_seeds if fixed_item == 0 else (),
            seeds_b=fixed_seeds if fixed_item == 1 else (),
            rng=rng,
        )
        worlds.append(result.adopters_of(fixed_item))
    return worlds


def _gap_rr_set(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    q_plain: float,
    q_boosted: float,
    boosted_nodes: Set[int],
) -> np.ndarray:
    """One GAP-aware RR set.

    Standard reverse BFS, but every node additionally passes a node-level
    adoption coin: probability ``q_boosted`` if the node adopts the
    complementary item in the paired forward world, ``q_plain`` otherwise.
    A failed coin removes the node (and stops traversal through it); a failed
    root yields an empty RR set, mirroring the "root must be willing to
    adopt" condition of the Com-IC RIS analysis.
    """
    n = graph.num_nodes
    root = int(rng.integers(0, n))
    q_root = q_boosted if root in boosted_nodes else q_plain
    if rng.random() >= q_root:
        return np.empty(0, dtype=np.int64)
    visited = {root}
    frontier = [root]
    while frontier:
        next_frontier: List[int] = []
        for v in frontier:
            sources = graph.in_neighbors(v)
            deg = sources.shape[0]
            if deg == 0:
                continue
            probs = graph.in_probabilities(v)
            coins = rng.random(deg)
            for u in sources[coins < probs]:
                u = int(u)
                if u in visited:
                    continue
                q_u = q_boosted if u in boosted_nodes else q_plain
                if rng.random() < q_u:
                    visited.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


def _tim_theta(
    n: int, k: int, epsilon: float, ell: float, kpt_guess: float
) -> int:
    """TIM's sample size ``θ = λ / KPT`` (the baselines are TIM-based)."""
    lam = (
        (8.0 + 2.0 * epsilon)
        * n
        * (ell * math.log(max(n, 2)) + log_binomial(n, k) + math.log(2.0))
        / (epsilon * epsilon)
    )
    return int(math.ceil(lam / max(kpt_guess, 1.0)))


def _estimate_kpt(
    graph: InfluenceGraph,
    k: int,
    ell: float,
    rng: np.random.Generator,
    q_plain: float,
    q_boosted: float,
    worlds: Sequence[Set[int]],
) -> Tuple[float, int]:
    """TIM-style KPT estimation on GAP-aware RR sets."""
    n = graph.num_nodes
    m = max(graph.num_edges, 1)
    log2n = max(math.log2(n), 2.0)
    used = 0
    for i in range(1, max(2, int(log2n))):
        c_i = int(
            math.ceil((6.0 * ell * math.log(n) + 6.0 * math.log(log2n)) * 2.0**i)
        )
        total = 0.0
        for j in range(c_i):
            boosted = worlds[(used + j) % len(worlds)] if worlds else set()
            rr = _gap_rr_set(graph, rng, q_plain, q_boosted, boosted)
            width = sum(graph.in_degree(int(v)) for v in rr)
            kappa = 1.0 - (1.0 - width / m) ** k
            total += kappa
        used += c_i
        if total / c_i > 1.0 / (2.0**i):
            return n * total / (2.0 * c_i), used
    return 1.0, used


def comic_rr_selection(
    graph: InfluenceGraph,
    model: ComICModel,
    select_item: int,
    fixed_seeds: Sequence[int],
    budget: int,
    epsilon: float,
    ell: float,
    rng: np.random.Generator,
    num_forward_worlds: int,
    extra_forward_pass: bool,
) -> ComICSeedSelection:
    """Select ``budget`` seeds for ``select_item`` given the other item's.

    ``extra_forward_pass`` doubles the forward-simulation effort (RR-CIM's
    generality tax: it re-estimates the boost after a first selection round).
    """
    if budget <= 0:
        return ComICSeedSelection(seeds=(), num_rr_sets=0, coverage_fraction=0.0)
    n = graph.num_nodes
    fixed_item = 1 - select_item
    q_plain = model.q(select_item, has_other=False)
    q_boosted = model.q(select_item, has_other=True)

    worlds = _forward_adopter_worlds(
        graph, model, fixed_item, fixed_seeds, num_forward_worlds, rng
    )
    kpt, kpt_sets = _estimate_kpt(
        graph, budget, ell, rng, q_plain, q_boosted, worlds
    )
    theta = _tim_theta(n, budget, epsilon, ell, kpt)

    if extra_forward_pass:
        worlds = worlds + _forward_adopter_worlds(
            graph, model, fixed_item, fixed_seeds, num_forward_worlds, rng
        )

    # Generate θ GAP-aware RR sets, pairing each with a forward world, and
    # accumulate them directly in flat CSR form (members + offsets).
    member_parts: List[np.ndarray] = []
    offsets = np.zeros(theta + 1, dtype=np.int64)
    for j in range(theta):
        boosted = worlds[j % len(worlds)] if worlds else set()
        rr = _gap_rr_set(graph, rng, q_plain, q_boosted, boosted)
        member_parts.append(rr)
        offsets[j + 1] = offsets[j] + rr.shape[0]
    members = (
        np.concatenate(member_parts)
        if member_parts
        else np.empty(0, dtype=np.int64)
    )

    # Vectorized greedy max coverage (shared NodeSelection machinery).
    seeds, covered_total = greedy_max_coverage(
        n, members, offsets, min(budget, n)
    )
    fraction = covered_total / theta if theta else 0.0
    return ComICSeedSelection(
        seeds=tuple(seeds),
        num_rr_sets=theta + kpt_sets,
        coverage_fraction=fraction,
    )
