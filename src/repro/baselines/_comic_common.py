"""Shared machinery of the Com-IC baselines RR-SIM+ and RR-CIM.

Both algorithms reduce two-item Com-IC seed selection to max-coverage over
GAP-aware RR sets with TIM-scale sample sizes; they differ in how much
forward simulation they spend estimating the complementary boost.

Sampling conventions (pinned by tests; see also
:class:`repro.rrset.batch.batch_generate_gap_rr_sets`):

* **Empty RR sets stay in the denominator.**  A GAP RR set is empty when
  its root fails the adoption coin; such sets can never be covered, and
  keeping them in ``θ`` makes ``n · F_R(S)`` an unbiased estimator of the
  expected adoption count (dropping them would estimate adoption
  *conditioned on a willing root*, inflating σ̂ by roughly ``1/E[q_root]``).
* **The forward-world cursor is monotone across phases.**  RR set ``j``
  (counted from the very first KPT sample) is paired with forward world
  ``j mod |worlds|``; the θ-generation phase continues from the KPT
  phase's offset rather than restarting at world 0, so every world is
  paired with the same expected number of RR sets and the KPT estimate and
  the θ collection draw from the same mixture distribution.  Since the
  engine refactor the cursor lives on the
  :class:`~repro.engine.EngineContext` (``ctx.cursor``), which is also how
  a persisted Com-IC sketch store resumes the pairing exactly where the
  saved θ phase stopped.

Both the ``sequential`` backend (per-set Python BFS, the historical
equivalence oracle) and the ``batched`` backend (flat ``(walk, node)``
frontier arrays with per-world boosted bitmaps) implement these
conventions; the backend is carried by the context (explicit argument >
``$REPRO_RR_BACKEND`` > batched).

:func:`comic_rr_sketch` exposes the full sampling state
(:class:`ComicSketchState`) so :mod:`repro.store` can persist GAP sketches
and extend them transparently; :func:`comic_rr_selection` is the thin
selection-only wrapper the baselines call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.diffusion.batch_forward import batch_simulate_comic
from repro.diffusion.comic import ComICModel, simulate_comic
from repro.engine import EngineContext, ensure_context, is_batched
from repro.graph.digraph import InfluenceGraph
from repro.rrset.batch import (
    batch_generate_gap_rr_sets,
    rr_set_widths,
)
from repro.rrset.bounds import log_binomial
from repro.rrset.node_selection import greedy_max_coverage


@dataclass(frozen=True)
class ComICSeedSelection:
    """Selected seeds plus sampling statistics.

    ``coverage_fraction`` is ``covered / θ`` over *all* θ RR sets of the
    generation phase, including the empty ones produced by failed root
    adoption coins (see the module docstring for why this unbiased
    convention is the right one).
    """

    seeds: Tuple[int, ...]
    num_rr_sets: int
    coverage_fraction: float


@dataclass(frozen=True)
class ComicSketchState:
    """Everything a Com-IC RIS run produced, in persistable form.

    This is the state :mod:`repro.store` snapshots into a format-v2 sketch
    store: the θ-phase GAP RR collection as flat CSR arrays, the final
    forward-world bitmap the walks were paired against, the post-θ world
    cursor, and the GAP coin parameters — enough to both *serve* the
    selection warm and *extend* the θ phase as if the run had never been
    interrupted.
    """

    seeds: Tuple[int, ...]
    members: np.ndarray
    offsets: np.ndarray
    worlds_bitmap: np.ndarray
    world_cursor: int
    q_plain: float
    q_boosted: float
    kpt: float
    kpt_sets: int
    theta: int
    covered: int

    @property
    def coverage_fraction(self) -> float:
        """``covered / θ`` (empty sets included; unbiased convention)."""
        return self.covered / self.theta if self.theta else 0.0

    @property
    def num_rr_sets(self) -> int:
        """Total RR sets sampled (KPT rounds + θ phase)."""
        return self.theta + self.kpt_sets

    def selection(self) -> ComICSeedSelection:
        """The selection-only projection the baselines report."""
        return ComICSeedSelection(
            seeds=self.seeds,
            num_rr_sets=self.num_rr_sets,
            coverage_fraction=self.coverage_fraction,
        )


def worlds_to_bitmap(
    worlds: Union[Sequence[Set[int]], np.ndarray], num_nodes: int
) -> np.ndarray:
    """Adopter worlds as a ``(max(1, |worlds|), n)`` boolean bitmap.

    Accepts either the sequential forward pass's list of adopter sets or
    an already-materialized bitmap (returned as bool, at least one row —
    the zero-row convention of the batched GAP sampler, where an empty
    world list degrades to a single all-plain world).
    """
    if isinstance(worlds, np.ndarray):
        bitmap = worlds.astype(bool, copy=False)
        if bitmap.shape[0]:
            return bitmap
        return np.zeros((1, num_nodes), dtype=bool)
    bitmap = np.zeros((max(1, len(worlds)), num_nodes), dtype=bool)
    for i, world in enumerate(worlds):
        if world:
            bitmap[
                i, np.fromiter(world, dtype=np.int64, count=len(world))
            ] = True
    return bitmap


def bitmap_to_worlds(bitmap: np.ndarray) -> List[Set[int]]:
    """Inverse of :func:`worlds_to_bitmap` (for the sequential sampler)."""
    return [set(np.flatnonzero(row).tolist()) for row in np.asarray(bitmap)]


def _forward_adopter_worlds(
    graph: InfluenceGraph,
    model: ComICModel,
    fixed_item: int,
    fixed_seeds: Sequence[int],
    num_worlds: int,
    rng: np.random.Generator,
    backend: str = "sequential",
) -> Union[List[Set[int]], np.ndarray]:
    """Adopters of the fixed item across sampled Com-IC worlds.

    The sequential backend runs one :func:`simulate_comic` per world and
    returns a list of adopter sets (the historical byte-identical path);
    the batched backend advances all worlds at once through
    :func:`repro.diffusion.batch_forward.batch_simulate_comic` and returns
    the ``(num_worlds, n)`` boolean bitmap the GAP sampler consumes
    directly.
    """
    seeds_a = fixed_seeds if fixed_item == 0 else ()
    seeds_b = fixed_seeds if fixed_item == 1 else ()
    if is_batched(backend):
        result = batch_simulate_comic(
            graph, model, seeds_a, seeds_b, num_worlds, rng
        )
        return result.adopters_bitmap(fixed_item)
    worlds: List[Set[int]] = []
    for _ in range(num_worlds):
        result = simulate_comic(
            graph, model, seeds_a=seeds_a, seeds_b=seeds_b, rng=rng
        )
        worlds.append(result.adopters_of(fixed_item))
    return worlds


def _gap_rr_set(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    q_plain: float,
    q_boosted: float,
    boosted_nodes: Set[int],
) -> np.ndarray:
    """One GAP-aware RR set.

    Standard reverse BFS, but every node additionally passes a node-level
    adoption coin: probability ``q_boosted`` if the node adopts the
    complementary item in the paired forward world, ``q_plain`` otherwise.
    A failed coin removes the node (and stops traversal through it); a failed
    root yields an empty RR set, mirroring the "root must be willing to
    adopt" condition of the Com-IC RIS analysis.
    """
    n = graph.num_nodes
    root = int(rng.integers(0, n))
    q_root = q_boosted if root in boosted_nodes else q_plain
    if rng.random() >= q_root:
        return np.empty(0, dtype=np.int64)
    visited = {root}
    frontier = [root]
    while frontier:
        next_frontier: List[int] = []
        for v in frontier:
            sources = graph.in_neighbors(v)
            deg = sources.shape[0]
            if deg == 0:
                continue
            probs = graph.in_probabilities(v)
            coins = rng.random(deg)
            for u in sources[coins < probs]:
                u = int(u)
                if u in visited:
                    continue
                q_u = q_boosted if u in boosted_nodes else q_plain
                if rng.random() < q_u:
                    visited.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


class _GapSampler:
    """Backend-dispatching GAP RR-set source with a persistent world cursor.

    The cursor (an :class:`repro.engine.WorldCursor`, shared with the
    engine context when one is supplied) counts every RR set drawn so far
    and doubles as the forward-world pairing cursor: RR set ``j`` is paired
    with world ``(cursor at phase start + j) mod |worlds|``, monotone
    across the KPT and θ phases (the module-docstring convention) *and*
    across a sketch-store save/load/extend round trip.  ``set_worlds``
    re-points the sampler at a refreshed world list (RR-CIM's extra forward
    pass) without resetting the cursor.

    The sequential path calls :func:`_gap_rr_set` per set — byte-identical
    RNG stream to the historical loop — while the batched path maps the
    worlds onto a ``(|worlds|, n)`` boolean bitmap and samples whole rounds
    via :func:`repro.rrset.batch.batch_generate_gap_rr_sets`.
    """

    def __init__(
        self,
        graph: InfluenceGraph,
        rng: Optional[np.random.Generator] = None,
        q_plain: float = 0.0,
        q_boosted: float = 0.0,
        backend: Optional[str] = None,
        *,
        ctx: Optional[EngineContext] = None,
    ):
        if ctx is not None:
            if rng is not None or backend is not None:
                raise TypeError(
                    "_GapSampler: pass either ctx= or rng=/backend=, "
                    "not both"
                )
        else:
            # Backend resolution happens in the engine, nowhere else: the
            # legacy (rng, backend) spelling builds an equivalent context
            # (fresh cursor, default stream) and reads it back.
            ctx = EngineContext.create(backend=backend, rng=rng)
        self._graph = graph
        self._rng = ctx.rng
        self._q_plain = q_plain
        self._q_boosted = q_boosted
        self.backend = ctx.backend
        self._cursor = ctx.cursor
        self._worlds: List[Set[int]] = []
        self._bitmap = np.zeros((1, graph.num_nodes), dtype=bool)

    @property
    def used(self) -> int:
        """RR sets drawn so far — the forward-world pairing cursor."""
        return self._cursor.position

    @property
    def worlds_bitmap(self) -> np.ndarray:
        """The installed worlds as a boolean bitmap (persistence hook)."""
        if is_batched(self.backend):
            return self._bitmap
        return worlds_to_bitmap(self._worlds, self._graph.num_nodes)

    def set_worlds(
        self, worlds: Union[Sequence[Set[int]], np.ndarray]
    ) -> None:
        """Install the forward adopter worlds (cursor is preserved).

        Accepts either a list of adopter sets (the sequential forward
        pass) or a ``(num_worlds, n)`` boolean bitmap straight from the
        batched forward engine — the latter skips the per-set conversion
        entirely.
        """
        if isinstance(worlds, np.ndarray):
            if not is_batched(self.backend):
                raise ValueError(
                    "bitmap worlds require a vectorized backend; the "
                    "sequential sampler pairs walks with adopter sets"
                )
            self._worlds = []
            self._bitmap = worlds_to_bitmap(worlds, self._graph.num_nodes)
            return
        self._worlds = list(worlds)
        if not is_batched(self.backend):
            return
        self._bitmap = worlds_to_bitmap(
            self._worlds, self._graph.num_nodes
        )

    def sample(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` GAP RR sets; returns flat ``(members, lengths)``.

        Lengths may be zero (failed root coins).  Advances the cursor.
        """
        start = self._cursor.advance(count)
        if is_batched(self.backend):
            world_ids = (
                start + np.arange(count, dtype=np.int64)
            ) % self._bitmap.shape[0]
            return batch_generate_gap_rr_sets(
                self._graph,
                self._rng,
                count,
                self._q_plain,
                self._q_boosted,
                self._bitmap,
                world_ids,
            )
        num_worlds = len(self._worlds)
        parts: List[np.ndarray] = []
        lengths = np.zeros(count, dtype=np.int64)
        for j in range(count):
            boosted = (
                self._worlds[(start + j) % num_worlds]
                if num_worlds
                else set()
            )
            rr = _gap_rr_set(
                self._graph, self._rng, self._q_plain, self._q_boosted, boosted
            )
            parts.append(rr)
            lengths[j] = rr.shape[0]
        members = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        return members, lengths


def _tim_theta(
    n: int, k: int, epsilon: float, ell: float, kpt_guess: float
) -> int:
    """TIM's sample size ``θ = λ / KPT`` (the baselines are TIM-based)."""
    lam = (
        (8.0 + 2.0 * epsilon)
        * n
        * (ell * math.log(max(n, 2)) + log_binomial(n, k) + math.log(2.0))
        / (epsilon * epsilon)
    )
    return int(math.ceil(lam / max(kpt_guess, 1.0)))


def _estimate_kpt(
    graph: InfluenceGraph,
    k: int,
    ell: float,
    sampler: _GapSampler,
) -> Tuple[float, int]:
    """TIM-style KPT estimation on GAP-aware RR sets.

    Each geometric round's ``c_i`` sets come from one ``sampler.sample``
    call — a single vectorized pass on the batched backend, the historical
    per-set loop (identical RNG stream *and* float-accumulation order) on
    the sequential one.
    """
    n = graph.num_nodes
    m = max(graph.num_edges, 1)
    log2n = max(math.log2(n), 2.0)
    used = 0
    for i in range(1, max(2, int(log2n))):
        c_i = int(
            math.ceil((6.0 * ell * math.log(n) + 6.0 * math.log(log2n)) * 2.0**i)
        )
        members, lengths = sampler.sample(c_i)
        used += c_i
        if is_batched(sampler.backend):
            widths = rr_set_widths(graph, members, lengths)
            total = float(np.sum(1.0 - (1.0 - widths / m) ** k))
        else:
            # Keep the historical left-to-right float accumulation so the
            # sequential backend's KPT (and hence θ) is byte-identical.
            offsets = np.concatenate(([0], np.cumsum(lengths)))
            total = 0.0
            for j in range(c_i):
                rr = members[offsets[j] : offsets[j + 1]]
                width = sum(graph.in_degree(int(v)) for v in rr)
                kappa = 1.0 - (1.0 - width / m) ** k
                total += kappa
        if total / c_i > 1.0 / (2.0**i):
            return n * total / (2.0 * c_i), used
    return 1.0, used


def comic_rr_sketch(
    graph: InfluenceGraph,
    model: ComICModel,
    select_item: int,
    fixed_seeds: Sequence[int],
    budget: int,
    epsilon: float,
    ell: float,
    ctx: EngineContext,
    num_forward_worlds: int,
    extra_forward_pass: bool,
) -> ComicSketchState:
    """Run the full Com-IC RIS pipeline and return its persistable state.

    This is :func:`comic_rr_selection` with the internals exposed: the
    θ-phase flat arrays, the final worlds bitmap and the post-θ cursor ride
    along so :mod:`repro.store` can persist the sketch (its extension path
    rebuilds a :class:`_GapSampler` directly from the persisted state and
    never re-enters the forward/KPT phases).  ``budget`` must be positive
    (the selection wrapper handles the trivial cases).
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    n = graph.num_nodes
    fixed_item = 1 - select_item
    q_plain = model.q(select_item, has_other=False)
    q_boosted = model.q(select_item, has_other=True)

    sampler = _GapSampler(
        graph, q_plain=q_plain, q_boosted=q_boosted, ctx=ctx
    )
    worlds = _forward_adopter_worlds(
        graph,
        model,
        fixed_item,
        fixed_seeds,
        num_forward_worlds,
        ctx.rng,
        backend=ctx.backend,
    )
    sampler.set_worlds(worlds)
    kpt, kpt_sets = _estimate_kpt(graph, budget, ell, sampler)
    theta = _tim_theta(n, budget, epsilon, ell, kpt)

    if extra_forward_pass:
        refreshed = _forward_adopter_worlds(
            graph,
            model,
            fixed_item,
            fixed_seeds,
            num_forward_worlds,
            ctx.rng,
            backend=ctx.backend,
        )
        if isinstance(worlds, np.ndarray):
            worlds = np.concatenate([worlds, refreshed], axis=0)
        else:
            worlds = worlds + refreshed
        sampler.set_worlds(worlds)

    # Generate θ GAP-aware RR sets (world pairing continues from the KPT
    # phase's cursor) directly in flat CSR form (members + offsets).
    members, lengths = sampler.sample(theta)
    offsets = np.zeros(theta + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])

    # Vectorized greedy max coverage (shared NodeSelection machinery).
    seeds, covered_total = greedy_max_coverage(
        n, members, offsets, min(budget, n)
    )
    return ComicSketchState(
        seeds=tuple(seeds),
        members=members,
        offsets=offsets,
        worlds_bitmap=sampler.worlds_bitmap,
        world_cursor=sampler.used,
        q_plain=q_plain,
        q_boosted=q_boosted,
        kpt=kpt,
        kpt_sets=kpt_sets,
        theta=theta,
        covered=int(covered_total),
    )


def comic_rr_selection(
    graph: InfluenceGraph,
    model: ComICModel,
    select_item: int,
    fixed_seeds: Sequence[int],
    budget: int,
    epsilon: float,
    ell: float,
    rng: Optional[np.random.Generator] = None,
    num_forward_worlds: int = 20,
    extra_forward_pass: bool = False,
    backend: Optional[str] = None,
    *,
    ctx: Optional[EngineContext] = None,
) -> ComICSeedSelection:
    """Select ``budget`` seeds for ``select_item`` given the other item's.

    ``extra_forward_pass`` doubles the forward-simulation effort (RR-CIM's
    generality tax: it re-estimates the boost after a first selection round).

    The context's backend picks the GAP sampling path (``sequential``, or
    the vectorized path for ``batched``/``parallel``); the removed legacy
    ``backend=`` keyword raises ``TypeError`` while ``rng=`` stays
    first-class.
    The returned ``coverage_fraction`` divides by the full θ — empty RR
    sets from failed root adoption coins included — and RR set ``j``
    (counting from the first KPT sample) is paired with forward world
    ``j mod |worlds|``: the θ phase continues from the KPT phase's world
    cursor (``ctx.cursor``) instead of restarting at world 0.  See the
    module docstring for the rationale of both conventions.
    """
    ctx = ensure_context(
        ctx, backend=backend, rng=rng, caller="comic_rr_selection"
    )
    if budget <= 0:
        return ComICSeedSelection(seeds=(), num_rr_sets=0, coverage_fraction=0.0)
    state = comic_rr_sketch(
        graph,
        model,
        select_item,
        fixed_seeds,
        budget,
        epsilon,
        ell,
        ctx,
        num_forward_worlds,
        extra_forward_pass,
    )
    return state.selection()
