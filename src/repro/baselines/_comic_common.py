"""Shared machinery of the Com-IC baselines RR-SIM+ and RR-CIM.

Both algorithms reduce two-item Com-IC seed selection to max-coverage over
GAP-aware RR sets with TIM-scale sample sizes; they differ in how much
forward simulation they spend estimating the complementary boost.

Sampling conventions (pinned by tests; see also
:class:`repro.rrset.batch.batch_generate_gap_rr_sets`):

* **Empty RR sets stay in the denominator.**  A GAP RR set is empty when
  its root fails the adoption coin; such sets can never be covered, and
  keeping them in ``θ`` makes ``n · F_R(S)`` an unbiased estimator of the
  expected adoption count (dropping them would estimate adoption
  *conditioned on a willing root*, inflating σ̂ by roughly ``1/E[q_root]``).
* **The forward-world cursor is monotone across phases.**  RR set ``j``
  (counted from the very first KPT sample) is paired with forward world
  ``j mod |worlds|``; the θ-generation phase continues from the KPT
  phase's offset rather than restarting at world 0, so every world is
  paired with the same expected number of RR sets and the KPT estimate and
  the θ collection draw from the same mixture distribution.

Both the ``sequential`` backend (per-set Python BFS, the historical
equivalence oracle) and the ``batched`` backend (flat ``(walk, node)``
frontier arrays with per-world boosted bitmaps) implement these
conventions; the backend knob follows :func:`repro.rrset.batch.resolve_backend`
(explicit argument > ``$REPRO_RR_BACKEND`` > batched).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.diffusion.batch_forward import batch_simulate_comic
from repro.diffusion.comic import ComICModel, simulate_comic
from repro.graph.digraph import InfluenceGraph
from repro.rrset.batch import (
    batch_generate_gap_rr_sets,
    resolve_backend,
    rr_set_widths,
)
from repro.rrset.bounds import log_binomial
from repro.rrset.node_selection import greedy_max_coverage


@dataclass(frozen=True)
class ComICSeedSelection:
    """Selected seeds plus sampling statistics.

    ``coverage_fraction`` is ``covered / θ`` over *all* θ RR sets of the
    generation phase, including the empty ones produced by failed root
    adoption coins (see the module docstring for why this unbiased
    convention is the right one).
    """

    seeds: Tuple[int, ...]
    num_rr_sets: int
    coverage_fraction: float


def _forward_adopter_worlds(
    graph: InfluenceGraph,
    model: ComICModel,
    fixed_item: int,
    fixed_seeds: Sequence[int],
    num_worlds: int,
    rng: np.random.Generator,
    backend: str = "sequential",
) -> Union[List[Set[int]], np.ndarray]:
    """Adopters of the fixed item across sampled Com-IC worlds.

    The sequential backend runs one :func:`simulate_comic` per world and
    returns a list of adopter sets (the historical byte-identical path);
    the batched backend advances all worlds at once through
    :func:`repro.diffusion.batch_forward.batch_simulate_comic` and returns
    the ``(num_worlds, n)`` boolean bitmap the GAP sampler consumes
    directly.
    """
    seeds_a = fixed_seeds if fixed_item == 0 else ()
    seeds_b = fixed_seeds if fixed_item == 1 else ()
    if backend == "batched":
        result = batch_simulate_comic(
            graph, model, seeds_a, seeds_b, num_worlds, rng
        )
        return result.adopters_bitmap(fixed_item)
    worlds: List[Set[int]] = []
    for _ in range(num_worlds):
        result = simulate_comic(
            graph, model, seeds_a=seeds_a, seeds_b=seeds_b, rng=rng
        )
        worlds.append(result.adopters_of(fixed_item))
    return worlds


def _gap_rr_set(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    q_plain: float,
    q_boosted: float,
    boosted_nodes: Set[int],
) -> np.ndarray:
    """One GAP-aware RR set.

    Standard reverse BFS, but every node additionally passes a node-level
    adoption coin: probability ``q_boosted`` if the node adopts the
    complementary item in the paired forward world, ``q_plain`` otherwise.
    A failed coin removes the node (and stops traversal through it); a failed
    root yields an empty RR set, mirroring the "root must be willing to
    adopt" condition of the Com-IC RIS analysis.
    """
    n = graph.num_nodes
    root = int(rng.integers(0, n))
    q_root = q_boosted if root in boosted_nodes else q_plain
    if rng.random() >= q_root:
        return np.empty(0, dtype=np.int64)
    visited = {root}
    frontier = [root]
    while frontier:
        next_frontier: List[int] = []
        for v in frontier:
            sources = graph.in_neighbors(v)
            deg = sources.shape[0]
            if deg == 0:
                continue
            probs = graph.in_probabilities(v)
            coins = rng.random(deg)
            for u in sources[coins < probs]:
                u = int(u)
                if u in visited:
                    continue
                q_u = q_boosted if u in boosted_nodes else q_plain
                if rng.random() < q_u:
                    visited.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


class _GapSampler:
    """Backend-dispatching GAP RR-set source with a persistent world cursor.

    ``used`` counts every RR set drawn so far and doubles as the
    forward-world pairing cursor: RR set ``j`` is paired with world
    ``(cursor at phase start + j) mod |worlds|``, monotone across the KPT
    and θ phases (the module-docstring convention).  ``set_worlds``
    re-points the sampler at a refreshed world list (RR-CIM's extra forward
    pass) without resetting the cursor.

    The sequential path calls :func:`_gap_rr_set` per set — byte-identical
    RNG stream to the historical loop — while the batched path maps the
    worlds onto a ``(|worlds|, n)`` boolean bitmap and samples whole rounds
    via :func:`repro.rrset.batch.batch_generate_gap_rr_sets`.
    """

    def __init__(
        self,
        graph: InfluenceGraph,
        rng: np.random.Generator,
        q_plain: float,
        q_boosted: float,
        backend: str,
    ):
        self._graph = graph
        self._rng = rng
        self._q_plain = q_plain
        self._q_boosted = q_boosted
        self.backend = backend
        self.used = 0
        self._worlds: List[Set[int]] = []
        self._bitmap = np.zeros((1, graph.num_nodes), dtype=bool)

    def set_worlds(
        self, worlds: Union[Sequence[Set[int]], np.ndarray]
    ) -> None:
        """Install the forward adopter worlds (cursor is preserved).

        Accepts either a list of adopter sets (the sequential forward
        pass) or a ``(num_worlds, n)`` boolean bitmap straight from the
        batched forward engine — the latter skips the per-set conversion
        entirely.
        """
        if isinstance(worlds, np.ndarray):
            if self.backend != "batched":
                raise ValueError(
                    "bitmap worlds require the batched backend; the "
                    "sequential sampler pairs walks with adopter sets"
                )
            n = self._graph.num_nodes
            self._worlds = []
            if worlds.shape[0]:
                self._bitmap = worlds.astype(bool, copy=False)
            else:
                self._bitmap = np.zeros((1, n), dtype=bool)
            return
        self._worlds = list(worlds)
        if self.backend != "batched":
            return
        n = self._graph.num_nodes
        bitmap = np.zeros((max(1, len(self._worlds)), n), dtype=bool)
        for i, world in enumerate(self._worlds):
            if world:
                bitmap[
                    i,
                    np.fromiter(world, dtype=np.int64, count=len(world)),
                ] = True
        self._bitmap = bitmap

    def sample(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` GAP RR sets; returns flat ``(members, lengths)``.

        Lengths may be zero (failed root coins).  Advances the cursor.
        """
        start = self.used
        self.used += count
        if self.backend == "batched":
            world_ids = (
                start + np.arange(count, dtype=np.int64)
            ) % self._bitmap.shape[0]
            return batch_generate_gap_rr_sets(
                self._graph,
                self._rng,
                count,
                self._q_plain,
                self._q_boosted,
                self._bitmap,
                world_ids,
            )
        num_worlds = len(self._worlds)
        parts: List[np.ndarray] = []
        lengths = np.zeros(count, dtype=np.int64)
        for j in range(count):
            boosted = (
                self._worlds[(start + j) % num_worlds]
                if num_worlds
                else set()
            )
            rr = _gap_rr_set(
                self._graph, self._rng, self._q_plain, self._q_boosted, boosted
            )
            parts.append(rr)
            lengths[j] = rr.shape[0]
        members = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        return members, lengths


def _tim_theta(
    n: int, k: int, epsilon: float, ell: float, kpt_guess: float
) -> int:
    """TIM's sample size ``θ = λ / KPT`` (the baselines are TIM-based)."""
    lam = (
        (8.0 + 2.0 * epsilon)
        * n
        * (ell * math.log(max(n, 2)) + log_binomial(n, k) + math.log(2.0))
        / (epsilon * epsilon)
    )
    return int(math.ceil(lam / max(kpt_guess, 1.0)))


def _estimate_kpt(
    graph: InfluenceGraph,
    k: int,
    ell: float,
    sampler: _GapSampler,
) -> Tuple[float, int]:
    """TIM-style KPT estimation on GAP-aware RR sets.

    Each geometric round's ``c_i`` sets come from one ``sampler.sample``
    call — a single vectorized pass on the batched backend, the historical
    per-set loop (identical RNG stream *and* float-accumulation order) on
    the sequential one.
    """
    n = graph.num_nodes
    m = max(graph.num_edges, 1)
    log2n = max(math.log2(n), 2.0)
    used = 0
    for i in range(1, max(2, int(log2n))):
        c_i = int(
            math.ceil((6.0 * ell * math.log(n) + 6.0 * math.log(log2n)) * 2.0**i)
        )
        members, lengths = sampler.sample(c_i)
        used += c_i
        if sampler.backend == "batched":
            widths = rr_set_widths(graph, members, lengths)
            total = float(np.sum(1.0 - (1.0 - widths / m) ** k))
        else:
            # Keep the historical left-to-right float accumulation so the
            # sequential backend's KPT (and hence θ) is byte-identical.
            offsets = np.concatenate(([0], np.cumsum(lengths)))
            total = 0.0
            for j in range(c_i):
                rr = members[offsets[j] : offsets[j + 1]]
                width = sum(graph.in_degree(int(v)) for v in rr)
                kappa = 1.0 - (1.0 - width / m) ** k
                total += kappa
        if total / c_i > 1.0 / (2.0**i):
            return n * total / (2.0 * c_i), used
    return 1.0, used


def comic_rr_selection(
    graph: InfluenceGraph,
    model: ComICModel,
    select_item: int,
    fixed_seeds: Sequence[int],
    budget: int,
    epsilon: float,
    ell: float,
    rng: np.random.Generator,
    num_forward_worlds: int,
    extra_forward_pass: bool,
    backend: Optional[str] = None,
) -> ComICSeedSelection:
    """Select ``budget`` seeds for ``select_item`` given the other item's.

    ``extra_forward_pass`` doubles the forward-simulation effort (RR-CIM's
    generality tax: it re-estimates the boost after a first selection round).

    ``backend`` picks the GAP sampling path (``sequential`` | ``batched``;
    ``None`` resolves ``$REPRO_RR_BACKEND``, default batched).  The returned
    ``coverage_fraction`` divides by the full θ — empty RR sets from failed
    root adoption coins included — and RR set ``j`` (counting from the first
    KPT sample) is paired with forward world ``j mod |worlds|``: the θ phase
    continues from the KPT phase's world cursor instead of restarting at
    world 0.  See the module docstring for the rationale of both
    conventions.
    """
    if budget <= 0:
        return ComICSeedSelection(seeds=(), num_rr_sets=0, coverage_fraction=0.0)
    n = graph.num_nodes
    fixed_item = 1 - select_item
    q_plain = model.q(select_item, has_other=False)
    q_boosted = model.q(select_item, has_other=True)

    resolved = resolve_backend(backend)
    sampler = _GapSampler(graph, rng, q_plain, q_boosted, resolved)
    worlds = _forward_adopter_worlds(
        graph,
        model,
        fixed_item,
        fixed_seeds,
        num_forward_worlds,
        rng,
        backend=resolved,
    )
    sampler.set_worlds(worlds)
    kpt, kpt_sets = _estimate_kpt(graph, budget, ell, sampler)
    theta = _tim_theta(n, budget, epsilon, ell, kpt)

    if extra_forward_pass:
        refreshed = _forward_adopter_worlds(
            graph,
            model,
            fixed_item,
            fixed_seeds,
            num_forward_worlds,
            rng,
            backend=resolved,
        )
        if isinstance(worlds, np.ndarray):
            worlds = np.concatenate([worlds, refreshed], axis=0)
        else:
            worlds = worlds + refreshed
        sampler.set_worlds(worlds)

    # Generate θ GAP-aware RR sets (world pairing continues from the KPT
    # phase's cursor) directly in flat CSR form (members + offsets).
    members, lengths = sampler.sample(theta)
    offsets = np.zeros(theta + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])

    # Vectorized greedy max coverage (shared NodeSelection machinery).
    seeds, covered_total = greedy_max_coverage(
        n, members, offsets, min(budget, n)
    )
    fraction = covered_total / theta if theta else 0.0
    return ComICSeedSelection(
        seeds=tuple(seeds),
        num_rr_sets=theta + kpt_sets,
        coverage_fraction=fraction,
    )
