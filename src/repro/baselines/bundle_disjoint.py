"""The bundle-disjoint baseline (§4.3.1.2, item 3).

bundle-disj tries to capture supermodularity *and* propagation without the
nested-prefix structure of bundleGRD:

1. order items by non-increasing budget; repeatedly find the minimum-sized
   itemset ("bundle") with non-negative deterministic utility among items
   with remaining budget;
2. allocate each bundle ``B`` to a *fresh* (disjoint) set of
   ``b_B = min{b_i | i ∈ B}`` seed nodes, obtained from its own IMM call;
   decrement the budgets of ``B``'s items by ``b_B`` and drop exhausted ones;
3. when no further bundle exists, spend items' surplus budgets on the seed
   sets of earlier bundles not containing them; any remainder gets fresh IMM
   seeds.

Each bundle costs one IMM invocation — the reason bundle-disj's running time
grows with the number of items (Fig. 8(a)) while bundleGRD's does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.graph.digraph import InfluenceGraph
from repro.rrset.imm import imm
from repro.utility.itemsets import (
    Mask,
    items_of,
    iter_nonempty_subsets,
    mask_of,
    popcount,
)
from repro.utility.model import UtilityModel


@dataclass(frozen=True)
class BundleDisjointResult:
    """bundle-disj's allocation plus cost accounting."""

    allocation: Allocation
    bundles: Tuple[Mask, ...]
    num_imm_calls: int
    num_rr_sets: int  # max over IMM calls: concurrent memory footprint


def _minimum_positive_bundle(
    model: UtilityModel, available: Sequence[int]
) -> Optional[Mask]:
    """Smallest itemset over ``available`` with non-negative deterministic
    utility; ties broken toward larger remaining budget is immaterial, so we
    take the first in (size, mask) order for determinism."""
    pool_mask = mask_of(available)
    best: Optional[Mask] = None
    best_size = None
    for subset in iter_nonempty_subsets(pool_mask):
        size = popcount(subset)
        if best_size is not None and size >= best_size:
            continue
        if model.expected_utility(subset) >= 0.0:
            best = subset
            best_size = size
            if size == 1:
                break
    return best


def _fresh_seeds(
    graph: InfluenceGraph,
    count: int,
    used: Set[int],
    epsilon: float,
    ell: float,
    ctx,
) -> Tuple[List[int], int]:
    """``count`` good seeds disjoint from ``used`` via one IMM call.

    IMM is asked for ``count + |used|`` nodes so that after skipping used
    ones enough remain; returns (seeds, rr_sets_generated).
    """
    want = min(count + len(used), graph.num_nodes)
    result = imm(graph, want, epsilon=epsilon, ell=ell, ctx=ctx)
    fresh = [v for v in result.seeds if v not in used][:count]
    return fresh, result.num_rr_sets


def bundle_disjoint(
    graph: InfluenceGraph,
    model: UtilityModel,
    budgets: Sequence[int],
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    *,
    ctx=None,
) -> BundleDisjointResult:
    """Run bundle-disj.

    Unlike bundleGRD, this baseline *does* read the deterministic utilities
    (it needs them to form bundles) — one of the practical advantages the
    paper claims for bundleGRD.
    """
    budgets_left = [int(b) for b in budgets]
    if len(budgets_left) != model.num_items:
        raise ValueError(
            f"budget vector has {len(budgets_left)} entries for "
            f"{model.num_items} items"
        )
    from repro.engine import ensure_context

    ctx = ensure_context(ctx, rng=rng, caller="bundle_disjoint")

    pairs: List[Tuple[int, int]] = []
    bundles: List[Mask] = []
    bundle_seeds: List[List[int]] = []
    used: Set[int] = set()
    imm_calls = 0
    max_rr_sets = 0

    # Phase 1: carve out bundles with non-negative deterministic utility.
    while True:
        available = sorted(
            (i for i in range(model.num_items) if budgets_left[i] > 0),
            key=lambda i: (-budgets_left[i], i),
        )
        if not available:
            break
        bundle = _minimum_positive_bundle(model, available)
        if bundle is None:
            break
        members = items_of(bundle)
        b_bundle = min(budgets_left[i] for i in members)
        seeds, rr_sets = _fresh_seeds(graph, b_bundle, used, epsilon, ell, ctx)
        imm_calls += 1
        max_rr_sets = max(max_rr_sets, rr_sets)
        if not seeds:
            break
        used.update(seeds)
        bundles.append(bundle)
        bundle_seeds.append(seeds)
        for item in members:
            for node in seeds:
                pairs.append((node, item))
            budgets_left[item] -= len(seeds)

    # Phase 2: spend surplus budgets on earlier bundles' seeds, then fresh.
    for item in sorted(
        range(model.num_items), key=lambda i: (-budgets_left[i], i)
    ):
        for bundle, seeds in zip(bundles, bundle_seeds):
            if budgets_left[item] <= 0:
                break
            if bundle >> item & 1:
                continue  # bundle already contains the item
            take = seeds[: budgets_left[item]]
            for node in take:
                pairs.append((node, item))
            budgets_left[item] -= len(take)
        if budgets_left[item] > 0:
            seeds, rr_sets = _fresh_seeds(
                graph, budgets_left[item], used, epsilon, ell, ctx
            )
            imm_calls += 1
            max_rr_sets = max(max_rr_sets, rr_sets)
            used.update(seeds)
            for node in seeds:
                pairs.append((node, item))
            budgets_left[item] -= len(seeds)

    allocation = Allocation(pairs, num_items=model.num_items)
    return BundleDisjointResult(
        allocation=allocation,
        bundles=tuple(bundles),
        num_imm_calls=imm_calls,
        num_rr_sets=max_rr_sets,
    )
