"""The item-disjoint baseline (§4.3.1.2, item 2).

item-disj assigns *one item per seed node*: it asks IMM for ``Σ_i b_i`` nodes
in one call, then walks the items in non-increasing budget order, giving item
``i`` the next ``b_i`` unused nodes from the pool.  It forgoes bundling (and
therefore supermodularity) entirely, relying on network propagation alone —
the contrast bundleGRD is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.allocation import Allocation
from repro.graph.digraph import InfluenceGraph
from repro.rrset.imm import IMMResult, imm


@dataclass(frozen=True)
class ItemDisjointResult:
    """item-disj's allocation plus the single underlying IMM run."""

    allocation: Allocation
    imm_result: IMMResult

    @property
    def num_rr_sets(self) -> int:
        """RR sets of the IMM call (the memory metric)."""
        return self.imm_result.num_rr_sets


def item_disjoint(
    graph: InfluenceGraph,
    budgets: Sequence[int],
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    *,
    ctx=None,
) -> ItemDisjointResult:
    """Run item-disj.

    Parameters mirror :func:`repro.core.bundlegrd.bundle_grd`.  The total
    pool size is capped at the number of nodes; if the graph is smaller than
    ``Σ b_i``, later (smaller-budget) items receive truncated seed sets.
    """
    from repro.engine import ensure_context

    ctx = ensure_context(ctx, rng=rng, caller="item_disjoint")
    budgets = [int(b) for b in budgets]
    if not budgets:
        raise ValueError("budgets must be non-empty")
    if any(b < 0 for b in budgets):
        raise ValueError(f"budgets must be non-negative: {budgets}")
    total = min(sum(budgets), graph.num_nodes)
    imm_result = imm(graph, total, epsilon=epsilon, ell=ell, ctx=ctx)
    pool = list(imm_result.seeds)

    # Visit items in non-increasing budget order; each takes the next b_i
    # nodes off the pool.
    order = sorted(range(len(budgets)), key=lambda i: (-budgets[i], i))
    pairs = []
    cursor = 0
    for item in order:
        take = min(budgets[item], max(0, len(pool) - cursor))
        for node in pool[cursor : cursor + take]:
            pairs.append((node, item))
        cursor += take
    allocation = Allocation(pairs, num_items=len(budgets))
    return ItemDisjointResult(allocation=allocation, imm_result=imm_result)
