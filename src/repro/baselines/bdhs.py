"""BDHS — welfare maximization under network externalities [4].

Bhattacharya, Dvořák, Henzinger & Starnberger study item allocation with
friends-of-friends externalities but *no propagation* and *no budgets*.  The
paper compares against them through the restricted conversion of §4.3.4.4:

* every itemset becomes a *virtual item*; unit demand means each node is
  assigned the best (max deterministic utility) virtual item — with no
  budget, every node gets it;
* **BDHS-Step**: sample live-edge graphs; on each, a node *realizes* its
  assigned utility iff at least one live in-neighbor holds the same virtual
  item (the 1-step externality function), then average over worlds;
* **BDHS-Concave**: under a uniform edge probability ``p``, a node realizes
  its utility scaled by the concave externality ``f(s) = 1 − (1 − p)^s``
  where ``s`` is the size of its 2-hop support set.

The resulting totals are the *benchmark welfare* bundleGRD is swept against
in Fig. 9(a–c): the experiment finds what fraction of a full budget ``n``
bundleGRD needs to reach the benchmark through propagation alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

from repro.diffusion.worlds import sample_live_edge_graph
from repro.graph.digraph import InfluenceGraph
from repro.utility.itemsets import Mask
from repro.utility.model import UtilityModel


def best_virtual_item(model: UtilityModel) -> Tuple[Mask, float]:
    """The max-deterministic-utility itemset and its utility.

    With unit demand and no budget, BDHS assigns this virtual item to every
    node; ties broken toward larger sets (Lemma 1's union rule).
    """
    table = model.utility_table(None)
    best = float(np.max(table))
    union = 0
    for mask in range(len(table)):
        if table[mask] >= best - 1e-12:
            union |= mask
    if table[union] >= best - 1e-9:
        return union, float(table[union])
    # Non-supermodular tables: fall back to the largest single maximizer.
    best_mask = int(np.argmax(table))
    return best_mask, float(table[best_mask])


@dataclass(frozen=True)
class BDHSWelfare:
    """Benchmark welfare of a BDHS variant."""

    welfare: float
    virtual_item: Mask
    per_node_utility: float


def bdhs_step_welfare(
    graph: InfluenceGraph,
    model: UtilityModel,
    num_worlds: int = 100,
    rng: Optional[np.random.Generator] = None,
) -> BDHSWelfare:
    """BDHS with the 1-step externality, averaged over live-edge worlds.

    Every node holds the best virtual item; in each sampled world a node
    realizes its utility iff some live in-neighbor also holds it (with
    universal assignment: iff the node has ≥ 1 live in-edge).  Nodes with no
    in-edges at all realize the utility unconditionally (their externality
    support is vacuous; this matches the no-propagation reading where
    isolated consumers still consume).
    """
    if num_worlds <= 0:
        raise ValueError(f"num_worlds must be positive, got {num_worlds}")
    rng = rng if rng is not None else np.random.default_rng(0)
    item, utility = best_virtual_item(model)
    if utility <= 0.0:
        return BDHSWelfare(welfare=0.0, virtual_item=item, per_node_utility=0.0)
    n = graph.num_nodes
    no_in_edges = np.array([graph.in_degree(v) == 0 for v in range(n)])
    realized_total = 0.0
    for _ in range(num_worlds):
        world = sample_live_edge_graph(graph, rng)
        has_live_in = np.zeros(n, dtype=bool)
        for u in range(n):
            for v in world.out_neighbors(u):
                has_live_in[int(v)] = True
        realized = np.count_nonzero(has_live_in | no_in_edges)
        realized_total += realized
    welfare = utility * realized_total / num_worlds
    return BDHSWelfare(welfare=welfare, virtual_item=item, per_node_utility=utility)


def bdhs_concave_welfare(
    graph: InfluenceGraph,
    model: UtilityModel,
    probability: float = 0.01,
) -> BDHSWelfare:
    """BDHS with the concave 2-hop externality ``f(s) = 1 − (1 − p)^s``.

    Requires the uniform-probability restriction of §4.3.4.4 (the paper
    applies it on graphs reweighted to a fixed ``p``); ``s`` counts the 2-hop
    in-neighborhood (friends and friends-of-friends) holding the same virtual
    item — everyone, under universal assignment.
    """
    if not 0.0 < probability <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {probability}")
    item, utility = best_virtual_item(model)
    if utility <= 0.0:
        return BDHSWelfare(welfare=0.0, virtual_item=item, per_node_utility=0.0)
    n = graph.num_nodes
    total = 0.0
    for v in range(n):
        support: Set[int] = set()
        for u in graph.in_neighbors(v):
            u = int(u)
            support.add(u)
            for w in graph.in_neighbors(u):
                w = int(w)
                if w != v:
                    support.add(w)
        s = len(support)
        if s == 0:
            total += utility  # isolated consumers still consume
        else:
            total += utility * (1.0 - (1.0 - probability) ** s)
    return BDHSWelfare(welfare=total, virtual_item=item, per_node_utility=utility)
