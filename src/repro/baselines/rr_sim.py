"""RR-SIM+ — Com-IC seed selection for complementary items (Lu et al. [36]).

Given the seed set of one item (chosen by IMM), RR-SIM+ selects the other
item's seeds to maximize its expected adoption count under the two-item
Com-IC model.  The original algorithm samples RR sets under the
*self-reliant* mutual-complementarity condition: during the reverse BFS each
node additionally passes a node-level coin reflecting its GAP adoption
probability — ``q_{A|B}`` if the node would adopt item B in the sampled world
(estimated from forward simulations of B's fixed seeds; this is the "+" in
RR-SIM+), ``q_{A|∅}`` otherwise.  Sample sizes follow TIM (the original is
TIM-based), which is why these baselines generate over an order of magnitude
more RR sets than the IMM-based algorithms (Fig. 6).

This is a faithful-role reimplementation (the original C++ is unavailable);
DESIGN.md §11 records the substitution.  The properties the paper's
experiments rely on — allocations that converge to copying the other item's
seeds under strongly complementary configurations, TIM-scale sample counts,
and much slower wall-clock — hold by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.baselines._comic_common import (
    ComICSeedSelection,
    comic_rr_selection,
)
from repro.core.allocation import Allocation
from repro.diffusion.comic import ComICModel
from repro.engine import ensure_context
from repro.graph.digraph import InfluenceGraph
from repro.rrset.imm import imm


@dataclass(frozen=True)
class RRSIMResult:
    """RR-SIM+ output: the two-item allocation plus sampling statistics."""

    allocation: Allocation
    seeds_fixed_item: Tuple[int, ...]
    seeds_selected_item: Tuple[int, ...]
    num_rr_sets: int


def rr_sim_plus(
    graph: InfluenceGraph,
    model: ComICModel,
    budgets: Tuple[int, int],
    select_item: int = 0,
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    num_forward_worlds: int = 20,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> RRSIMResult:
    """Run RR-SIM+ for two items.

    Parameters
    ----------
    graph, model:
        The network and the Com-IC GAP parameters.
    budgets:
        ``(b_A, b_B)`` seed budgets for items 0 and 1.
    select_item:
        Which item's seeds to optimize (the other item's seeds come from a
        plain IMM call first, as in §4.3.1.2 (1)).
    num_forward_worlds:
        Forward Com-IC simulations of the fixed item used to estimate
        per-world adopter sets for the "+" boost.
    backend:
        Removed — raises ``TypeError``.  Select the backend for both the
        IMM call and the GAP-aware KPT/θ phases through
        ``ctx=EngineContext.create(backend=...)`` instead.
    ctx:
        :class:`repro.engine.EngineContext` shared by every phase (IMM,
        forward worlds, GAP KPT/θ), including the forward-world cursor.
    """
    ctx = ensure_context(ctx, backend=backend, rng=rng, caller="rr_sim_plus")
    other_item = 1 - select_item
    seeds_other = imm(
        graph, budgets[other_item], epsilon=epsilon, ell=ell, ctx=ctx
    ).seeds
    selection: ComICSeedSelection = comic_rr_selection(
        graph=graph,
        model=model,
        select_item=select_item,
        fixed_seeds=seeds_other,
        budget=budgets[select_item],
        epsilon=epsilon,
        ell=ell,
        num_forward_worlds=num_forward_worlds,
        extra_forward_pass=False,
        ctx=ctx,
    )
    pairs = [(v, other_item) for v in seeds_other] + [
        (v, select_item) for v in selection.seeds
    ]
    return RRSIMResult(
        allocation=Allocation(pairs, num_items=2),
        seeds_fixed_item=tuple(seeds_other),
        seeds_selected_item=tuple(selection.seeds),
        num_rr_sets=selection.num_rr_sets,
    )
