"""Naive marginal-greedy welfare maximization (the obvious alternative).

The textbook approach to WelMax would greedily add the ``(node, item)`` pair
with the largest marginal gain in *estimated expected welfare* until budgets
are exhausted — the classic Nemhauser greedy, except that expected welfare is
neither submodular nor supermodular (Theorem 1), so no guarantee applies, and
each marginal evaluation costs a full Monte-Carlo welfare estimate.

This module implements that algorithm with CELF-style lazy re-evaluation so
the comparison against bundleGRD is as favorable to the baseline as possible.
It exists for the ablation study (`bench_ablation_marginal_greedy.py`): on
small instances it is orders of magnitude slower than bundleGRD while *not*
producing better welfare — the practical content of the paper's claim that a
guarantee-preserving greedy can sidestep per-pair welfare estimation
entirely.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.engine import EngineContext
from repro.diffusion.welfare import estimate_welfare
from repro.graph.digraph import InfluenceGraph
from repro.utility.model import UtilityModel


@dataclass(frozen=True)
class MarginalGreedyResult:
    """The allocation plus the number of welfare evaluations spent."""

    allocation: Allocation
    welfare: float
    num_evaluations: int


def marginal_greedy(
    graph: InfluenceGraph,
    model: UtilityModel,
    budgets: Sequence[int],
    candidate_nodes: Optional[Sequence[int]] = None,
    num_samples: int = 50,
    rng_seed: int = 0,
) -> MarginalGreedyResult:
    """Greedy over (node, item) pairs by estimated marginal welfare.

    Parameters
    ----------
    graph, model, budgets:
        The WelMax instance.
    candidate_nodes:
        Restrict seed candidates (defaults to all nodes; pass a shortlist on
        anything but toy graphs — the evaluation cost is
        ``O(candidates × Σ budgets × MC)``).
    num_samples:
        MC samples per welfare evaluation; common random numbers are used so
        marginal comparisons are stable.

    Notes
    -----
    CELF lazy evaluation: stale upper bounds are re-evaluated only when they
    reach the top of the heap.  Because welfare is not submodular, a stale
    bound may *underestimate* the true marginal, so lazy greedy is itself a
    heuristic here — matching how practitioners would actually run it.
    """
    budgets = [int(b) for b in budgets]
    if len(budgets) != model.num_items:
        raise ValueError(
            f"budget vector has {len(budgets)} entries for "
            f"{model.num_items} items"
        )
    nodes = (
        list(range(graph.num_nodes))
        if candidate_nodes is None
        else [int(v) for v in candidate_nodes]
    )

    def welfare_of(allocation: Allocation) -> float:
        return estimate_welfare(
            graph,
            model,
            allocation,
            num_samples=num_samples,
            ctx=EngineContext.create(rng=np.random.default_rng(rng_seed)),
        ).mean

    current = Allocation.empty(model.num_items)
    current_welfare = 0.0
    remaining = list(budgets)
    evaluations = 0

    # heap of (-upper_bound, node, item, round_evaluated)
    heap: List[Tuple[float, int, int, int]] = []
    round_id = 0
    for item in range(model.num_items):
        if remaining[item] <= 0:
            continue
        for node in nodes:
            gain = welfare_of(current.with_pair(node, item)) - current_welfare
            evaluations += 1
            heapq.heappush(heap, (-gain, node, item, round_id))

    total_pairs = sum(min(b, len(nodes)) for b in budgets)
    while heap and len(current) < total_pairs:
        neg_gain, node, item, evaluated_round = heapq.heappop(heap)
        if remaining[item] <= 0 or (node, item) in current:
            continue
        if evaluated_round != round_id:
            gain = welfare_of(current.with_pair(node, item)) - current_welfare
            evaluations += 1
            heapq.heappush(heap, (-gain, node, item, round_id))
            continue
        if -neg_gain <= 0 and len(current) > 0:
            # No pair improves the estimate; monotonicity says real gains are
            # >= 0, so keep filling budgets with the best remaining bounds.
            pass
        current = current.with_pair(node, item)
        current_welfare += -neg_gain
        remaining[item] -= 1
        round_id += 1

    final_welfare = welfare_of(current)
    evaluations += 1
    return MarginalGreedyResult(
        allocation=current,
        welfare=final_welfare,
        num_evaluations=evaluations,
    )
