"""RR-CIM — the general Com-IC seed-selection algorithm (Lu et al. [36]).

RR-CIM drops RR-SIM's self-reliance assumption: it spends additional forward
Com-IC simulation ("sandwiched" between two sampling passes) to estimate each
node's complementary boost before the reverse-sampling phase.  In the
mutually complementary configurations of the paper's experiments its
allocations match RR-SIM+'s; it is simply slower — which is exactly how the
paper reports it (Fig. 5: RR-CIM is the slowest baseline).

Like :mod:`repro.baselines.rr_sim`, this is a faithful-role reimplementation
on TIM-scale sample sizes; see DESIGN.md §11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.baselines._comic_common import ComICSeedSelection, comic_rr_selection
from repro.core.allocation import Allocation
from repro.diffusion.comic import ComICModel
from repro.engine import ensure_context
from repro.graph.digraph import InfluenceGraph
from repro.rrset.imm import imm


@dataclass(frozen=True)
class RRCIMResult:
    """RR-CIM output: the two-item allocation plus sampling statistics."""

    allocation: Allocation
    seeds_fixed_item: Tuple[int, ...]
    seeds_selected_item: Tuple[int, ...]
    num_rr_sets: int


def rr_cim(
    graph: InfluenceGraph,
    model: ComICModel,
    budgets: Tuple[int, int],
    select_item: int = 1,
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    num_forward_worlds: int = 20,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> RRCIMResult:
    """Run RR-CIM for two items.

    Parameters mirror :func:`repro.baselines.rr_sim.rr_sim_plus` (including
    the ``ctx`` engine context; the removed ``backend=`` keyword raises);
    by default RR-CIM optimizes the *other* item than RR-SIM+ does,
    matching the paper's setup ("given seed set of item i2 (resp. i1),
    RR-SIM+ (resp. RR-CIM) finds seed set of item i1 (resp. i2)").
    """
    ctx = ensure_context(ctx, backend=backend, rng=rng, caller="rr_cim")
    other_item = 1 - select_item
    seeds_other = imm(
        graph, budgets[other_item], epsilon=epsilon, ell=ell, ctx=ctx
    ).seeds
    selection: ComICSeedSelection = comic_rr_selection(
        graph=graph,
        model=model,
        select_item=select_item,
        fixed_seeds=seeds_other,
        budget=budgets[select_item],
        epsilon=epsilon,
        ell=ell,
        num_forward_worlds=num_forward_worlds,
        extra_forward_pass=True,
        ctx=ctx,
    )
    pairs = [(v, other_item) for v in seeds_other] + [
        (v, select_item) for v in selection.seeds
    ]
    return RRCIMResult(
        allocation=Allocation(pairs, num_items=2),
        seeds_fixed_item=tuple(seeds_other),
        seeds_selected_item=tuple(selection.seeds),
        num_rr_sets=selection.num_rr_sets,
    )
