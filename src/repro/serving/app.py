"""ServingApp: the HTTP endpoints wired over router + batchers.

Endpoints (JSON in/out; DESIGN.md §8):

* ``GET /healthz`` — liveness.
* ``GET /v1/stores`` — registered keys and their metadata.
* ``GET /v1/stores/{key}`` — one store's metadata.
* ``GET /v1/stores/{key}/seeds?budget=B`` — the stored prefix, O(B).
* ``GET /v1/stores/{key}/spread?seeds=1,2,3`` — spread estimate; goes
  through the key's :class:`~repro.serving.coalesce.SpreadBatcher`, so
  concurrent calls merge into one vectorized kernel invocation.
* ``POST /v1/stores/{key}/reload`` — hot-swap after ``extend_store``:
  the replacement file goes live atomically, fingerprint-checked
  against the pin; in-flight queries finish on the old snapshot.
* ``GET /v1/stats`` — router + batcher + pool + server counters, plus a
  compact snapshot of the process metrics registry.
* ``GET /v1/metrics`` — the full registry in Prometheus text exposition
  format (request-latency histograms per endpoint, coalesced batch
  sizes, LRU hit/miss, hot-swaps, response classes; DESIGN.md §9).

Error mapping is uniform: unknown key → 404, bad parameters → 400,
fingerprint/format refusals → 409, closed router → 503.

The app owns its event loop: :meth:`run` blocks until
:meth:`request_stop` (thread-safe) or a signal arrives, then shuts down
in order — stop accepting, drain batchers, retire every store — and
returns a summary whose ``leaked`` count a clean shutdown pins at zero.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Dict, Optional, Tuple

from repro import obs
from repro.serving.coalesce import SpreadBatcher
from repro.serving.http import HttpServer, Request, TextResponse
from repro.serving.router import RouterClosedError, StoreRouter
from repro.store.sketch_store import SketchStoreError, StaleStoreError

_REQUEST_SECONDS = obs.histogram(
    "repro_serving_request_seconds",
    "Request latency by endpoint template",
    labels=("endpoint",),
)
_RESPONSES = obs.counter(
    "repro_serving_responses_total",
    "Responses by endpoint template and status class",
    labels=("endpoint", "class"),
)


def _endpoint_template(request: Request) -> str:
    """Collapse a request path to a bounded-cardinality endpoint label."""
    path = request.path
    if path == "/healthz":
        return "healthz"
    if path in ("/v1/stores", "/v1/stats", "/v1/metrics"):
        return path.rsplit("/", 1)[-1]
    parts = [p for p in path.split("/") if p]
    if len(parts) >= 3 and parts[:2] == ["v1", "stores"]:
        rest = parts[3:]
        if not rest:
            return "store_meta"
        if rest in (["seeds"], ["spread"], ["reload"]):
            return rest[0]
    return "other"


class ServingApp:
    """One router, one HTTP server, one batcher per hot store key."""

    def __init__(
        self,
        router: StoreRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        window: float = 0.002,
        max_batch: int = 64,
        coalesce: bool = True,
    ):
        self.router = router
        self._host = host
        self._port = port
        self._window = window
        self._max_batch = max_batch
        self._coalesce = coalesce
        self._server = HttpServer(self._dispatch, host, port)
        self._batchers: Dict[str, SpreadBatcher] = {}
        self._num_nodes: Dict[str, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful once serving has started)."""
        return self._server.port

    def request_stop(self) -> None:
        """Ask a running :meth:`run` to shut down; safe from any thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    def wait_started(self, timeout: Optional[float] = None) -> bool:
        """Block until the server socket is bound (thread helper)."""
        return self._started.wait(timeout)

    def run(
        self,
        ready: Optional[Callable[[str, int], None]] = None,
        install_signal_handlers: bool = False,
    ) -> Dict[str, object]:
        """Serve until stopped; returns the shutdown summary."""
        return asyncio.run(self._main(ready, install_signal_handlers))

    async def _main(
        self,
        ready: Optional[Callable[[str, int], None]],
        install_signal_handlers: bool,
    ) -> Dict[str, object]:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if install_signal_handlers:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(signum, self._stop.set)
                except NotImplementedError:  # pragma: no cover - non-unix
                    pass
        host, port = await self._server.start()
        if ready is not None:
            ready(host, port)
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            summary = await self._shutdown()
            self._started.clear()
            self._loop = None
            self._stop = None
        return summary

    async def _shutdown(self) -> Dict[str, object]:
        """Stop accepting, flush batchers, retire stores — in that order."""
        await self._server.close()
        for batcher in self._batchers.values():
            await batcher.drain()
        summary: Dict[str, object] = dict(self.router.close())
        summary["requests"] = self._server.requests_served
        return summary

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> Tuple[int, object]:
        endpoint = _endpoint_template(request)
        with _REQUEST_SECONDS.timer(endpoint=endpoint):
            try:
                status, payload = await self._route(request)
            except KeyError as exc:
                status, payload = 404, {
                    "error": str(exc.args[0]) if exc.args else "not found"
                }
            except (ValueError, IndexError) as exc:
                status, payload = 400, {"error": str(exc)}
            except (StaleStoreError, SketchStoreError) as exc:
                status, payload = 409, {"error": str(exc)}
            except RouterClosedError as exc:
                status, payload = 503, {"error": str(exc)}
        _RESPONSES.inc(endpoint=endpoint, **{"class": f"{status // 100}xx"})
        return status, payload

    async def _route(self, request: Request) -> Tuple[int, object]:
        path, method = request.path, request.method
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}
        if path == "/v1/stores" and method == "GET":
            return 200, {"stores": self.router.describe()}
        if path == "/v1/stats" and method == "GET":
            return 200, self._stats()
        if path == "/v1/metrics" and method == "GET":
            return 200, TextResponse(obs.render_prometheus())
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 3 and parts[:2] == ["v1", "stores"]:
            key = parts[2]
            rest = parts[3:]
            if not rest:
                if method != "GET":
                    return 405, {"error": "use GET"}
                return 200, self._store_meta(key)
            if rest == ["seeds"] and method == "GET":
                return self._seeds(key, request)
            if rest == ["spread"] and method == "GET":
                return await self._spread(key, request)
            if rest == ["reload"] and method == "POST":
                return self._reload(key)
        return 404, {"error": f"no route for {method} {path}"}

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _store_meta(self, key: str) -> object:
        with self.router.lease(key) as handle:
            store = handle.store
            return {
                "key": key,
                "model": store.model,
                "nodes": store.num_nodes,
                "num_sets": store.num_sets,
                "max_budget": store.max_budget,
                "epsilon": store.epsilon,
                "fingerprint": store.fingerprint,
                "generation": handle.generation,
            }

    def _seeds(self, key: str, request: Request) -> Tuple[int, object]:
        try:
            budget = int(request.query["budget"])
        except KeyError:
            return 400, {"error": "missing query parameter 'budget'"}
        except ValueError:
            return 400, {"error": "budget must be an integer"}
        with self.router.lease(key) as handle:
            seeds = handle.service.seeds(budget)
            generation = handle.generation
        return 200, {
            "key": key,
            "budget": budget,
            "seeds": list(seeds),
            "generation": generation,
        }

    async def _spread(self, key: str, request: Request) -> Tuple[int, object]:
        raw = request.query.get("seeds", "")
        try:
            seeds = [int(part) for part in raw.split(",") if part != ""]
        except ValueError:
            return 400, {"error": "seeds must be a comma-separated int list"}
        fraction = await self._batcher(key).submit(seeds)
        return 200, {
            "key": key,
            "fraction": fraction,
            "spread": fraction * self._num_nodes[key],
        }

    def _reload(self, key: str) -> Tuple[int, object]:
        handle = self.router.swap(key)
        return 200, {
            "key": key,
            "generation": handle.generation,
            "num_sets": handle.store.num_sets,
            "draining": len(self.router.draining),
        }

    def _batcher(self, key: str) -> SpreadBatcher:
        batcher = self._batchers.get(key)
        if batcher is None:
            # Resolve the key once (raises KeyError -> 404 on unknown
            # keys) and cache n: the pinned fingerprint fixes the graph,
            # so n cannot change across swaps.
            with self.router.lease(key) as handle:
                self._num_nodes[key] = handle.store.num_nodes

            def compute(batch, _key=key):
                return self.router.coverage_fractions(_key, batch)

            def compute_one(seeds, _key=key):
                return self.router.coverage_fraction(_key, seeds)

            batcher = SpreadBatcher(
                compute,
                window=self._window,
                max_batch=self._max_batch,
                enabled=self._coalesce,
                compute_one=compute_one,
            )
            self._batchers[key] = batcher
        return batcher

    def _stats(self) -> Dict[str, object]:
        from repro.parallel import pool_stats

        return {
            "router": self.router.stats(),
            "requests": self._server.requests_served,
            "coalescing": {
                key: batcher.stats()
                for key, batcher in sorted(self._batchers.items())
            },
            "pool": pool_stats(),
            "metrics": obs.REGISTRY.snapshot(),
        }
