"""ServingClient: the thin blocking HTTP client for tests and benches.

One persistent ``http.client.HTTPConnection`` per client instance, so a
benchmark thread's request stream exercises the server's keep-alive path
the way a production sidecar would.  Every response is JSON; non-2xx
statuses raise :class:`ServingError` carrying the server's error text —
callers never parse failure bodies themselves.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional, Sequence
from urllib.parse import quote


class ServingError(RuntimeError):
    """A non-2xx response from the serving layer."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServingClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _raw_request(
        self, method: str, path: str, body: Optional[bytes] = None
    ):
        try:
            self._conn.request(method, path, body=body)
            response = self._conn.getresponse()
            payload = response.read()
        except (ConnectionError, http.client.HTTPException):
            # One retry on a fresh connection: the server may have closed
            # an idle keep-alive socket between our requests.  Only GETs
            # are retried — a POST (reload) may already have been applied
            # server-side before the connection dropped, and re-sending
            # it would execute the swap twice.
            self._conn.close()
            if method != "GET":
                raise
            self._conn.request(method, path, body=body)
            response = self._conn.getresponse()
            payload = response.read()
        return response, payload

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> dict:
        response, payload = self._raw_request(method, path, body=body)
        data = json.loads(payload.decode())
        if not 200 <= response.status < 300:
            raise ServingError(
                response.status, str(data.get("error", payload.decode()))
            )
        return data

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stores(self) -> List[dict]:
        return self._request("GET", "/v1/stores")["stores"]

    def store(self, key: str) -> dict:
        return self._request("GET", f"/v1/stores/{quote(key)}")

    def seeds(self, key: str, budget: int) -> List[int]:
        data = self._request(
            "GET", f"/v1/stores/{quote(key)}/seeds?budget={int(budget)}"
        )
        return list(data["seeds"])

    def spread(self, key: str, seeds: Sequence[int]) -> float:
        data = self.spread_response(key, seeds)
        return float(data["spread"])

    def spread_response(self, key: str, seeds: Sequence[int]) -> dict:
        joined = ",".join(str(int(s)) for s in seeds)
        return self._request(
            "GET", f"/v1/stores/{quote(key)}/spread?seeds={joined}"
        )

    def reload(self, key: str) -> dict:
        return self._request("POST", f"/v1/stores/{quote(key)}/reload")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """Raw Prometheus exposition text from ``GET /v1/metrics``."""
        response, payload = self._raw_request("GET", "/v1/metrics")
        text = payload.decode()
        if not 200 <= response.status < 300:
            raise ServingError(response.status, text)
        return text
