"""A minimal asyncio HTTP/1.1 server — stdlib only, JSON in and out.

The serving layer deliberately avoids new runtime dependencies (the
container bakes numpy and the standard library; DESIGN.md §13), so this
module hand-rolls the thin slice of HTTP the oracle endpoints need:
request line + headers + optional ``Content-Length`` body in, one JSON
document out, persistent connections.  It is not a general web server —
no chunked encoding, no TLS, no multipart — and does not try to be; the
router/batcher behind it is where the engineering lives.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

#: Upper bound on request bodies (none of the endpoints need more).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on cumulative header bytes per request; a client cannot
#: hold a connection open by streaming headers forever.
MAX_HEADER_BYTES = 1 << 14

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed request: method, path, query parameters, raw body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class TextResponse:
    """A plain-text payload; everything else the server emits is JSON.

    The one consumer is ``GET /v1/metrics``: Prometheus scrapers expect
    text exposition format 0.0.4, not JSON.
    """

    text: str
    content_type: str = "text/plain; version=0.0.4; charset=utf-8"


#: An endpoint implementation: request -> (status, JSON-able payload).
Handler = Callable[[Request], Awaitable[Tuple[int, object]]]


def encode_response(status: int, payload: object) -> bytes:
    """One complete HTTP/1.1 response frame (JSON, or explicit text)."""
    if isinstance(payload, TextResponse):
        body = payload.text.encode()
        content_type = payload.content_type
    else:
        body = json.dumps(payload).encode()
        content_type = "application/json"
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    )
    return head.encode() + body


class HttpServer:
    """Serve ``handler`` over persistent HTTP/1.1 connections."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0):
        self._handler = handler
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self.requests_served = 0

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self._port = port
        return host, port

    @property
    def port(self) -> int:
        return self._port

    async def close(self) -> None:
        """Stop accepting, then close every keep-alive connection.

        Connection tasks are cancelled *before* ``wait_closed()``: since
        Python 3.12.1 ``wait_closed()`` blocks until every handler
        coroutine finishes, and an idle keep-alive client parked in
        ``readline()`` never finishes on its own — awaiting first would
        deadlock shutdown whenever any client is still connected.
        """
        if self._server is not None:
            self._server.close()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                keep_alive = await self._serve_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown; ending the task uncancelled keeps
            # the streams teardown callback from logging the cancel
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - raced teardown
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Read one request, dispatch, write one response.

        Returns whether the connection should stay open.
        """
        request_line = await reader.readline()
        if not request_line.strip():
            return False
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            writer.write(
                encode_response(400, {"error": "malformed request line"})
            )
            await writer.drain()
            return False
        method, target, _version = parts

        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            if line == b"":
                return False  # EOF mid-headers: aborted, do not dispatch
            if line in (b"\r\n", b"\n"):
                break
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                writer.write(
                    encode_response(400, {"error": "headers too large"})
                )
                await writer.drain()
                return False
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            writer.write(encode_response(400, {"error": "bad content-length"}))
            await writer.drain()
            return False
        if length > MAX_BODY_BYTES:
            writer.write(encode_response(400, {"error": "body too large"}))
            await writer.drain()
            return False
        if length:
            body = await reader.readexactly(length)

        split = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(
                split.query, keep_blank_values=True
            ).items()
        }
        request = Request(
            method=method.upper(), path=split.path, query=query, body=body
        )
        try:
            status, payload = await self._handler(request)
        except Exception as exc:  # an endpoint bug must not kill the loop
            status, payload = 500, {
                "error": f"{exc.__class__.__name__}: {exc}"
            }
        self.requests_served += 1
        writer.write(encode_response(status, payload))
        await writer.drain()
        return headers.get("connection", "").lower() != "close"
