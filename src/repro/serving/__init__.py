"""Traffic-facing serving layer over the persistent sketch stores.

``repro.store`` compiles influence oracles into memory-mapped artifacts
that answer 74–242x faster than a rebuild; this package is the layer
that puts those artifacts behind a socket (DESIGN.md §8):

* :class:`~repro.serving.router.StoreRouter` — a fleet of
  :class:`~repro.store.sketch_store.SketchStore`\\ s keyed by store name
  (one artifact per dataset × model × ε): lazy mmap open with pinned
  fingerprint verification, an LRU bound on simultaneously open mmaps,
  and hot-swap after :func:`~repro.store.builder.extend_store` — the
  replacement goes live atomically and the old mmap closes only after
  its last in-flight reader drains.
* :class:`~repro.serving.coalesce.SpreadBatcher` — request coalescing:
  concurrent spread queries against one store inside a small window
  merge into a single vectorized
  :meth:`~repro.store.service.OracleService.coverage_fractions` call.
* :class:`~repro.serving.app.ServingApp` — a stdlib-``asyncio`` HTTP/1.1
  front end (no new runtime dependencies) exposing seed/spread/reload
  endpoints; ``repro serve`` on the command line.
* :class:`~repro.serving.client.ServingClient` — the thin blocking HTTP
  client the tests, the smoke job and the load benchmark drive.

Economics are gated by ``benchmarks/bench_oracle_serving.py`` →
``BENCH_oracle_serving.json`` (p50/p99 latency and queries/sec under
concurrent clients; coalescing-on must beat coalescing-off).
"""

from repro.serving.app import ServingApp
from repro.serving.client import ServingClient, ServingError
from repro.serving.coalesce import SpreadBatcher
from repro.serving.router import RouterClosedError, StoreHandle, StoreRouter

__all__ = [
    "RouterClosedError",
    "ServingApp",
    "ServingClient",
    "ServingError",
    "SpreadBatcher",
    "StoreHandle",
    "StoreRouter",
]
