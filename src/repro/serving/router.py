"""StoreRouter: a refcounted, LRU-bounded fleet of mmap'd sketch stores.

The router owns every :class:`~repro.store.sketch_store.SketchStore` a
serving process touches.  Three lifecycle rules, enforced here so the
HTTP layer above stays trivial:

* **Lazy open, pinned fingerprint.**  Keys map to file paths; nothing is
  mmap'd until the first query.  The first successful open *pins* the
  store's graph fingerprint to the key (or the caller pins one at
  registration), and every later open of that key — LRU re-open or
  hot-swap — must present the same fingerprint.  A well-formed store
  built from a different graph swapped under a served key is refused
  with :class:`~repro.store.sketch_store.StaleStoreError` instead of
  silently answering from the wrong artifact.
* **LRU bound with reader-drain.**  At most ``max_open`` stores are
  mmap'd at once.  Opening one more retires the least-recently-used
  handle: it leaves the table immediately (new queries re-open), but its
  mmap closes only when the last in-flight reader releases it — eviction
  never invalidates pages under a running query.
* **Hot-swap.**  ``swap(key)`` re-opens the key's path (fingerprint
  checked) and flips the table pointer atomically under the router lock.
  Queries that already acquired the old handle finish on the old
  snapshot; queries that acquire after the flip see the new one — every
  answer is internally consistent, old or new, never a mix.

All methods are thread-safe: the HTTP front end runs on one event loop,
but tests and offline tools drive routers from worker threads.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.store.service import OracleService
from repro.store.sketch_store import (
    SketchStore,
    SketchStoreError,
    StaleStoreError,
)

PathLike = Union[str, Path]

#: File suffix the root scan recognizes as a sketch-store artifact.
STORE_SUFFIX = ".sketch"

_LRU_ACQUIRES = obs.counter(
    "repro_serving_lru_acquires_total",
    "Store acquisitions by LRU outcome (hit: already open; miss: opened)",
    labels=("result",),
)
_STORE_OPENS = obs.counter(
    "repro_serving_store_opens_total",
    "Sketch-store opens performed by the router (first open or re-open)",
)
_HOT_SWAPS = obs.counter(
    "repro_serving_hot_swaps_total",
    "Atomic hot-swaps of a served store key",
)
_EVICTIONS = obs.counter(
    "repro_serving_evictions_total",
    "LRU evictions of open store handles",
)


class RouterClosedError(RuntimeError):
    """The router was shut down; no further queries are served."""


class StoreHandle:
    """One open store plus its reader refcount and retirement state.

    Handles are created and mutated only under the owning router's lock;
    queries hold a handle between ``acquire`` and ``release`` and read
    the store/service freely in between (the arrays are read-only).
    """

    def __init__(
        self, key: str, path: Path, store: SketchStore, generation: int
    ):
        self.key = key
        self.path = path
        self.store = store
        self.service = OracleService(store)
        self.generation = generation
        self.readers = 0
        self.retired = False

    @property
    def fingerprint(self) -> str:
        return self.store.fingerprint

    def __repr__(self) -> str:
        return (
            f"StoreHandle({self.key!r}, gen={self.generation}, "
            f"readers={self.readers}, retired={self.retired})"
        )


class StoreRouter:
    """Route queries to a fleet of lazily opened sketch stores.

    Parameters
    ----------
    max_open:
        LRU bound on simultaneously open (mmap'd) stores.
    mmap:
        Open stores memory-mapped (the serving default); ``False``
        materializes arrays in RAM (tests, tiny stores).
    """

    def __init__(self, max_open: int = 8, mmap: bool = True):
        if max_open < 1:
            raise ValueError(f"max_open must be >= 1, got {max_open}")
        self._max_open = max_open
        self._mmap = mmap
        self._lock = threading.RLock()
        #: key -> artifact path (the registry; independent of open state).
        self._paths: Dict[str, Path] = {}
        #: key -> pinned fingerprint (set at registration or first open).
        self._pins: Dict[str, str] = {}
        #: key -> open handle, in LRU order (oldest first).
        self._open: Dict[str, StoreHandle] = {}
        #: retired handles still pinned open by in-flight readers.
        self._draining: List[StoreHandle] = []
        self._generation = 0
        self._closed = False
        self.swaps = 0
        self.evictions = 0
        self.opens = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(
        self, key: str, path: PathLike, fingerprint: Optional[str] = None
    ) -> None:
        """Map ``key`` to a store file; optionally pin its fingerprint."""
        with self._lock:
            self._require_open_router()
            if key in self._paths:
                raise ValueError(f"store key {key!r} already registered")
            if not key or "/" in key:
                raise ValueError(
                    f"store key {key!r} must be a non-empty name without '/'"
                )
            self._paths[key] = Path(path)
            if fingerprint is not None:
                self._pins[key] = fingerprint

    def add_root(self, root: PathLike) -> List[str]:
        """Register every ``*.sketch`` under ``root``; returns new keys.

        Keys are file stems; a stem collision across roots is a
        configuration error and raises.
        """
        root = Path(root)
        if not root.is_dir():
            raise FileNotFoundError(f"store root {root} is not a directory")
        keys = []
        for path in sorted(root.rglob(f"*{STORE_SUFFIX}")):
            self.register(path.stem, path)
            keys.append(path.stem)
        return keys

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._paths))

    @property
    def open_keys(self) -> Tuple[str, ...]:
        """Keys currently holding an open mmap (LRU order, oldest first)."""
        with self._lock:
            return tuple(self._open)

    @property
    def draining(self) -> Tuple[StoreHandle, ...]:
        """Retired handles still held open by in-flight readers."""
        with self._lock:
            return tuple(self._draining)

    def pinned_fingerprint(self, key: str) -> Optional[str]:
        with self._lock:
            return self._pins.get(key)

    # ------------------------------------------------------------------
    # Handle lifecycle
    # ------------------------------------------------------------------
    def acquire(self, key: str) -> StoreHandle:
        """Open (if needed) and pin the key's store for one reader.

        Every ``acquire`` must be paired with ``release`` — use
        :meth:`lease` unless the hold spans an ``await``.
        """
        with self._lock:
            self._require_open_router()
            handle = self._open.get(key)
            if handle is None:
                self.misses += 1
                _LRU_ACQUIRES.inc(result="miss")
                handle = self._open_locked(key)
            else:
                self.hits += 1
                _LRU_ACQUIRES.inc(result="hit")
                # Refresh LRU recency: move to the tail.
                self._open.pop(key)
                self._open[key] = handle
            handle.readers += 1
            return handle

    def release(self, handle: StoreHandle) -> None:
        """Drop one reader; a drained retired handle closes its mmap."""
        with self._lock:
            if handle.readers <= 0:
                raise RuntimeError(
                    f"release without matching acquire on {handle!r}"
                )
            handle.readers -= 1
            if handle.retired and handle.readers == 0:
                self._draining.remove(handle)
                handle.store.close()

    class _Lease:
        def __init__(self, router: "StoreRouter", key: str):
            self._router = router
            self._key = key
            self.handle: Optional[StoreHandle] = None

        def __enter__(self) -> StoreHandle:
            self.handle = self._router.acquire(self._key)
            return self.handle

        def __exit__(self, *exc) -> None:
            if self.handle is not None:
                self._router.release(self.handle)

    def lease(self, key: str) -> "StoreRouter._Lease":
        """``with router.lease(key) as handle:`` acquire/release bracket."""
        return StoreRouter._Lease(self, key)

    def _require_open_router(self) -> None:
        if self._closed:
            raise RouterClosedError("router is closed")

    def _open_locked(self, key: str) -> StoreHandle:
        """Open ``key`` under the lock: verify, insert, evict over-LRU."""
        path = self._paths.get(key)
        if path is None:
            raise KeyError(f"unknown store key {key!r}")
        store = SketchStore.load(path, mmap=self._mmap)
        pinned = self._pins.get(key)
        if pinned is not None and store.fingerprint != pinned:
            store.close()
            raise StaleStoreError(
                f"store {key!r} at {path} carries fingerprint "
                f"{store.fingerprint[:16]}… but {pinned[:16]}… is pinned "
                "for this key; refusing to serve a swapped artifact"
            )
        self._pins[key] = store.fingerprint
        self._generation += 1
        self.opens += 1
        _STORE_OPENS.inc()
        handle = StoreHandle(key, path, store, self._generation)
        self._open[key] = handle
        while len(self._open) > self._max_open:
            lru_key = next(iter(self._open))
            self._retire_locked(self._open.pop(lru_key))
            self.evictions += 1
            _EVICTIONS.inc()
        return handle

    def _retire_locked(self, handle: StoreHandle) -> None:
        handle.retired = True
        if handle.readers == 0:
            handle.store.close()
        else:
            self._draining.append(handle)

    # ------------------------------------------------------------------
    # Hot-swap and shutdown
    # ------------------------------------------------------------------
    def swap(self, key: str) -> StoreHandle:
        """Re-open ``key``'s path and atomically flip the served handle.

        The natural sequel to :func:`repro.store.builder.extend_store`
        (whose ``save`` replaces the file atomically): readers that
        acquired before the flip finish on the old snapshot, which
        closes once the last of them releases.  The replacement must
        carry the pinned fingerprint.
        """
        with self._lock:
            self._require_open_router()
            old = self._open.pop(key, None)
            try:
                handle = self._open_locked(key)
            except (SketchStoreError, OSError):
                if old is not None:  # keep serving the old snapshot
                    self._open[key] = old
                raise
            if old is not None:
                self._retire_locked(old)
            self.swaps += 1
            _HOT_SWAPS.inc()
            return handle

    def close(self) -> Dict[str, int]:
        """Retire every open store; returns a shutdown summary.

        ``leaked`` counts handles still pinned by readers at close time —
        a clean shutdown (server drained first) reports zero, and the
        smoke job asserts exactly that.
        """
        with self._lock:
            self._closed = True
            for key in list(self._open):
                self._retire_locked(self._open.pop(key))
            return {
                "stores": len(self._paths),
                "leaked": len(self._draining),
                "opens": self.opens,
                "swaps": self.swaps,
                "evictions": self.evictions,
            }

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "stores": len(self._paths),
                "open": len(self._open),
                "max_open": self._max_open,
                "draining": len(self._draining),
                "opens": self.opens,
                "swaps": self.swaps,
                "evictions": self.evictions,
                "hits": self.hits,
                "misses": self.misses,
            }

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def describe(self) -> List[Dict[str, object]]:
        """One metadata row per registered key — never forces an open.

        Keys with a live handle report full store metadata; the rest
        report their registry entry (path + pinned fingerprint, if
        any).  Listing a fleet larger than ``max_open`` must not churn
        the LRU through open/evict cycles, and one unreadable artifact
        must not fail the whole listing — so closed stores are simply
        not touched.
        """
        with self._lock:
            self._require_open_router()
            rows: List[Dict[str, object]] = []
            for key in sorted(self._paths):
                handle = self._open.get(key)
                row: Dict[str, object] = {
                    "key": key,
                    "path": str(self._paths[key]),
                    "open": handle is not None,
                    "fingerprint": self._pins.get(key),
                }
                if handle is not None:
                    store = handle.store
                    row.update(
                        model=store.model,
                        nodes=store.num_nodes,
                        num_sets=store.num_sets,
                        max_budget=store.max_budget,
                        epsilon=store.epsilon,
                        fingerprint=store.fingerprint,
                        generation=handle.generation,
                    )
                rows.append(row)
            return rows

    # Convenience single-query paths (tests and offline tools; the HTTP
    # layer goes through the batcher for spread).
    def seeds(self, key: str, budget: int) -> Tuple[int, ...]:
        with self.lease(key) as handle:
            return handle.service.seeds(budget)

    def spread(self, key: str, seeds: Sequence[int]) -> float:
        with self.lease(key) as handle:
            return handle.service.estimate_spread(seeds)

    def coverage_fraction(self, key: str, seeds: Sequence[int]) -> float:
        """The single-query path (the coalescing-off control arm)."""
        with self.lease(key) as handle:
            return handle.service.coverage_fraction(seeds)

    def coverage_fractions(
        self, key: str, seed_sets: Sequence[Sequence[int]]
    ) -> List[float]:
        """The batched kernel on one consistent snapshot of ``key``."""
        with self.lease(key) as handle:
            return handle.service.coverage_fractions(seed_sets)
