"""Request coalescing: merge concurrent spread queries into one kernel.

A spread query is an ideal batching target: the per-query work is one
boolean scatter over the inverted index, and B concurrent scatters
against the same store collapse into a single vectorized
:meth:`~repro.store.service.OracleService.coverage_fractions` call whose
cost grows far slower than B.  Three triggers fire a batch, whichever
comes first:

* **quiescence** — the event loop has processed every request that had
  already arrived (detected by a ``call_soon`` probe that re-arms while
  the pending count still grows).  Concurrent clients whose requests
  land in one selector wake coalesce with *zero* added latency; this is
  the trigger that fires in practice.
* **window** — at most ``window`` seconds after the first queued query,
  the latency bound for drip-feed arrivals.
* **max_batch** — capacity, bounding the kernel's scratch memory.

The whole batch executes on one consistent store snapshot — a hot-swap
landing mid-window moves the *whole* batch to one side of the flip,
never splitting it.

Purely ``asyncio``; single event loop, no threads, no locks.  With
``enabled=False`` (or ``window <= 0``) every query executes immediately
— the serving benchmark's control arm.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs

#: compute(seed_sets) -> one fraction per seed set, on one store snapshot.
BatchCompute = Callable[[Sequence[Sequence[int]]], List[float]]

_BATCH_SIZE = obs.histogram(
    "repro_serving_batch_size",
    "Coalesced spread-batch sizes (1 = a query that found no company)",
    buckets=obs.SIZE_BUCKETS,
)


class SpreadBatcher:
    """Coalesce spread queries for one store key.

    Parameters
    ----------
    compute:
        Executes a batch on one consistent snapshot (the router's
        :meth:`~repro.serving.router.StoreRouter.coverage_fractions`).
    window:
        Seconds a query waits for company before the batch fires.
    max_batch:
        Fire immediately once this many queries are pending (also the
        scratch-memory bound of the batched kernel: ``max_batch × θ``
        bytes).
    enabled:
        ``False`` bypasses coalescing entirely (control arm).
    compute_one:
        The single-query path used when coalescing is off.  Defaults to
        a one-element batch; the serving app passes the store's own
        per-query ``coverage_fraction`` so that "coalescing off" means
        exactly the pre-batching serving behavior.
    """

    def __init__(
        self,
        compute: BatchCompute,
        window: float = 0.002,
        max_batch: int = 64,
        enabled: bool = True,
        compute_one: Optional[Callable[[Sequence[int]], float]] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._compute = compute
        self._compute_one = compute_one or (lambda seeds: compute([seeds])[0])
        self._window = window
        self._max_batch = max_batch
        self._enabled = enabled and window > 0
        self._pending: List[Tuple[Sequence[int], asyncio.Future]] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._idle_handle: Optional[asyncio.Handle] = None
        self._idle_count = 0
        self._quiet_passes = 0
        # Telemetry the stats endpoint and the benchmark read.
        self.queries = 0
        self.batches = 0
        self.coalesced = 0
        self.largest_batch = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    async def submit(self, seeds: Sequence[int]) -> float:
        """One spread query; resolves when its batch executes."""
        self.queries += 1
        if not self._enabled:
            self.batches += 1
            self.largest_batch = max(self.largest_batch, 1)
            _BATCH_SIZE.observe(1)
            return self._compute_one(seeds)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((seeds, future))
        if len(self._pending) >= self._max_batch:
            self._flush()
        else:
            if self._flush_handle is None:
                self._flush_handle = loop.call_later(
                    self._window, self._flush
                )
            if self._idle_handle is None:
                # Quiescence probe: queued behind every I/O callback the
                # loop has already admitted, so by the time it runs, all
                # requests that had arrived have submitted.
                self._idle_count = len(self._pending)
                self._quiet_passes = 0
                self._idle_handle = loop.call_soon(self._idle_check)
        return await future

    def _idle_check(self) -> None:
        self._idle_handle = None
        if not self._pending:
            return
        if len(self._pending) > self._idle_count:
            # More queries joined during the last loop pass — re-arm and
            # keep collecting until the arrival stream quiesces.
            self._idle_count = len(self._pending)
            self._quiet_passes = 0
        else:
            # Each re-arm spans one more selector poll, so requiring two
            # consecutive quiet passes catches stragglers whose bytes
            # arrive a poll behind their peers — microseconds of extra
            # hold for visibly fuller batches.
            self._quiet_passes += 1
            if self._quiet_passes >= 2:
                self._flush()
                return
        self._idle_handle = asyncio.get_running_loop().call_soon(
            self._idle_check
        )

    def _flush(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if self._idle_handle is not None:
            self._idle_handle.cancel()
            self._idle_handle = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.batches += 1
        self.largest_batch = max(self.largest_batch, len(batch))
        _BATCH_SIZE.observe(len(batch))
        if len(batch) > 1:
            self.coalesced += len(batch)
        try:
            fractions = self._compute([seeds for seeds, _ in batch])
        except Exception as exc:  # propagate to every waiter
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), fraction in zip(batch, fractions):
            if not future.done():
                future.set_result(fraction)

    async def drain(self) -> None:
        """Flush anything pending (shutdown path)."""
        self._flush()

    def stats(self) -> dict:
        return {
            "enabled": self._enabled,
            "queries": self.queries,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "largest_batch": self.largest_batch,
        }
